// Structured fault models for compiled reaction networks.
//
// The paper's robustness argument is qualitative: any rate assignment works
// as long as every fast reaction is much faster than every slow one. This
// module makes the perturbations concrete so campaigns can measure how much
// of each kind a compiled design actually tolerates:
//
//   rate jitter      — multiplicative log-normal noise on rate constants,
//                      over all reactions, one rate category, or a single
//                      labelled reaction ("kinetic constants are not
//                      constant at all")
//   clock skew       — the same jitter restricted to reactions whose label
//                      carries the clock prefix, skewing phase rates against
//                      the datapath
//   leaks            — spurious decay reactions X ->(intensity * k_slow) 0
//                      on matching species (imperfect molecular parts)
//   injection / loss — a bolus of spurious molecules added to, or a fraction
//                      removed from, one species at a chosen time (realized
//                      by `FaultEventObserver` during the run)
//   initial noise    — log-normal noise on nonzero initial conditions
//   stoichiometry    — one reaction's first product duplicated (the
//                      single-gate hardware defect; promoted from the
//                      verify-layer test hook)
//
// Every spec is seeded and deterministic: the same (network, specs) pair
// always yields the same faulted network, regardless of thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/network.hpp"
#include "sim/observer.hpp"

namespace mrsc::stress {

enum class FaultKind : std::uint8_t {
  kRateJitter,          ///< every reaction
  kRateJitterCategory,  ///< reactions of `category` only
  kRateJitterReaction,  ///< the single reaction labelled `label`
  kClockSkew,           ///< reactions whose label starts with `label`
  kLeak,                ///< decay reactions on species matching `species`
  kInjection,           ///< add `intensity` of `species` at `time`
  kLoss,                ///< remove fraction `intensity` of `species` at `time`
  kInitialNoise,        ///< jitter nonzero initial conditions
  kStoichiometry,       ///< duplicate first product of reaction `label`
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// Parses the CLI spelling ("rate-jitter", "clock-skew", "leak", ...).
[[nodiscard]] std::optional<FaultKind> parse_fault_kind(std::string_view name);

/// One composable, seeded perturbation. `intensity` is the knob the campaign
/// sweeps; its meaning per kind:
///   jitter kinds   sigma of ln(multiplier): each selected reaction's rate is
///                  multiplied by exp(sigma * N(0,1))
///   kLeak          leak rate as a fraction of k_slow
///   kInjection     amount added (concentration units)
///   kLoss          fraction removed, clamped to [0, 1]
///   kInitialNoise  sigma of ln(multiplier) on nonzero initials
///   kStoichiometry ignored (the fault is discrete)
struct FaultSpec {
  FaultKind kind = FaultKind::kRateJitter;
  double intensity = 0.0;
  std::uint64_t seed = 1;
  /// kRateJitterCategory: which category to jitter.
  core::RateCategory category = core::RateCategory::kSlow;
  /// kRateJitterReaction / kStoichiometry: exact reaction label.
  /// kClockSkew: label prefix (default "clk.").
  std::string label;
  /// kLeak: species-name prefix filter (empty leaks every species).
  /// kInjection / kLoss: exact species name.
  std::string species;
  /// kInjection / kLoss: event time.
  double time = 0.0;

  static FaultSpec rate_jitter(double sigma, std::uint64_t seed);
  static FaultSpec category_jitter(core::RateCategory category, double sigma,
                                   std::uint64_t seed);
  static FaultSpec reaction_jitter(std::string label, double sigma,
                                   std::uint64_t seed);
  static FaultSpec clock_skew(double sigma, std::uint64_t seed,
                              std::string prefix = "clk.");
  static FaultSpec leak(double rate_fraction, std::string species_prefix = {});
  static FaultSpec injection(std::string species, double amount, double time);
  static FaultSpec loss(std::string species, double fraction, double time);
  static FaultSpec initial_noise(double sigma, std::uint64_t seed);
  static FaultSpec stoichiometry(std::string label);
};

/// A scheduled state perturbation applied during simulation.
struct FaultEvent {
  double time = 0.0;
  core::SpeciesId species;
  double add = 0.0;    ///< amount added (injection)
  double scale = 1.0;  ///< multiplicative factor (loss: 1 - fraction)
};

/// A faulted copy of a network plus the events that must be realized at run
/// time (empty unless injection/loss specs were present).
struct FaultedNetwork {
  core::ReactionNetwork network;
  std::vector<FaultEvent> events;
};

/// Applies `specs` in order to a copy of `network`. Deterministic: reactions
/// and species are visited in id order with one generator per spec, seeded
/// from FaultSpec::seed. Throws std::invalid_argument for an unknown label
/// or species name.
[[nodiscard]] FaultedNetwork apply_faults(const core::ReactionNetwork& network,
                                          std::span<const FaultSpec> specs);

/// Realizes FaultEvents during an ODE run: at the first accepted step past
/// each event's time, the target concentration becomes
/// `scale * x + add` (clamped at zero). Attach via
/// `analysis::ClockedRunOptions::extra_observers` or any observer span.
class FaultEventObserver final : public sim::Observer {
 public:
  /// Events need not be pre-sorted.
  explicit FaultEventObserver(std::vector<FaultEvent> events);

  void on_step(double t, std::span<double> state) override;

  [[nodiscard]] std::size_t applied_count() const { return next_; }

  /// Re-arms the observer for a fresh attempt (fallback-ladder retries).
  void reset() { next_ = 0; }

 private:
  std::vector<FaultEvent> events_;
  std::size_t next_ = 0;
};

/// Returns a copy of `network` with reaction `target`'s first product
/// stoichiometry incremented by one (a product-duplication fault; a reaction
/// with no products gains its first reactant as a product instead, turning a
/// sink into a no-op). Throws `std::out_of_range` on a bad id. This is the
/// fault the verify layer uses to prove its oracles catch broken networks.
[[nodiscard]] core::ReactionNetwork with_stoichiometry_fault(
    const core::ReactionNetwork& network, core::ReactionId target);

/// Finds a reaction whose label matches `label` exactly; throws
/// `std::invalid_argument` if absent.
[[nodiscard]] core::ReactionId find_reaction_by_label(
    const core::ReactionNetwork& network, const std::string& label);

}  // namespace mrsc::stress
