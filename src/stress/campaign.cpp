#include "stress/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "analysis/harness.hpp"
#include "async/chain.hpp"
#include "dsp/counter.hpp"
#include "dsp/filters.hpp"
#include "fsm/fsm.hpp"
#include "runtime/batch.hpp"
#include "util/rng.hpp"
#include "verify/oracles.hpp"

namespace mrsc::stress {

namespace {

// Fixed, deliberately small workloads: a campaign runs
// |intensities| * trials * attempts full simulations, so each trial is a
// short but complete exercise of the design's sequential logic.
constexpr std::size_t kCounterBits = 3;
constexpr std::uint64_t kCounterInitial = 2;
constexpr std::size_t kCounterIncrements = 6;
constexpr double kMaSamples[] = {1.0, 0.0, 1.0, 1.0, 0.0, 2.0};
constexpr std::size_t kFsmInputs[] = {1, 0, 1, 0, 1, 1};
constexpr std::size_t kChainElements = 2;
constexpr double kChainTEnd = 40.0 * (kChainElements + 1);

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

// Human-facing table rendering: grid intensities are short decimals, so %g
// avoids the %.17g round-trip noise (0.10000000000000001).
std::string format_short(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Design-specific constants resolved once before the sweep (species names
/// for event faults, the clock-skew label prefix, timing).
struct TrialPlan {
  std::string skew_prefix;
  std::string victim;  ///< species the injection/loss events hit
  double event_time = 0.0;
  double t_end = 0.0;
};

TrialPlan make_plan(Design design) {
  TrialPlan plan;
  const core::RatePolicy policy;  // every design builds with the defaults
  switch (design) {
    case Design::kCounter: {
      core::ReactionNetwork net;
      dsp::CounterSpec spec;
      spec.bits = kCounterBits;
      spec.initial_value = kCounterInitial;
      const dsp::CounterHandles handles = dsp::build_counter(net, spec);
      // Builders rewrite the default clock prefix to <design>_clk, and the
      // clock's reaction labels carry it ("ctr_clk.hop.r2g.seed", ...).
      plan.skew_prefix = "ctr_clk.";
      plan.victim = net.species_name(handles.one_rail[0]);
      plan.t_end =
          analysis::suggest_t_end(spec.clock, policy, kCounterIncrements + 3);
      break;
    }
    case Design::kMovingAverage: {
      const dsp::Design design_build = dsp::make_moving_average();
      plan.skew_prefix = "ma_clk.";
      plan.victim = design_build.network->species_name(
          design_build.circuit.output("y"));
      // make_moving_average compiles with the default clock spec.
      plan.t_end = analysis::suggest_t_end(sync::ClockSpec{}, policy,
                                           std::size(kMaSamples) + 3);
      break;
    }
    case Design::kSequenceDetector: {
      core::ReactionNetwork net;
      const fsm::FsmSpec spec = fsm::make_sequence_detector("101");
      const fsm::FsmHandles handles = fsm::build_fsm(net, spec);
      plan.skew_prefix = "seqdet_clk.";
      plan.victim = net.species_name(handles.state[0]);
      plan.t_end = analysis::suggest_t_end(spec.clock, policy,
                                           std::size(kFsmInputs) + 3);
      break;
    }
    case Design::kAsyncChain: {
      core::ReactionNetwork net;
      async::ChainSpec spec;
      spec.elements = kChainElements;
      const async::ChainHandles handles = async::build_delay_chain(net, spec);
      plan.skew_prefix = "dc.";
      plan.victim = net.species_name(handles.output);
      plan.t_end = kChainTEnd;
      break;
    }
  }
  plan.event_time = 0.3 * plan.t_end;
  return plan;
}

FaultSpec make_spec(const CampaignConfig& config, const TrialPlan& plan,
                    double intensity, std::uint64_t seed) {
  switch (config.fault) {
    case FaultKind::kRateJitter:
      return FaultSpec::rate_jitter(intensity, seed);
    case FaultKind::kRateJitterCategory:
      return FaultSpec::category_jitter(config.category, intensity, seed);
    case FaultKind::kClockSkew:
      return FaultSpec::clock_skew(intensity, seed, plan.skew_prefix);
    case FaultKind::kLeak:
      return FaultSpec::leak(intensity);
    case FaultKind::kInjection:
      return FaultSpec::injection(plan.victim, intensity, plan.event_time);
    case FaultKind::kLoss:
      return FaultSpec::loss(plan.victim, intensity, plan.event_time);
    case FaultKind::kInitialNoise:
      return FaultSpec::initial_noise(intensity, seed);
    case FaultKind::kRateJitterReaction:
    case FaultKind::kStoichiometry:
      break;
  }
  throw std::invalid_argument(
      std::string("run_campaign: fault kind '") + to_string(config.fault) +
      "' has no intensity knob; apply it via apply_faults directly");
}

/// One complete simulation of the design under `spec`. Returns "" when the
/// logic output matches the unperturbed reference, a violation description
/// otherwise. Throws (from the harness or stepper) on simulation trouble.
std::string drive_trial(Design design, const FaultSpec& spec,
                        const sim::OdeOptions& ode) {
  const FaultSpec specs[] = {spec};
  switch (design) {
    case Design::kCounter: {
      core::ReactionNetwork net;
      dsp::CounterSpec cspec;
      cspec.bits = kCounterBits;
      cspec.initial_value = kCounterInitial;
      const dsp::CounterHandles handles = dsp::build_counter(net, cspec);
      FaultedNetwork faulted = apply_faults(net, specs);
      FaultEventObserver events(std::move(faulted.events));
      analysis::ClockedRunOptions options;
      options.ode = ode;
      options.extra_observers = {&events};
      const analysis::CounterRunResult run = analysis::run_counter(
          faulted.network, handles, kCounterIncrements, options);
      const std::uint64_t modulo = 1ULL << kCounterBits;
      for (std::size_t k = 0; k < run.values.size(); ++k) {
        const std::uint64_t expected = (kCounterInitial + k + 1) % modulo;
        if (run.values[k] != expected) {
          return "counter read " + std::to_string(k) + ": got " +
                 std::to_string(run.values[k]) + " expected " +
                 std::to_string(expected);
        }
      }
      return "";
    }
    case Design::kMovingAverage: {
      const dsp::Design build = dsp::make_moving_average();
      FaultedNetwork faulted = apply_faults(*build.network, specs);
      FaultEventObserver events(std::move(faulted.events));
      analysis::ClockedRunOptions options;
      options.ode = ode;
      options.extra_observers = {&events};
      const analysis::ClockedRunResult run = analysis::run_clocked_circuit(
          faulted.network, build.circuit, "x", kMaSamples, "y", options);
      const std::vector<double> expected =
          dsp::reference_moving_average(kMaSamples);
      const verify::MaybeViolation violation = verify::check_series_match(
          "stress.moving_average", run.outputs, expected, {});
      return violation ? violation->detail : "";
    }
    case Design::kSequenceDetector: {
      core::ReactionNetwork net;
      const fsm::FsmSpec fspec = fsm::make_sequence_detector("101");
      const fsm::FsmHandles handles = fsm::build_fsm(net, fspec);
      FaultedNetwork faulted = apply_faults(net, specs);
      FaultEventObserver events(std::move(faulted.events));
      analysis::ClockedRunOptions options;
      options.ode = ode;
      options.extra_observers = {&events};
      const analysis::FsmRunResult run =
          analysis::run_fsm(faulted.network, handles, kFsmInputs, options);
      const fsm::FsmTrace expected =
          fsm::evaluate_reference(fspec, kFsmInputs);
      for (std::size_t k = 0; k < run.states.size(); ++k) {
        if (run.states[k] != expected.states[k]) {
          return "fsm step " + std::to_string(k) + ": state " +
                 std::to_string(run.states[k]) + " expected " +
                 std::to_string(expected.states[k]);
        }
        if (run.outputs[k] != expected.outputs[k]) {
          return "fsm step " + std::to_string(k) + ": output " +
                 std::to_string(run.outputs[k]) + " expected " +
                 std::to_string(expected.outputs[k]);
        }
      }
      return "";
    }
    case Design::kAsyncChain: {
      core::ReactionNetwork net;
      async::ChainSpec cspec;
      cspec.elements = kChainElements;
      const async::ChainHandles handles = async::build_delay_chain(net, cspec);
      net.set_initial(handles.input, 1.0);
      FaultedNetwork faulted = apply_faults(net, specs);
      FaultEventObserver events(std::move(faulted.events));
      sim::Observer* observers[] = {&events};
      const sim::OdeResult run = sim::simulate_ode(
          faulted.network, ode, faulted.network.initial_state(),
          std::span<sim::Observer* const>(observers, 1));
      const sim::SimFailure failure = sim::classify_failure(run);
      if (failure) {
        throw std::runtime_error("async chain: " + failure.detail);
      }
      const double got =
          run.trajectory.final_state()[handles.output.index()];
      const double expected[] = {1.0};
      const double actual[] = {got};
      const verify::MaybeViolation violation = verify::check_series_match(
          "stress.async_chain", actual, expected, {});
      return violation ? violation->detail : "";
    }
  }
  throw std::invalid_argument("drive_trial: unknown design");
}

sim::SimFailure classify_exception(const std::string& what) {
  if (what.find("aborted by deadline") != std::string::npos) {
    return {sim::SimFailureKind::kDeadline, what};
  }
  return {sim::SimFailureKind::kException, what};
}

TrialResult run_trial(const CampaignConfig& config, const TrialPlan& plan,
                      double intensity, std::uint64_t seed) {
  TrialResult result;
  result.seed = seed;
  const FaultSpec spec = make_spec(config, plan, intensity, seed);

  sim::OdeOptions base;
  base.t_end = plan.t_end;
  // A fault can make the network arbitrarily stiff, and an unbudgeted trial
  // would grind for minutes inside the sweep. The step cap ends such a run
  // early; the harness reports the incomplete run, and the trial is
  // classified and quarantined instead of hanging the campaign.
  base.max_steps = 5'000'000;
  // Two rungs: the harness owns its observers, so deeper rungs (implicit
  // fixed-step, SSA) are left to the generic fallback path in sim/.
  const std::size_t attempts_allowed =
      std::clamp<std::size_t>(config.max_attempts, 1, 2);
  for (std::size_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    const char* rung = attempt == 0 ? "dp45" : "tightened";
    const sim::OdeOptions ode =
        attempt == 0 ? base : sim::tightened_options(base);
    result.recovery.final_rung = rung;
    try {
      const std::string mismatch = drive_trial(config.design, spec, ode);
      result.attempts = attempt + 1;
      result.recovery.recovered = !result.recovery.attempts.empty();
      if (mismatch.empty()) {
        result.status = TrialStatus::kOk;
        result.detail.clear();
      } else {
        result.status = TrialStatus::kMismatch;
        result.detail = mismatch;
      }
      return result;
    } catch (const std::exception& error) {
      const sim::SimFailure failure = classify_exception(error.what());
      result.recovery.attempts.push_back({attempt, rung, failure, 0.0});
      result.detail = std::string(sim::to_string(failure.kind)) + ": " +
                      failure.detail;
    }
  }
  // Every rung failed: quarantine the trial, the sweep continues.
  result.status = TrialStatus::kSimFailure;
  result.attempts = attempts_allowed;
  return result;
}

}  // namespace

const char* to_string(Design design) {
  switch (design) {
    case Design::kCounter:
      return "counter";
    case Design::kMovingAverage:
      return "moving_average";
    case Design::kSequenceDetector:
      return "sequence_detector";
    case Design::kAsyncChain:
      return "async_chain";
  }
  return "unknown";
}

std::optional<Design> parse_design(std::string_view name) {
  if (name == "counter") return Design::kCounter;
  if (name == "moving_average") return Design::kMovingAverage;
  if (name == "sequence_detector") return Design::kSequenceDetector;
  if (name == "async_chain") return Design::kAsyncChain;
  return std::nullopt;
}

const char* to_string(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk:
      return "ok";
    case TrialStatus::kMismatch:
      return "mismatch";
    case TrialStatus::kSimFailure:
      return "sim-failure";
  }
  return "unknown";
}

std::vector<double> default_intensities(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLeak:
      // Leaks are by far the most damaging fault (every species decays,
      // clock phases included), so the grid starts well below the jitter
      // family's scale.
      return {0.0001, 0.0003, 0.001, 0.003, 0.01};
    case FaultKind::kInjection:
      return {0.1, 0.2, 0.4, 0.8, 1.6};
    case FaultKind::kLoss:
      return {0.1, 0.25, 0.5, 0.75, 0.9};
    default:
      // Jitter-family kinds: sigma of ln(rate multiplier).
      return {0.02, 0.05, 0.1, 0.2, 0.4};
  }
}

std::string CampaignResult::to_table() const {
  char line[160];
  std::string out = "design=" + std::string(stress::to_string(design)) +
                    " fault=" + stress::to_string(fault) +
                    " trials=" + std::to_string(trials_per_intensity) +
                    " base_seed=" + std::to_string(base_seed);
  if (!target.empty()) out += " target=" + target;
  out += "\n";
  std::snprintf(line, sizeof line, "%12s %4s %9s %8s %10s  %s\n", "intensity",
                "ok", "mismatch", "simfail", "recovered", "verdict");
  out += line;
  for (const IntensityResult& point : intensities) {
    std::snprintf(line, sizeof line, "%12g %4zu %9zu %8zu %10zu  %s\n",
                  point.intensity, point.ok, point.mismatch,
                  point.sim_failure, point.recovered,
                  point.all_ok() ? "pass" : "FAIL");
    out += line;
  }
  out += "robustness margin: ";
  out += margin_found ? format_short(margin) : "none (smallest intensity already fails)";
  out += "\n";
  return out;
}

std::string CampaignResult::to_json() const {
  std::string out = "{\n";
  out += "  \"design\": \"" + std::string(stress::to_string(design)) + "\",\n";
  out += "  \"fault\": \"" + std::string(stress::to_string(fault)) + "\",\n";
  out += "  \"trials_per_intensity\": " +
         std::to_string(trials_per_intensity) + ",\n";
  out += "  \"base_seed\": " + std::to_string(base_seed) + ",\n";
  out += "  \"target\": \"" + json_escape(target) + "\",\n";
  out += "  \"margin\": " + format_double(margin) + ",\n";
  out += std::string("  \"margin_found\": ") +
         (margin_found ? "true" : "false") + ",\n";
  out += "  \"intensities\": [\n";
  for (std::size_t i = 0; i < intensities.size(); ++i) {
    const IntensityResult& point = intensities[i];
    out += "    {\"intensity\": " + format_double(point.intensity);
    out += ", \"ok\": " + std::to_string(point.ok);
    out += ", \"mismatch\": " + std::to_string(point.mismatch);
    out += ", \"sim_failure\": " + std::to_string(point.sim_failure);
    out += ", \"recovered\": " + std::to_string(point.recovered);
    out += ", \"trials\": [";
    for (std::size_t t = 0; t < point.trials.size(); ++t) {
      const TrialResult& trial = point.trials[t];
      if (t > 0) out += ", ";
      out += "{\"seed\": " + std::to_string(trial.seed);
      out += ", \"status\": \"";
      out += stress::to_string(trial.status);
      out += "\", \"detail\": \"" + json_escape(trial.detail) + "\"";
      out += ", \"attempts\": " + std::to_string(trial.attempts);
      out += ", \"recovery\": " + trial.recovery.to_json();
      out += "}";
    }
    out += "]}";
    out += i + 1 < intensities.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("run_campaign: need >= 1 trial per intensity");
  }
  std::vector<double> grid = config.intensities.empty()
                                 ? default_intensities(config.fault)
                                 : config.intensities;
  std::sort(grid.begin(), grid.end());
  for (const double g : grid) {
    if (g <= 0.0) {
      throw std::invalid_argument("run_campaign: intensities must be > 0");
    }
  }
  const TrialPlan plan = make_plan(config.design);
  // Validates the fault kind up front (and fails fast on usage errors)
  // rather than inside every worker.
  (void)make_spec(config, plan, grid.front(), 1);

  CampaignResult result;
  result.design = config.design;
  result.fault = config.fault;
  result.trials_per_intensity = config.trials;
  result.base_seed = config.base_seed;
  if (config.fault == FaultKind::kInjection ||
      config.fault == FaultKind::kLoss) {
    result.target = plan.victim;
  } else if (config.fault == FaultKind::kClockSkew) {
    result.target = plan.skew_prefix;
  }

  const std::size_t total = grid.size() * config.trials;
  std::vector<TrialResult> trials(total);
  runtime::BatchRunner runner({.threads = config.threads});
  runner.for_each_index(total, [&](std::size_t flat) {
    const std::size_t point = flat / config.trials;
    const std::uint64_t seed = util::Rng::stream_seed(config.base_seed, flat);
    trials[flat] = run_trial(config, plan, grid[point], seed);
  });

  result.intensities.resize(grid.size());
  for (std::size_t point = 0; point < grid.size(); ++point) {
    IntensityResult& summary = result.intensities[point];
    summary.intensity = grid[point];
    for (std::size_t t = 0; t < config.trials; ++t) {
      TrialResult& trial = trials[point * config.trials + t];
      switch (trial.status) {
        case TrialStatus::kOk:
          ++summary.ok;
          break;
        case TrialStatus::kMismatch:
          ++summary.mismatch;
          break;
        case TrialStatus::kSimFailure:
          ++summary.sim_failure;
          break;
      }
      if (trial.recovery.recovered) ++summary.recovered;
      summary.trials.push_back(std::move(trial));
    }
  }

  // Margin: the largest intensity of the maximal all-pass prefix.
  for (const IntensityResult& point : result.intensities) {
    if (!point.all_ok()) break;
    result.margin = point.intensity;
    result.margin_found = true;
  }
  return result;
}

}  // namespace mrsc::stress
