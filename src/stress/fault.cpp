#include "stress/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace mrsc::stress {

namespace {

bool label_matches(const FaultSpec& spec, const core::Reaction& reaction) {
  switch (spec.kind) {
    case FaultKind::kRateJitter:
      return true;
    case FaultKind::kRateJitterCategory:
      return reaction.category() == spec.category;
    case FaultKind::kRateJitterReaction:
      return reaction.label() == spec.label;
    case FaultKind::kClockSkew:
      return reaction.label().starts_with(spec.label);
    default:
      return false;
  }
}

void apply_rate_jitter_spec(core::ReactionNetwork& network,
                            const FaultSpec& spec) {
  util::Rng rng(spec.seed);
  std::size_t touched = 0;
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    const core::ReactionId id(static_cast<std::uint32_t>(r));
    core::Reaction& reaction = network.reaction_mutable(id);
    // Draw for every candidate, apply only to matches? No — draws must be a
    // pure function of (seed, match sequence) so adding unrelated reactions
    // elsewhere doesn't reshuffle a targeted fault. Draw only on match.
    if (!label_matches(spec, reaction)) continue;
    const double multiplier = std::exp(spec.intensity * rng.normal());
    reaction.set_rate_multiplier(reaction.rate_multiplier() * multiplier);
    ++touched;
  }
  if (touched == 0 && (spec.kind == FaultKind::kRateJitterReaction ||
                       spec.kind == FaultKind::kClockSkew)) {
    throw std::invalid_argument("apply_faults: no reaction matches label '" +
                                spec.label + "'");
  }
}

void apply_leak_spec(core::ReactionNetwork& network, const FaultSpec& spec) {
  const double rate = spec.intensity * network.rate_policy().k_slow;
  if (rate <= 0.0) return;
  // Species count is frozen first: the loop adds reactions, never species.
  const std::size_t count = network.species_count();
  std::size_t touched = 0;
  for (std::size_t s = 0; s < count; ++s) {
    const core::SpeciesId id(static_cast<std::uint32_t>(s));
    const std::string& name = network.species_name(id);
    if (!spec.species.empty() && !name.starts_with(spec.species)) continue;
    network.add({{id, 1}}, {}, core::RateCategory::kCustom, rate,
                "stress.leak." + name);
    ++touched;
  }
  if (touched == 0) {
    throw std::invalid_argument(
        "apply_faults: no species matches leak prefix '" + spec.species + "'");
  }
}

void apply_initial_noise_spec(core::ReactionNetwork& network,
                              const FaultSpec& spec) {
  util::Rng rng(spec.seed);
  for (std::size_t s = 0; s < network.species_count(); ++s) {
    const core::SpeciesId id(static_cast<std::uint32_t>(s));
    const double initial = network.initial(id);
    if (initial == 0.0) continue;
    network.set_initial(id, initial * std::exp(spec.intensity * rng.normal()));
  }
}

core::SpeciesId resolve_species(const core::ReactionNetwork& network,
                                const FaultSpec& spec) {
  const std::optional<core::SpeciesId> id = network.find_species(spec.species);
  if (!id) {
    throw std::invalid_argument("apply_faults: unknown species '" +
                                spec.species + "'");
  }
  return *id;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRateJitter:
      return "rate-jitter";
    case FaultKind::kRateJitterCategory:
      return "category-jitter";
    case FaultKind::kRateJitterReaction:
      return "reaction-jitter";
    case FaultKind::kClockSkew:
      return "clock-skew";
    case FaultKind::kLeak:
      return "leak";
    case FaultKind::kInjection:
      return "injection";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kInitialNoise:
      return "initial-noise";
    case FaultKind::kStoichiometry:
      return "stoichiometry";
  }
  return "unknown";
}

std::optional<FaultKind> parse_fault_kind(std::string_view name) {
  if (name == "rate-jitter") return FaultKind::kRateJitter;
  if (name == "category-jitter") return FaultKind::kRateJitterCategory;
  if (name == "reaction-jitter") return FaultKind::kRateJitterReaction;
  if (name == "clock-skew") return FaultKind::kClockSkew;
  if (name == "leak") return FaultKind::kLeak;
  if (name == "injection") return FaultKind::kInjection;
  if (name == "loss") return FaultKind::kLoss;
  if (name == "initial-noise") return FaultKind::kInitialNoise;
  if (name == "stoichiometry") return FaultKind::kStoichiometry;
  return std::nullopt;
}

FaultSpec FaultSpec::rate_jitter(double sigma, std::uint64_t seed) {
  FaultSpec spec;
  spec.kind = FaultKind::kRateJitter;
  spec.intensity = sigma;
  spec.seed = seed;
  return spec;
}

FaultSpec FaultSpec::category_jitter(core::RateCategory category, double sigma,
                                     std::uint64_t seed) {
  FaultSpec spec;
  spec.kind = FaultKind::kRateJitterCategory;
  spec.intensity = sigma;
  spec.seed = seed;
  spec.category = category;
  return spec;
}

FaultSpec FaultSpec::reaction_jitter(std::string label, double sigma,
                                     std::uint64_t seed) {
  FaultSpec spec;
  spec.kind = FaultKind::kRateJitterReaction;
  spec.intensity = sigma;
  spec.seed = seed;
  spec.label = std::move(label);
  return spec;
}

FaultSpec FaultSpec::clock_skew(double sigma, std::uint64_t seed,
                                std::string prefix) {
  FaultSpec spec;
  spec.kind = FaultKind::kClockSkew;
  spec.intensity = sigma;
  spec.seed = seed;
  spec.label = std::move(prefix);
  return spec;
}

FaultSpec FaultSpec::leak(double rate_fraction, std::string species_prefix) {
  FaultSpec spec;
  spec.kind = FaultKind::kLeak;
  spec.intensity = rate_fraction;
  spec.species = std::move(species_prefix);
  return spec;
}

FaultSpec FaultSpec::injection(std::string species, double amount,
                               double time) {
  FaultSpec spec;
  spec.kind = FaultKind::kInjection;
  spec.intensity = amount;
  spec.species = std::move(species);
  spec.time = time;
  return spec;
}

FaultSpec FaultSpec::loss(std::string species, double fraction, double time) {
  FaultSpec spec;
  spec.kind = FaultKind::kLoss;
  spec.intensity = fraction;
  spec.species = std::move(species);
  spec.time = time;
  return spec;
}

FaultSpec FaultSpec::initial_noise(double sigma, std::uint64_t seed) {
  FaultSpec spec;
  spec.kind = FaultKind::kInitialNoise;
  spec.intensity = sigma;
  spec.seed = seed;
  return spec;
}

FaultSpec FaultSpec::stoichiometry(std::string label) {
  FaultSpec spec;
  spec.kind = FaultKind::kStoichiometry;
  spec.label = std::move(label);
  return spec;
}

FaultedNetwork apply_faults(const core::ReactionNetwork& network,
                            std::span<const FaultSpec> specs) {
  FaultedNetwork out{network, {}};
  for (const FaultSpec& spec : specs) {
    switch (spec.kind) {
      case FaultKind::kRateJitter:
      case FaultKind::kRateJitterCategory:
      case FaultKind::kRateJitterReaction:
      case FaultKind::kClockSkew:
        apply_rate_jitter_spec(out.network, spec);
        break;
      case FaultKind::kLeak:
        apply_leak_spec(out.network, spec);
        break;
      case FaultKind::kInjection:
        out.events.push_back({spec.time, resolve_species(out.network, spec),
                              spec.intensity, 1.0});
        break;
      case FaultKind::kLoss:
        out.events.push_back({spec.time, resolve_species(out.network, spec),
                              0.0, 1.0 - std::clamp(spec.intensity, 0.0, 1.0)});
        break;
      case FaultKind::kInitialNoise:
        apply_initial_noise_spec(out.network, spec);
        break;
      case FaultKind::kStoichiometry:
        out.network = with_stoichiometry_fault(
            out.network, find_reaction_by_label(out.network, spec.label));
        break;
    }
  }
  return out;
}

FaultEventObserver::FaultEventObserver(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

void FaultEventObserver::on_step(double t, std::span<double> state) {
  while (next_ < events_.size() && events_[next_].time <= t) {
    const FaultEvent& event = events_[next_];
    double& value = state[event.species.index()];
    value = std::max(0.0, event.scale * value + event.add);
    ++next_;
  }
}

core::ReactionNetwork with_stoichiometry_fault(
    const core::ReactionNetwork& network, core::ReactionId target) {
  if (target.index() >= network.reaction_count()) {
    throw std::out_of_range("with_stoichiometry_fault: bad reaction id");
  }
  core::ReactionNetwork out;
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    const core::SpeciesId id(static_cast<std::uint32_t>(i));
    out.add_species(network.species_name(id), network.initial(id));
  }
  out.set_rate_policy(network.rate_policy());
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    const core::Reaction& reaction =
        network.reaction(core::ReactionId(static_cast<std::uint32_t>(r)));
    if (r != target.index()) {
      out.add_reaction(reaction);
      continue;
    }
    std::vector<core::Term> products = reaction.products();
    if (products.empty() && reaction.reactants().empty()) {
      throw std::invalid_argument(
          "with_stoichiometry_fault: reaction has no terms to corrupt");
    }
    if (products.empty()) {
      products.push_back({reaction.reactants().front().species, 1});
    } else {
      products.front().stoich += 1;
    }
    core::Reaction faulty(reaction.reactants(), std::move(products),
                          reaction.category(), reaction.custom_rate(),
                          reaction.label());
    faulty.set_rate_multiplier(reaction.rate_multiplier());
    out.add_reaction(std::move(faulty));
  }
  return out;
}

core::ReactionId find_reaction_by_label(const core::ReactionNetwork& network,
                                        const std::string& label) {
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    const core::ReactionId id(static_cast<std::uint32_t>(r));
    if (network.reaction(id).label() == label) return id;
  }
  throw std::invalid_argument("find_reaction_by_label: no reaction labelled '" +
                              label + "'");
}

}  // namespace mrsc::stress
