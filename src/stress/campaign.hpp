// Fault-intensity sweep campaigns: how much perturbation does a design take?
//
// A campaign fixes one design and one fault kind, sweeps the fault intensity
// over a grid, and runs several seeded trials per grid point. Each trial
// builds a fresh compiled network, applies the seeded `FaultSpec`, drives
// the design through the standard harness, and compares the logic output
// against the exact unperturbed reference (the same oracles verify/ uses).
// The *robustness margin* is the largest intensity for which every trial of
// every intensity up to and including it still matches the reference — the
// quantitative counterpart of the paper's "any rates work as long as fast >>
// slow" claim.
//
// Campaigns are built to degrade gracefully, not abort: a trial whose
// simulation misbehaves is retried down a two-rung ladder (as-requested ->
// tightened; see sim/fallback.hpp) with fresh observers per attempt, and a
// trial that still fails is *classified and quarantined* — counted, logged,
// and the sweep continues. Determinism: trial seeds derive from
// (base_seed, flat trial index), so results are identical at any thread
// count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/reaction.hpp"
#include "sim/fallback.hpp"
#include "stress/fault.hpp"

namespace mrsc::stress {

enum class Design : std::uint8_t {
  kCounter,           ///< 3-bit dual-rail ripple counter, 6 increments
  kMovingAverage,     ///< y[n] = (x[n] + x[n-1]) / 2, 6 samples
  kSequenceDetector,  ///< "101" detector FSM, 6 symbols
  kAsyncChain,        ///< 2-element self-timed delay chain, one token
};

[[nodiscard]] const char* to_string(Design design);
[[nodiscard]] std::optional<Design> parse_design(std::string_view name);

struct CampaignConfig {
  Design design = Design::kCounter;
  FaultKind fault = FaultKind::kRateJitter;
  /// kRateJitterCategory only: which category to jitter.
  core::RateCategory category = core::RateCategory::kSlow;
  /// Intensity grid, ascending. Empty selects a per-kind default grid.
  std::vector<double> intensities;
  /// Seeded trials per grid point.
  std::size_t trials = 3;
  std::uint64_t base_seed = 42;
  std::size_t threads = 1;
  /// Trial-level ladder attempts (1 = no retry, 2 adds the tightened rung).
  std::size_t max_attempts = 2;
};

enum class TrialStatus : std::uint8_t {
  kOk,          ///< output matched the unperturbed reference
  kMismatch,    ///< run completed but the verify oracle found a deviation
  kSimFailure,  ///< simulation failed on every ladder rung; quarantined
};

[[nodiscard]] const char* to_string(TrialStatus status);

struct TrialResult {
  std::uint64_t seed = 0;
  TrialStatus status = TrialStatus::kOk;
  std::string detail;  ///< oracle violation or classified failure text
  std::size_t attempts = 1;
  sim::RecoveryLog recovery{};  ///< non-empty when the ladder was walked
};

struct IntensityResult {
  double intensity = 0.0;
  std::size_t ok = 0;
  std::size_t mismatch = 0;
  std::size_t sim_failure = 0;
  std::size_t recovered = 0;  ///< trials that needed a ladder retry to pass
  std::vector<TrialResult> trials;

  [[nodiscard]] bool all_ok() const { return ok == trials.size(); }
};

struct CampaignResult {
  Design design = Design::kCounter;
  FaultKind fault = FaultKind::kRateJitter;
  std::size_t trials_per_intensity = 0;
  std::uint64_t base_seed = 0;
  /// What the fault targeted (species name for injection/loss, label prefix
  /// for clock skew, empty otherwise) — echoed for reproducibility.
  std::string target;
  /// Largest intensity with every trial passing at it and below; 0 with
  /// margin_found == false when the smallest grid point already fails.
  double margin = 0.0;
  bool margin_found = false;
  std::vector<IntensityResult> intensities;

  [[nodiscard]] std::string to_table() const;
  [[nodiscard]] std::string to_json() const;
};

/// Default intensity grid for a fault kind (ascending).
[[nodiscard]] std::vector<double> default_intensities(FaultKind kind);

/// Runs the sweep. Throws std::invalid_argument for fault kinds that have no
/// continuous intensity knob in a campaign (kRateJitterReaction,
/// kStoichiometry — use apply_faults directly for those).
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace mrsc::stress
