// Strong index types.
//
// The CRN data model is index-based: species and reactions live in append-only
// tables and everything else refers to them by index. Raw integers invite
// mix-ups (passing a reaction index where a species index is expected), so
// indices are wrapped in a tagged strong type with explicit conversion only.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace mrsc {

/// A strongly typed 32-bit index. `Tag` is a phantom type that makes ids of
/// different kinds mutually unassignable at compile time.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  /// Default-constructed ids are invalid.
  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type value) : value_(value) {}

  /// Underlying index value; only meaningful when `valid()`.
  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  /// The sentinel "no id" value.
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();
  underlying_type value_ = kInvalid;
};

struct SpeciesTag {};
struct ReactionTag {};

/// Index of a species in a `ReactionNetwork`.
using SpeciesId = StrongId<SpeciesTag>;
/// Index of a reaction in a `ReactionNetwork`.
using ReactionId = StrongId<ReactionTag>;

}  // namespace mrsc

template <typename Tag>
struct std::hash<mrsc::StrongId<Tag>> {
  std::size_t operator()(mrsc::StrongId<Tag> id) const noexcept {
    return std::hash<typename mrsc::StrongId<Tag>::underlying_type>{}(
        id.value());
  }
};
