// Small dense-matrix linear algebra.
//
// The semi-implicit ODE integrator solves (I - h*J) dx = f at every step,
// where J is the mass-action Jacobian. Networks in this library are modest
// (tens to a few hundred species), so a dense LU factorization with partial
// pivoting is the right tool; no external BLAS/LAPACK dependency is needed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mrsc::util {

/// Row-major dense matrix of `double`.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous row-major storage (size rows()*cols()).
  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// Sets every entry to `value`.
  void fill(double value);

  /// Sets this matrix to the identity (must be square).
  void set_identity();

  /// Returns `this * v`. `v.size()` must equal `cols()`.
  [[nodiscard]] std::vector<double> multiply(std::span<const double> v) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Factorizes once, then solves any number of right-hand sides. Throws
/// `std::runtime_error` if the matrix is numerically singular.
class LuFactorization {
 public:
  /// Factorizes `a` (copied; `a` itself is not modified).
  explicit LuFactorization(const Matrix& a);

  /// Solves `A x = b`; returns x. `b.size()` must equal the matrix dimension.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solves in place.
  void solve_in_place(std::span<double> b) const;

  [[nodiscard]] std::size_t dimension() const { return n_; }

  /// Determinant of the factorized matrix (product of pivots, sign-adjusted).
  [[nodiscard]] double determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> pivot_;
  int pivot_sign_ = 1;
};

}  // namespace mrsc::util
