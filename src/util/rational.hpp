// Exact rational linear algebra for integer matrices.
//
// Conservation analysis wants *proofs*, not tolerances: a weight vector w
// with w^T S = 0 holds exactly or it does not. Stoichiometric matrices have
// small integer entries, so Gauss-Jordan elimination over int64 rationals is
// both exact and cheap; every intermediate product is overflow-checked and
// the caller falls back to floating point on the (pathological) overflow.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace mrsc::util {

/// An exact rational with canonical form: den > 0, gcd(|num|, den) == 1.
/// Arithmetic throws `std::overflow_error` when a product or sum leaves the
/// int64 range (detected via 128-bit intermediates, never UB).
struct Rational {
  std::int64_t num = 0;
  std::int64_t den = 1;

  Rational() = default;
  Rational(std::int64_t n, std::int64_t d);
  static Rational of(std::int64_t n) { return Rational(n, 1); }

  [[nodiscard]] bool is_zero() const { return num == 0; }

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);
  friend bool operator==(const Rational& a, const Rational& b) = default;
};

/// Exact basis of the left null space { w : w^T A = 0 } of an integer
/// matrix (entries of `a` must be integral up to 1e-9, or
/// `std::invalid_argument` is thrown — stoichiometric matrices always are).
/// Each basis vector is scaled to the smallest integer vector with positive
/// leading entry, so results are reproducible and human-readable. Throws
/// `std::overflow_error` if the elimination leaves int64 range.
[[nodiscard]] std::vector<std::vector<std::int64_t>> integer_left_nullspace(
    const Matrix& a);

}  // namespace mrsc::util
