#include "util/rational.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mrsc::util {

namespace {

std::int64_t checked_narrow(__int128 value, const char* what) {
  if (value > static_cast<__int128>(INT64_MAX) ||
      value < static_cast<__int128>(INT64_MIN)) {
    throw std::overflow_error(std::string("rational arithmetic overflow in ") +
                              what);
  }
  return static_cast<std::int64_t>(value);
}

std::int64_t mul(std::int64_t a, std::int64_t b, const char* what) {
  return checked_narrow(static_cast<__int128>(a) * b, what);
}

}  // namespace

Rational::Rational(std::int64_t n, std::int64_t d) : num(n), den(d) {
  if (den == 0) throw std::invalid_argument("Rational: zero denominator");
  if (den < 0) {
    num = checked_narrow(-static_cast<__int128>(num), "negate");
    den = checked_narrow(-static_cast<__int128>(den), "negate");
  }
  const std::int64_t g = std::gcd(num < 0 ? -num : num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
}

Rational operator+(const Rational& a, const Rational& b) {
  const __int128 n = static_cast<__int128>(a.num) * b.den +
                     static_cast<__int128>(b.num) * a.den;
  return Rational(checked_narrow(n, "add"), mul(a.den, b.den, "add"));
}

Rational operator-(const Rational& a, const Rational& b) {
  const __int128 n = static_cast<__int128>(a.num) * b.den -
                     static_cast<__int128>(b.num) * a.den;
  return Rational(checked_narrow(n, "sub"), mul(a.den, b.den, "sub"));
}

Rational operator*(const Rational& a, const Rational& b) {
  return Rational(mul(a.num, b.num, "mul"), mul(a.den, b.den, "mul"));
}

Rational operator/(const Rational& a, const Rational& b) {
  if (b.num == 0) throw std::invalid_argument("Rational: division by zero");
  return Rational(mul(a.num, b.den, "div"), mul(a.den, b.num, "div"));
}

std::vector<std::vector<std::int64_t>> integer_left_nullspace(
    const Matrix& a) {
  const std::size_t species = a.rows();
  const std::size_t reactions = a.cols();

  // Work on A^T (reactions x species): its null space is the left null
  // space of A. Gauss-Jordan to reduced row-echelon form over rationals.
  std::vector<std::vector<Rational>> m(reactions,
                                       std::vector<Rational>(species));
  for (std::size_t r = 0; r < reactions; ++r) {
    for (std::size_t s = 0; s < species; ++s) {
      const double value = a(s, r);
      const double rounded = std::round(value);
      if (std::abs(value - rounded) > 1e-9) {
        throw std::invalid_argument(
            "integer_left_nullspace: non-integer matrix entry");
      }
      m[r][s] = Rational::of(static_cast<std::int64_t>(rounded));
    }
  }

  std::vector<std::size_t> pivot_col;
  std::size_t row = 0;
  for (std::size_t col = 0; col < species && row < reactions; ++col) {
    std::size_t pivot = row;
    while (pivot < reactions && m[pivot][col].is_zero()) ++pivot;
    if (pivot == reactions) continue;
    std::swap(m[row], m[pivot]);
    const Rational inv = Rational::of(1) / m[row][col];
    for (std::size_t s = col; s < species; ++s) m[row][s] = m[row][s] * inv;
    for (std::size_t r = 0; r < reactions; ++r) {
      if (r == row || m[r][col].is_zero()) continue;
      const Rational factor = m[r][col];
      for (std::size_t s = col; s < species; ++s) {
        m[r][s] = m[r][s] - factor * m[row][s];
      }
    }
    pivot_col.push_back(col);
    ++row;
  }

  std::vector<bool> is_pivot(species, false);
  for (const std::size_t col : pivot_col) is_pivot[col] = true;

  std::vector<std::vector<std::int64_t>> basis;
  for (std::size_t free = 0; free < species; ++free) {
    if (is_pivot[free]) continue;
    // Null vector with 1 in the free column, back-substituted pivots.
    std::vector<Rational> w(species);
    w[free] = Rational::of(1);
    for (std::size_t p = 0; p < pivot_col.size(); ++p) {
      w[pivot_col[p]] = Rational::of(0) - m[p][free];
    }
    // Scale to the smallest integer vector with positive leading entry.
    std::int64_t lcm = 1;
    for (const Rational& x : w) {
      if (!x.is_zero()) lcm = mul(lcm / std::gcd(lcm, x.den), x.den, "lcm");
    }
    std::vector<std::int64_t> iw(species, 0);
    std::int64_t g = 0;
    for (std::size_t s = 0; s < species; ++s) {
      iw[s] = mul(w[s].num, lcm / w[s].den, "scale");
      g = std::gcd(g, iw[s] < 0 ? -iw[s] : iw[s]);
    }
    if (g > 1) {
      for (std::int64_t& x : iw) x /= g;
    }
    for (const std::int64_t x : iw) {
      if (x == 0) continue;
      if (x < 0) {
        for (std::int64_t& y : iw) y = -y;
      }
      break;
    }
    basis.push_back(std::move(iw));
  }
  return basis;
}

}  // namespace mrsc::util
