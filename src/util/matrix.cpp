#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mrsc::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double value) { std::ranges::fill(data_, value); }

void Matrix::set_identity() {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::set_identity: matrix not square");
  }
  fill(0.0);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) = 1.0;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

LuFactorization::LuFactorization(const Matrix& a)
    : n_(a.rows()), lu_(a), pivot_(a.rows()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix not square");
  }
  for (std::size_t i = 0; i < n_; ++i) pivot_[i] = i;

  for (std::size_t col = 0; col < n_; ++col) {
    // Partial pivoting: pick the row with the largest magnitude in this
    // column at or below the diagonal.
    std::size_t best = col;
    double best_mag = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double mag = std::abs(lu_(r, col));
      if (mag > best_mag) {
        best = r;
        best_mag = mag;
      }
    }
    if (best_mag == 0.0) {
      throw std::runtime_error("LuFactorization: singular matrix");
    }
    if (best != col) {
      for (std::size_t c = 0; c < n_; ++c) {
        std::swap(lu_(best, c), lu_(col, c));
      }
      std::swap(pivot_[best], pivot_[col]);
      pivot_sign_ = -pivot_sign_;
    }
    const double inv_pivot = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double factor = lu_(r, col) * inv_pivot;
      lu_(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n_; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void LuFactorization::solve_in_place(std::span<double> b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("LuFactorization::solve: dimension mismatch");
  }
  // Apply the row permutation.
  std::vector<double> y(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[pivot_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * y[j];
    y[ii] = acc / lu_(ii, ii);
  }
  std::ranges::copy(y, b.begin());
}

double LuFactorization::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

}  // namespace mrsc::util
