#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mrsc::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // Guard against the (astronomically unlikely) all-zero state, which is the
  // one state xoshiro cannot escape.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::uniform_positive() {
  double u = uniform();
  while (u == 0.0) u = uniform();
  return u;
}

double Rng::exponential(double rate) {
  return -std::log(uniform_positive()) / rate;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  const double u1 = uniform_positive();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: count uniform draws until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform_positive();
    while (product > limit) {
      ++count;
      product *= uniform_positive();
    }
    return count;
  }
  // Normal approximation, adequate for the leap sizes tau-leaping uses.
  const double value = normal(mean, std::sqrt(mean));
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
}

double Rng::log_uniform_jitter(double factor) {
  const double log_factor = std::log(factor);
  return std::exp(uniform(-log_factor, log_factor));
}

std::uint64_t Rng::stream_seed(std::uint64_t base_seed, std::uint64_t stream) {
  // (stream + 1) * odd-constant is injective in `stream`, so for a fixed base
  // every stream lands on a distinct splitmix64 input; the finalizer then
  // decorrelates neighbouring streams.
  std::uint64_t s = base_seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return splitmix64(s);
}

Rng Rng::split(std::uint64_t stream) const {
  // Fold the current 256-bit state down to 64 bits (without touching it) and
  // derive the child stream from the fold.
  std::uint64_t folded = stream_seed(state_[0], state_[1]) ^
                         stream_seed(state_[2], state_[3]);
  return Rng(stream_seed(folded, stream));
}

}  // namespace mrsc::util
