// Deterministic random number generation for stochastic simulation.
//
// Stochastic simulation (SSA) and rate-jitter robustness sweeps must be
// reproducible run to run and platform to platform, so the library carries its
// own generator (xoshiro256**, seeded via SplitMix64) rather than relying on
// the implementation-defined distributions of <random>.
#pragma once

#include <array>
#include <cstdint>

namespace mrsc::util {

/// xoshiro256** pseudo-random generator (Blackman & Vigna). Fast, high
/// quality, and fully deterministic given a seed.
class Rng {
 public:
  /// Seeds the generator state via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double uniform_positive();

  /// Standard exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Standard normal variate (Box-Muller; one value per call, cached pair).
  double normal();

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, bound) using Lemire's method.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Poisson variate (Knuth's method for small means, normal approximation
  /// with rounding for large ones). Used by the tau-leaping simulator.
  std::uint64_t poisson(double mean);

  /// Log-uniform multiplicative jitter in [1/factor, factor]; used by the
  /// rate-robustness sweeps to perturb individual rate constants.
  double log_uniform_jitter(double factor);

  /// Derives the seed of sub-stream `stream` from `base_seed` by one
  /// SplitMix64 finalization of an affine combination of the two. Distinct
  /// streams of the same base are guaranteed distinct (the combination is
  /// injective in `stream` and the finalizer is a bijection), so batch
  /// runtimes can hand replicate i the seed `stream_seed(base, i)` and get
  /// results that depend only on (base, i) — never on scheduling order.
  [[nodiscard]] static std::uint64_t stream_seed(std::uint64_t base_seed,
                                                 std::uint64_t stream);

  /// Returns an independent generator for sub-stream `stream`, derived from
  /// this generator's current state without advancing it.
  [[nodiscard]] Rng split(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mrsc::util
