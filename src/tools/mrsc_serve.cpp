// mrsc_serve — long-running simulation service over the length-prefixed
// JSON protocol (docs/SERVE.md).
//
//   mrsc_serve [options]
//
//   --host A           IPv4 address to bind        (default 127.0.0.1)
//   --port P           TCP port; 0 = ephemeral     (default 0)
//   --port-file PATH   write the bound port to PATH (for scripts/CI that
//                      start the server on an ephemeral port)
//   --workers N        job worker threads          (default: hardware)
//   --queue N          admitted jobs beyond the workers before requests
//                      are rejected with "overload" (default 64)
//   --cache N          result-cache capacity, entries; 0 disables (default 256)
//   --cache-mb MB      result-cache capacity, payload megabytes (default 64)
//   --max-conns N      concurrent client connections (default 64)
//   --shard-id S       operator-assigned shard name echoed by the
//                      stats/health ops (fleet deployments; default "")
//
// The server runs until SIGTERM/SIGINT, then shuts down cooperatively
// (in-flight jobs are cancelled at their next poll point) and prints the
// final stats payload so every run ends with a machine-readable summary.
//
// Exit codes:
//   0  clean shutdown on signal
//   1  runtime error (bind failure, unwritable --port-file)
//   2  bad CLI usage
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace {

using namespace mrsc;

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int signum) { g_signal = signum; }

struct CliOptions {
  serve::ServerOptions server;
  std::string port_file;
};

void usage() {
  std::fprintf(stderr,
               "usage: mrsc_serve [--host A] [--port P] [--port-file PATH]\n"
               "       [--workers N] [--queue N] [--cache N] [--cache-mb MB]\n"
               "       [--max-conns N] [--shard-id S]\n");
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_serve: %s: '%s' is not a whole number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_serve: %s needs a value\n", arg);
      return false;
    }
    const char* value = argv[++i];
    std::uint64_t number = 0;
    if (std::strcmp(arg, "--host") == 0) {
      options.server.host = value;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!parse_u64(arg, value, number) || number > 65535) return false;
      options.server.port = static_cast<std::uint16_t>(number);
    } else if (std::strcmp(arg, "--port-file") == 0) {
      options.port_file = value;
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!parse_u64(arg, value, number)) return false;
      options.server.workers = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--queue") == 0) {
      if (!parse_u64(arg, value, number)) return false;
      options.server.queue_capacity = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--cache") == 0) {
      if (!parse_u64(arg, value, number)) return false;
      options.server.cache_entries = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--cache-mb") == 0) {
      if (!parse_u64(arg, value, number)) return false;
      options.server.cache_bytes = static_cast<std::size_t>(number) << 20;
    } else if (std::strcmp(arg, "--max-conns") == 0) {
      if (!parse_u64(arg, value, number) || number == 0) return false;
      options.server.max_connections = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--shard-id") == 0) {
      options.server.shard_id = value;
    } else {
      std::fprintf(stderr, "mrsc_serve: unknown option %s\n", arg);
      usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) return 2;
  try {
    serve::Server server(cli.server);
    server.start();
    std::printf("mrsc_serve: listening on %s:%u (workers=%zu queue=%zu "
                "cache=%zu)\n",
                cli.server.host.c_str(), server.port(),
                cli.server.workers == 0
                    ? runtime::ThreadPool::default_worker_count()
                    : cli.server.workers,
                cli.server.queue_capacity, cli.server.cache_entries);
    std::fflush(stdout);
    if (!cli.port_file.empty()) {
      std::ofstream out(cli.port_file);
      if (!out) {
        std::fprintf(stderr, "mrsc_serve: cannot write %s\n",
                     cli.port_file.c_str());
        return 1;
      }
      out << server.port() << "\n";
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("mrsc_serve: signal %d, shutting down\n",
                static_cast<int>(g_signal));
    server.stop();
    std::printf("%s\n", server.stats_payload().c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_serve: %s\n", error.what());
    return 1;
  }
}
