// Built-in design lookup for the CLIs — a thin shim over the scenario
// registry (scenario/registry.hpp), which is the single resolver for every
// design the toolchain runs.
//
// `build_design` accepts everything the registry serves: the fixed builtin
// names ("counter", "cascade", ...) and the parametric generator specs
// ("counter(4)", "delay_chain(8)", "fsm_wide(16)", "cascade(3)"). Fixed
// names compile byte-identically to what this module produced before the
// registry existed.
#pragma once

#include <string>

#include "compile/passes.hpp"
#include "scenario/registry.hpp"

namespace mrsc::tools {

/// A compiled design plus the analyzer-facing metadata; produced by the
/// scenario registry.
using BuiltDesign = scenario::BuiltDesign;

/// Comma-separated list of the fixed designs, for usage strings.
[[nodiscard]] const char* builtin_design_names();

/// Compiles a design by registry spec; throws std::invalid_argument for an
/// unknown name, bad arity, or out-of-range argument. `options.design_info`
/// is managed internally (the result's `info` member is always filled).
[[nodiscard]] BuiltDesign build_design(const std::string& name,
                                       compile::CompileOptions options);

}  // namespace mrsc::tools
