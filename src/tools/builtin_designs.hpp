// Built-in example designs shared by the mrsc_compile and mrsc_lint CLIs.
//
// Every design compiles through the shared lowering pipeline with
// CompileOptions::design_info wired up, so the static analyzer gets the
// interface roles and emission tags for free. The "cascade" design is the
// CascadeComposer demonstrator: two independently compiled delay lines
// joined by a declared interface channel, which is what the ISS
// composition check certifies.
#pragma once

#include <memory>
#include <string>

#include "compile/compose.hpp"
#include "compile/passes.hpp"
#include "core/network.hpp"

namespace mrsc::tools {

/// A compiled built-in design plus the analyzer-facing metadata.
struct BuiltDesign {
  std::unique_ptr<core::ReactionNetwork> owned;
  core::ReactionNetwork* network = nullptr;
  compile::DesignInfo info;
  /// Non-null only for composed designs ("cascade").
  std::unique_ptr<compile::Composition> composition;
};

/// Comma-separated list for usage strings.
[[nodiscard]] const char* builtin_design_names();

/// Compiles a built-in design by name; throws std::invalid_argument for an
/// unknown name. `options.design_info` is managed internally (the result's
/// `info` member is always filled).
[[nodiscard]] BuiltDesign build_design(const std::string& name,
                                       compile::CompileOptions options);

}  // namespace mrsc::tools
