// mrsc_fleet — distributor CLI: shards fleet-level work across running
// mrsc_serve processes and writes one deterministic merged report
// (docs/FLEET.md).
//
//   mrsc_fleet --shards P1,P2,... [options]
//
//   --shards LIST      comma-separated shard addresses, each "PORT" or
//                      "HOST:PORT" (required)
//   --mode M           ensemble | sweep | catalog | drain  (default ensemble)
//
// Work unit (ensemble / sweep):
//   --design D         registry design spec            (default counter)
//   --replicates N     ensemble replicates             (default 8)
//   --seed S           base seed; slice i uses stream_seed(S, i) (default 1)
//   --method M         sim method                      (default nrm)
//   --t-end T          sim horizon                     (default 3)
//   --omega W          ensemble volume scale           (default 200)
//   --omegas W1,W2,..  sweep points (sweep mode; required there)
//   --record R         sampling interval; 0 = server default (default 0)
//   --opt L            compile level 0|1               (default 0)
//
// Resilience policy:
//   --timeout-ms MS    per-attempt timeout             (default 10000)
//   --attempts N       attempts per slice              (default 4)
//   --hedge-ms MS      hedge delay; 0 disables        (default 0)
//   --backoff-base-ms MS / --backoff-cap-ms MS / --jitter-seed S
//                      backoff schedule (defaults 10 / 500 / 1)
//   --concurrency N    in-flight slices; 0 = 2/shard  (default 0)
//
//   --json PATH        write the merged report ( - = stdout). The report is
//                      byte-identical at any shard count and under any
//                      fault pattern that still lets every slice succeed;
//                      transport diagnostics go to stdout instead.
//
// Exit codes:
//   0  merged report produced (or catalog/drain answered)
//   1  fleet-level failure (a slice exhausted its attempts, shard down)
//   2  bad CLI usage (including specs the local registry rejects)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace {

using namespace mrsc;

struct CliOptions {
  fleet::FleetOptions fleet;
  std::string mode = "ensemble";
  fleet::EnsembleSpec ensemble;
  std::vector<double> omegas;
  std::string json;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mrsc_fleet --shards P1,P2,... [--mode ensemble|sweep|catalog|"
      "drain]\n"
      "       [--design D] [--replicates N] [--seed S] [--method M]\n"
      "       [--t-end T] [--omega W] [--omegas W1,W2,...] [--record R]\n"
      "       [--opt 0|1] [--timeout-ms MS] [--attempts N] [--hedge-ms MS]\n"
      "       [--backoff-base-ms MS] [--backoff-cap-ms MS] [--jitter-seed S]\n"
      "       [--concurrency N] [--json PATH]\n");
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_double(const char* flag, const char* text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_fleet: %s: '%s' is not a number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_fleet: %s: '%s' is not a whole number\n",
                 flag, text);
    return false;
  }
  return true;
}

bool parse_shards(const std::string& list,
                  std::vector<fleet::Endpoint>& shards) {
  for (const std::string& entry : split_commas(list)) {
    fleet::Endpoint endpoint;
    std::string port_text = entry;
    const std::size_t colon = entry.rfind(':');
    if (colon != std::string::npos) {
      endpoint.host = entry.substr(0, colon);
      port_text = entry.substr(colon + 1);
    }
    std::uint64_t port = 0;
    if (!parse_u64("--shards", port_text.c_str(), port) || port == 0 ||
        port > 65535 || endpoint.host.empty()) {
      std::fprintf(stderr,
                   "mrsc_fleet: --shards entry '%s' must be PORT or "
                   "HOST:PORT\n",
                   entry.c_str());
      return false;
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    shards.push_back(std::move(endpoint));
  }
  if (shards.empty()) {
    std::fprintf(stderr, "mrsc_fleet: --shards must be non-empty\n");
    return false;
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  std::string omegas_text;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_fleet: %s needs a value\n", arg);
      return false;
    }
    const char* value = argv[++i];
    std::uint64_t number = 0;
    if (std::strcmp(arg, "--shards") == 0) {
      if (!parse_shards(value, options.fleet.shards)) return false;
    } else if (std::strcmp(arg, "--mode") == 0) {
      options.mode = value;
    } else if (std::strcmp(arg, "--design") == 0) {
      options.ensemble.design = value;
    } else if (std::strcmp(arg, "--replicates") == 0) {
      if (!parse_u64(arg, value, number) || number == 0) return false;
      options.ensemble.replicates = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!parse_u64(arg, value, options.ensemble.base_seed)) return false;
    } else if (std::strcmp(arg, "--method") == 0) {
      options.ensemble.method = value;
    } else if (std::strcmp(arg, "--t-end") == 0) {
      if (!parse_double(arg, value, options.ensemble.t_end)) return false;
    } else if (std::strcmp(arg, "--omega") == 0) {
      if (!parse_double(arg, value, options.ensemble.omega)) return false;
    } else if (std::strcmp(arg, "--omegas") == 0) {
      omegas_text = value;
    } else if (std::strcmp(arg, "--record") == 0) {
      if (!parse_double(arg, value, options.ensemble.record)) return false;
    } else if (std::strcmp(arg, "--opt") == 0) {
      if (!parse_u64(arg, value, number) || number > 1) return false;
      options.ensemble.opt = static_cast<int>(number);
    } else if (std::strcmp(arg, "--timeout-ms") == 0) {
      if (!parse_double(arg, value, options.fleet.request_timeout_ms)) {
        return false;
      }
    } else if (std::strcmp(arg, "--attempts") == 0) {
      if (!parse_u64(arg, value, number) || number == 0) return false;
      options.fleet.max_attempts = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--hedge-ms") == 0) {
      if (!parse_double(arg, value, options.fleet.hedge_ms)) return false;
    } else if (std::strcmp(arg, "--backoff-base-ms") == 0) {
      if (!parse_double(arg, value, options.fleet.backoff.base_ms)) {
        return false;
      }
    } else if (std::strcmp(arg, "--backoff-cap-ms") == 0) {
      if (!parse_double(arg, value, options.fleet.backoff.cap_ms)) {
        return false;
      }
    } else if (std::strcmp(arg, "--jitter-seed") == 0) {
      if (!parse_u64(arg, value, options.fleet.backoff.jitter_seed)) {
        return false;
      }
    } else if (std::strcmp(arg, "--concurrency") == 0) {
      if (!parse_u64(arg, value, number)) return false;
      options.fleet.concurrency = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = value;
    } else {
      std::fprintf(stderr, "mrsc_fleet: unknown option %s\n", arg);
      usage();
      return false;
    }
  }
  if (options.fleet.shards.empty()) {
    usage();
    return false;
  }
  if (options.mode != "ensemble" && options.mode != "sweep" &&
      options.mode != "catalog" && options.mode != "drain") {
    std::fprintf(stderr,
                 "mrsc_fleet: --mode must be ensemble|sweep|catalog|drain\n");
    return false;
  }
  if (!omegas_text.empty()) {
    for (const std::string& point : split_commas(omegas_text)) {
      double omega = 0.0;
      if (!parse_double("--omegas", point.c_str(), omega)) return false;
      options.omegas.push_back(omega);
    }
  }
  if (options.mode == "sweep" && options.omegas.empty()) {
    std::fprintf(stderr, "mrsc_fleet: sweep mode needs --omegas\n");
    return false;
  }
  return true;
}

bool write_report(const std::string& path, const std::string& report) {
  if (path.empty() || path == "-") {
    std::printf("%s\n", report.c_str());
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "mrsc_fleet: cannot write %s\n", path.c_str());
    return false;
  }
  out << report << "\n";
  std::printf("report written to %s\n", path.c_str());
  return true;
}

void print_diagnostics(const fleet::FleetClient& client) {
  const fleet::FleetCounters counters = client.counters();
  std::printf(
      "fleet: %llu attempt(s), %llu retried, %llu hedged, %llu rejected, "
      "%llu failed, %llu timed out, %llu probe(s)\n",
      static_cast<unsigned long long>(counters.attempts),
      static_cast<unsigned long long>(counters.retries),
      static_cast<unsigned long long>(counters.hedges),
      static_cast<unsigned long long>(counters.rejections),
      static_cast<unsigned long long>(counters.failures),
      static_cast<unsigned long long>(counters.timeouts),
      static_cast<unsigned long long>(counters.probes));
  for (std::size_t s = 0; s < client.shard_count(); ++s) {
    std::printf("fleet: shard %zu is %s\n", s,
                to_string(client.shard_state(s)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) return 2;
  try {
    fleet::FleetClient client(cli.fleet);
    std::string report;
    if (cli.mode == "ensemble") {
      report = fleet::run_ensemble(client, cli.ensemble);
    } else if (cli.mode == "sweep") {
      fleet::SweepSpec sweep;
      sweep.design = cli.ensemble.design;
      sweep.omegas = cli.omegas;
      sweep.base_seed = cli.ensemble.base_seed;
      sweep.method = cli.ensemble.method;
      sweep.t_end = cli.ensemble.t_end;
      sweep.record = cli.ensemble.record;
      sweep.opt = cli.ensemble.opt;
      report = fleet::run_sweep(client, sweep);
    } else if (cli.mode == "catalog") {
      report = fleet::fetch_catalog(client);
    } else {
      // drain: flip every shard; the "report" lists the per-shard answers
      // in shard order.
      report = "[";
      const std::vector<std::string> answers =
          client.request_all(R"({"op":"drain"})");
      for (std::size_t s = 0; s < answers.size(); ++s) {
        if (s != 0) report += ',';
        report += answers[s];
      }
      report += "]";
    }
    print_diagnostics(client);
    if (!write_report(cli.json, report)) return 1;
    return 0;
  } catch (const std::invalid_argument& error) {
    // Specs the local registry/validator rejects are bad usage, same
    // contract as the other CLIs.
    std::fprintf(stderr, "mrsc_fleet: %s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_fleet: %s\n", error.what());
    return 1;
  }
}
