// mrsc_batch — parallel batch runner for reaction-network files.
//
//   mrsc_batch FILE.crn [options]
//   mrsc_batch --scenario SPEC [options]
//
//   --scenario SPEC    run a registry scenario ("counter", "cascade(3)", or
//                      a .mrsc file) instead of a file; the scenario's sim
//                      budget supplies defaults for --method/--t-end/
//                      --record/--omega/--seed (explicit flags win)
//
// Two modes over the runtime's BatchRunner:
//
//   --mode ensemble (default): N independent SSA replicates of the network,
//     seeded deterministically (replicate i gets stream_seed(seed, i)), with
//     per-species mean/stddev/quantile statistics of the final state.
//   --mode sweep: a k_fast/k_slow ratio x rate-jitter grid of deterministic
//     ODE runs, one jittered network copy per grid point.
//
//   --jobs N           worker threads             (default: hardware)
//   --replicates R     ensemble size              (default 64)
//   --timeout S        per-job deadline, seconds  (default: none)
//   --seed S           base seed                  (default 1)
//   --t-end T          simulation horizon         (default 100)
//   --method M         ensemble: ssa|nrm|tau      (default nrm)
//                      sweep:    dp45|rk4|be      (default dp45)
//   --omega W          molecules per concentration unit (ensemble)
//   --engine E         compiled | legacy          (default compiled); both
//                      engines are bitwise-identical, legacy is the
//                      differential-testing reference path
//   --record DT        sampling interval          (default t_end/200)
//   --tau T            leap length for tau-leaping
//   --ratios A,B,C     sweep ratios               (default 10,100,1000,10000)
//   --jitters A,B      sweep jitter factors       (default 1)
//   --species A,B,C    which species to report    (default all)
//   --retries N        extra attempts per failing job; each walks the solver
//                      fallback ladder one rung (default 0, single-shot);
//                      recovery logs land in --json
//   --opt              run the -O1 compile pipeline on the loaded network
//                      first (--species names are pinned as roots); the
//                      per-pass report is printed and lands in --json
//   --json PATH        write machine-readable results
//
// Exit codes:
//   0  every job finished ok (possibly after retries)
//   1  at least one job failed / timed out / was quarantined after retries,
//      or a runtime error (unreadable file, unwritable --json)
//   2  bad CLI usage: unknown flag, malformed value, unknown --species name
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "compile/passes.hpp"
#include "core/io.hpp"
#include "scenario/registry.hpp"
#include "analysis/sweep.hpp"
#include "runtime/batch.hpp"
#include "runtime/ensemble.hpp"
#include "util/rng.hpp"

namespace {

using namespace mrsc;

struct CliOptions {
  std::string file;
  std::string scenario;
  std::string mode = "ensemble";
  std::size_t jobs = 0;  // 0 -> hardware concurrency
  std::size_t replicates = 64;
  double timeout = 0.0;
  std::uint64_t seed = 1;
  double t_end = 100.0;
  std::string method;  // empty -> mode default
  double omega = 1000.0;
  std::string engine = "compiled";
  double record = 0.0;  // 0 -> t_end / 200
  double tau = 0.01;
  double dt = 1e-3;
  std::vector<double> ratios = {10.0, 100.0, 1000.0, 10000.0};
  std::vector<double> jitters = {1.0};
  std::vector<std::string> species;
  std::size_t retries = 0;  // extra attempts beyond the first
  bool opt = false;
  std::string json;
  // Whether the user passed the flag explicitly; explicit flags beat the
  // scenario's sim budget.
  bool set_method = false;
  bool set_t_end = false;
  bool set_record = false;
  bool set_omega = false;
  bool set_seed = false;
  // Compile report JSON from --opt, embedded in the --json output.
  std::string compile_json;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mrsc_batch [FILE.crn | --scenario SPEC]\n"
      "       [--mode ensemble|sweep] [--jobs N]\n"
      "       [--replicates R] [--timeout S] [--seed S] [--t-end T]\n"
      "       [--method ssa|nrm|tau|dp45|rk4|be] [--omega W]\n"
      "       [--engine compiled|legacy] [--record DT]\n"
      "       [--tau T] [--dt H] [--ratios A,B,C] [--jitters A,B]\n"
      "       [--species A,B,C] [--retries N] [--opt] [--json PATH]\n");
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_double(const char* flag, const char* text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_batch: %s: '%s' is not a number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_batch: %s: '%s' is not a whole number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_double_list(const char* flag, const char* text,
                       std::vector<double>& out) {
  out.clear();
  for (const std::string& item : split_commas(text)) {
    double value = 0.0;
    if (!parse_double(flag, item.c_str(), value)) return false;
    out.push_back(value);
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_batch: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool is_flag = std::strcmp(arg, "--opt") == 0;
    const bool takes_value = !is_flag && arg[0] == '-' && arg[1] == '-';
    const char* value = nullptr;
    if (takes_value && !(value = need_value(i))) return false;
    if (is_flag) {
      options.opt = true;
      continue;
    }
    if (std::strcmp(arg, "--mode") == 0) {
      options.mode = value;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      std::uint64_t jobs = 0;
      if (!parse_u64(arg, value, jobs)) return false;
      options.jobs = static_cast<std::size_t>(jobs);
    } else if (std::strcmp(arg, "--replicates") == 0) {
      std::uint64_t replicates = 0;
      if (!parse_u64(arg, value, replicates)) return false;
      options.replicates = static_cast<std::size_t>(replicates);
    } else if (std::strcmp(arg, "--timeout") == 0) {
      if (!parse_double(arg, value, options.timeout)) return false;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!parse_u64(arg, value, options.seed)) return false;
      options.set_seed = true;
    } else if (std::strcmp(arg, "--t-end") == 0) {
      if (!parse_double(arg, value, options.t_end)) return false;
      options.set_t_end = true;
    } else if (std::strcmp(arg, "--method") == 0) {
      options.method = value;
      options.set_method = true;
    } else if (std::strcmp(arg, "--omega") == 0) {
      if (!parse_double(arg, value, options.omega)) return false;
      options.set_omega = true;
    } else if (std::strcmp(arg, "--engine") == 0) {
      options.engine = value;
    } else if (std::strcmp(arg, "--record") == 0) {
      if (!parse_double(arg, value, options.record)) return false;
      options.set_record = true;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      options.scenario = value;
    } else if (std::strcmp(arg, "--tau") == 0) {
      if (!parse_double(arg, value, options.tau)) return false;
    } else if (std::strcmp(arg, "--dt") == 0) {
      if (!parse_double(arg, value, options.dt)) return false;
    } else if (std::strcmp(arg, "--ratios") == 0) {
      if (!parse_double_list(arg, value, options.ratios)) return false;
    } else if (std::strcmp(arg, "--jitters") == 0) {
      if (!parse_double_list(arg, value, options.jitters)) return false;
    } else if (std::strcmp(arg, "--species") == 0) {
      options.species = split_commas(value);
    } else if (std::strcmp(arg, "--retries") == 0) {
      std::uint64_t retries = 0;
      if (!parse_u64(arg, value, retries)) return false;
      options.retries = static_cast<std::size_t>(retries);
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = value;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "mrsc_batch: unknown option %s\n", arg);
      return false;
    } else if (options.file.empty()) {
      options.file = arg;
    } else {
      std::fprintf(stderr, "mrsc_batch: multiple input files\n");
      return false;
    }
  }
  if (options.file.empty() == options.scenario.empty()) {
    std::fprintf(stderr,
                 "mrsc_batch: give exactly one of FILE.crn or --scenario\n");
    usage();
    return false;
  }
  if (options.mode != "ensemble" && options.mode != "sweep") {
    std::fprintf(stderr, "mrsc_batch: --mode must be ensemble or sweep\n");
    return false;
  }
  if (options.t_end <= 0.0 || options.omega <= 0.0 || options.tau <= 0.0 ||
      options.dt <= 0.0) {
    std::fprintf(stderr,
                 "mrsc_batch: --t-end, --omega, --tau, --dt must be > 0\n");
    return false;
  }
  if (options.record < 0.0 || options.timeout < 0.0) {
    std::fprintf(stderr, "mrsc_batch: --record and --timeout must be >= 0\n");
    return false;
  }
  if (options.replicates == 0) {
    std::fprintf(stderr, "mrsc_batch: --replicates must be >= 1\n");
    return false;
  }
  if (options.engine != "compiled" && options.engine != "legacy") {
    std::fprintf(stderr,
                 "mrsc_batch: --engine must be 'compiled' or 'legacy' "
                 "(got '%s')\n",
                 options.engine.c_str());
    return false;
  }
  for (const double ratio : options.ratios) {
    if (ratio <= 0.0) {
      std::fprintf(stderr, "mrsc_batch: --ratios must be > 0\n");
      return false;
    }
  }
  for (const double jitter : options.jitters) {
    if (jitter < 1.0) {
      std::fprintf(stderr, "mrsc_batch: --jitters must be >= 1\n");
      return false;
    }
  }
  return true;
}

std::vector<core::SpeciesId> resolve_species(
    const core::ReactionNetwork& network,
    const std::vector<std::string>& names) {
  std::vector<core::SpeciesId> ids;
  if (names.empty()) {
    for (std::size_t i = 0; i < network.species_count(); ++i) {
      ids.push_back(
          core::SpeciesId{static_cast<core::SpeciesId::underlying_type>(i)});
    }
    return ids;
  }
  for (const std::string& name : names) {
    const auto id = network.find_species(name);
    if (!id) {
      throw std::invalid_argument("unknown species '" + name + "'");
    }
    ids.push_back(*id);
  }
  return ids;
}

void append_json_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

// Embeds the --opt compile report (if any) right after the "mode" field.
void append_compile_report(std::string& json, const CliOptions& cli) {
  if (cli.compile_json.empty()) return;
  std::string report = cli.compile_json;
  while (!report.empty() && report.back() == '\n') report.pop_back();
  json += "  \"compile\": " + report + ",\n";
}

int run_ensemble(const core::ReactionNetwork& network,
                 const CliOptions& cli) {
  sim::SsaOptions ssa;
  ssa.t_end = cli.t_end;
  ssa.omega = cli.omega;
  ssa.tau = cli.tau;
  ssa.engine.kind = cli.engine == "legacy" ? sim::EngineKind::kLegacy
                                           : sim::EngineKind::kCompiled;
  ssa.record_interval = cli.record > 0.0 ? cli.record : cli.t_end / 200.0;
  const std::string method = cli.method.empty() ? "nrm" : cli.method;
  if (method == "ssa") {
    ssa.method = sim::SsaMethod::kDirect;
  } else if (method == "nrm") {
    ssa.method = sim::SsaMethod::kNextReaction;
  } else if (method == "tau") {
    ssa.method = sim::SsaMethod::kTauLeaping;
  } else {
    std::fprintf(stderr,
                 "mrsc_batch: ensemble --method must be ssa|nrm|tau\n");
    return 2;
  }

  runtime::EnsembleOptions options;
  options.replicates = cli.replicates;
  options.base_seed = cli.seed;
  options.batch.threads = cli.jobs;
  options.batch.timeout_seconds = cli.timeout;
  options.batch.retry.max_attempts = cli.retries + 1;

  const runtime::EnsembleResult result =
      runtime::run_ssa_ensemble(network, ssa, options);
  const std::vector<core::SpeciesId> report =
      resolve_species(network, cli.species);

  std::printf(
      "ensemble: %zu replicates (%s, omega=%g, t_end=%g) on %zu worker(s)\n"
      "          %zu ok, %zu failed, %zu timeout, %zu cancelled, "
      "%zu quarantined in %.3fs (%.1f jobs/s)\n",
      options.replicates, method.c_str(), ssa.omega, ssa.t_end,
      runtime::BatchRunner(options.batch).options().threads, result.ok,
      result.failed, result.timed_out, result.cancelled, result.quarantined,
      result.wall_seconds,
      static_cast<double>(options.replicates) /
          std::max(result.wall_seconds, 1e-12));
  std::printf("final state over ok replicates:\n");
  std::printf("  %-20s %12s %12s %12s %12s %12s\n", "species", "mean",
              "stddev", "q05", "median", "q95");
  for (const core::SpeciesId id : report) {
    const runtime::SpeciesStats& stats = result.final_stats[id.index()];
    std::printf("  %-20s %12.6g %12.6g %12.6g %12.6g %12.6g\n",
                stats.name.c_str(), stats.mean, stats.stddev, stats.q05,
                stats.q50, stats.q95);
  }
  // Name every non-ok replicate with the seed that reruns it
  // (`--seed <seed> --replicates 1` reproduces the exact trajectory).
  for (std::size_t i = 0; i < result.replicates.size(); ++i) {
    const runtime::JobResult& job = result.replicates[i];
    if (job.status == runtime::JobStatus::kOk) continue;
    std::fprintf(stderr, "mrsc_batch: replicate %zu (seed %llu) %s%s%s\n", i,
                 static_cast<unsigned long long>(job.seed),
                 runtime::to_string(job.status),
                 job.error.empty() ? "" : ": ", job.error.c_str());
  }

  if (!cli.json.empty()) {
    std::string json = "{\n  \"mode\": \"ensemble\",\n";
    append_compile_report(json, cli);
    json += "  \"replicates\": " + std::to_string(options.replicates) + ",\n";
    json += "  \"base_seed\": " + std::to_string(options.base_seed) + ",\n";
    json += "  \"method\": \"" + method + "\",\n";
    json += "  \"ok\": " + std::to_string(result.ok) + ",\n";
    json += "  \"failed\": " + std::to_string(result.failed) + ",\n";
    json += "  \"timeout\": " + std::to_string(result.timed_out) + ",\n";
    json += "  \"cancelled\": " + std::to_string(result.cancelled) + ",\n";
    json += "  \"quarantined\": " + std::to_string(result.quarantined) +
            ",\n";
    json += "  \"wall_seconds\": ";
    append_json_number(json, result.wall_seconds);
    json += ",\n  \"species\": [\n";
    for (std::size_t i = 0; i < report.size(); ++i) {
      const runtime::SpeciesStats& stats =
          result.final_stats[report[i].index()];
      json += "    {\"name\": \"" + stats.name + "\", \"mean\": ";
      append_json_number(json, stats.mean);
      json += ", \"stddev\": ";
      append_json_number(json, stats.stddev);
      json += ", \"min\": ";
      append_json_number(json, stats.min);
      json += ", \"max\": ";
      append_json_number(json, stats.max);
      json += ", \"q05\": ";
      append_json_number(json, stats.q05);
      json += ", \"q50\": ";
      append_json_number(json, stats.q50);
      json += ", \"q95\": ";
      append_json_number(json, stats.q95);
      json += i + 1 < report.size() ? "},\n" : "}\n";
    }
    json += "  ],\n  \"replicate_status\": [";
    for (std::size_t i = 0; i < result.replicates.size(); ++i) {
      json += std::string("\"") +
              runtime::to_string(result.replicates[i].status) + "\"";
      if (i + 1 < result.replicates.size()) json += ", ";
    }
    json += "],\n  \"replicate_seeds\": [";
    for (std::size_t i = 0; i < result.replicates.size(); ++i) {
      json += std::to_string(result.replicates[i].seed);
      if (i + 1 < result.replicates.size()) json += ", ";
    }
    // Retry bookkeeping: attempts per replicate and the ladder history of
    // every replicate that needed one (null for clean first-try successes).
    // Results are in job order, so these arrays line up with the seeds.
    json += "],\n  \"replicate_attempts\": [";
    for (std::size_t i = 0; i < result.replicates.size(); ++i) {
      json += std::to_string(result.replicates[i].attempts);
      if (i + 1 < result.replicates.size()) json += ", ";
    }
    json += "],\n  \"recovery\": [";
    for (std::size_t i = 0; i < result.replicates.size(); ++i) {
      const runtime::JobResult& job = result.replicates[i];
      json += job.recovery.attempts.empty() ? "null" : job.recovery.to_json();
      if (i + 1 < result.replicates.size()) json += ", ";
    }
    json += "]\n}\n";
    std::ofstream out(cli.json);
    if (!out) {
      std::fprintf(stderr, "mrsc_batch: cannot write %s\n",
                   cli.json.c_str());
      return 1;
    }
    out << json;
    std::printf("results written to %s\n", cli.json.c_str());
  }
  return result.ok == result.replicates.size() ? 0 : 1;
}

int run_sweep(const core::ReactionNetwork& network, const CliOptions& cli) {
  const std::string method = cli.method.empty() ? "dp45" : cli.method;
  sim::OdeOptions ode;
  ode.t_end = cli.t_end;
  ode.dt = cli.dt;
  ode.engine.kind = cli.engine == "legacy" ? sim::EngineKind::kLegacy
                                           : sim::EngineKind::kCompiled;
  ode.record_interval = cli.record > 0.0 ? cli.record : cli.t_end / 200.0;
  if (method == "dp45") {
    ode.method = sim::OdeMethod::kDormandPrince45;
  } else if (method == "rk4") {
    ode.method = sim::OdeMethod::kRk4Fixed;
  } else if (method == "be") {
    ode.method = sim::OdeMethod::kBackwardEuler;
  } else {
    std::fprintf(stderr, "mrsc_batch: sweep --method must be dp45|rk4|be\n");
    return 2;
  }

  // One jittered network copy per grid point; the jobs reference them.
  struct GridPoint {
    double ratio;
    double jitter;
    std::uint64_t seed;
  };
  std::vector<GridPoint> grid;
  for (const double ratio : cli.ratios) {
    for (const double jitter : cli.jitters) {
      grid.push_back({ratio, jitter,
                      util::Rng::stream_seed(cli.seed, grid.size())});
    }
  }
  std::vector<core::ReactionNetwork> networks(grid.size(), network);
  std::vector<runtime::SimJob> jobs(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    core::RatePolicy policy = network.rate_policy();
    policy.k_fast = grid[i].ratio * policy.k_slow;
    networks[i].set_rate_policy(policy);
    if (grid[i].jitter > 1.0) {
      util::Rng rng(grid[i].seed);
      analysis::apply_rate_jitter(networks[i], grid[i].jitter, rng);
    }
    jobs[i].network = &networks[i];
    jobs[i].kind = runtime::SimKind::kOde;
    jobs[i].ode = ode;
    jobs[i].label = "ratio " + std::to_string(grid[i].ratio) + " jitter " +
                    std::to_string(grid[i].jitter);
  }

  runtime::BatchOptions batch;
  batch.threads = cli.jobs;
  batch.timeout_seconds = cli.timeout;
  batch.retry.max_attempts = cli.retries + 1;
  runtime::BatchRunner runner(batch);
  const std::vector<runtime::JobResult> results = runner.run(jobs);
  const std::vector<core::SpeciesId> report =
      resolve_species(network, cli.species);

  std::printf("sweep: %zu points on %zu worker(s)\n", grid.size(),
              runner.options().threads);
  std::printf("  %-14s %-8s %-10s %-10s", "k_fast/k_slow", "jitter",
              "status", "wall [s]");
  for (const core::SpeciesId id : report) {
    std::printf(" %12s", network.species_name(id).c_str());
  }
  std::printf("\n");
  std::size_t failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const runtime::JobResult& job = results[i];
    if (job.status != runtime::JobStatus::kOk) ++failures;
    std::printf("  %-14g %-8g %-10s %-10.3f", grid[i].ratio, grid[i].jitter,
                runtime::to_string(job.status), job.wall_seconds);
    for (const core::SpeciesId id : report) {
      if (id.index() < job.final_state.size()) {
        std::printf(" %12.6g", job.final_state[id.index()]);
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf("\n");
    if (job.status != runtime::JobStatus::kOk) {
      std::fprintf(stderr,
                   "mrsc_batch: sweep point %zu (ratio %g jitter %g seed "
                   "%llu) %s%s%s\n",
                   i, grid[i].ratio, grid[i].jitter,
                   static_cast<unsigned long long>(grid[i].seed),
                   runtime::to_string(job.status),
                   job.error.empty() ? "" : ": ", job.error.c_str());
    }
  }

  if (!cli.json.empty()) {
    std::string json = "{\n  \"mode\": \"sweep\",\n";
    append_compile_report(json, cli);
    json += "  \"points\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const runtime::JobResult& job = results[i];
      json += "    {\"ratio\": ";
      append_json_number(json, grid[i].ratio);
      json += ", \"jitter\": ";
      append_json_number(json, grid[i].jitter);
      json += ", \"seed\": " + std::to_string(grid[i].seed);
      json += std::string(", \"status\": \"") + runtime::to_string(job.status);
      json += "\", \"wall_seconds\": ";
      append_json_number(json, job.wall_seconds);
      json += ", \"ode_steps\": " + std::to_string(job.ode_steps);
      json += ", \"attempts\": " + std::to_string(job.attempts);
      json += ", \"recovery\": ";
      json += job.recovery.attempts.empty() ? "null" : job.recovery.to_json();
      json += ", \"final\": {";
      for (std::size_t s = 0; s < report.size(); ++s) {
        json += "\"" + network.species_name(report[s]) + "\": ";
        append_json_number(json,
                           report[s].index() < job.final_state.size()
                               ? job.final_state[report[s].index()]
                               : 0.0);
        if (s + 1 < report.size()) json += ", ";
      }
      json += i + 1 < results.size() ? "}},\n" : "}}\n";
    }
    json += "  ]\n}\n";
    std::ofstream out(cli.json);
    if (!out) {
      std::fprintf(stderr, "mrsc_batch: cannot write %s\n",
                   cli.json.c_str());
      return 1;
    }
    out << json;
    std::printf("results written to %s\n", cli.json.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) return 2;
  core::ReactionNetwork network;
  std::string label = cli.file;
  if (!cli.scenario.empty()) {
    try {
      scenario::ResolvedScenario resolved =
          scenario::resolve_scenario_argument(cli.scenario);
      network = std::move(*resolved.design.network);
      label = resolved.scenario.name;
      const scenario::SimBudget& budget = resolved.scenario.sim;
      if (!cli.set_method && budget.method) cli.method = *budget.method;
      if (!cli.set_t_end && budget.t_end) cli.t_end = *budget.t_end;
      if (!cli.set_record && budget.record) cli.record = *budget.record;
      if (!cli.set_omega && budget.omega) cli.omega = *budget.omega;
      if (!cli.set_seed && budget.seed) cli.seed = *budget.seed;
      std::printf("scenario %s: %zu species, %zu reactions\n", label.c_str(),
                  network.species_count(), network.reaction_count());
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "mrsc_batch: %s\n", error.what());
      return 2;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "mrsc_batch: %s\n", error.what());
      return 1;
    }
  }
  try {
    if (!cli.file.empty()) {
      network = core::load_network(cli.file);
      std::printf("loaded %s: %zu species, %zu reactions\n", cli.file.c_str(),
                  network.species_count(), network.reaction_count());
    }
    if (cli.opt) {
      // Resolve --species against the unoptimized network and pin them as
      // roots so everything the user asked to see survives optimization.
      std::vector<core::SpeciesId> roots;
      for (const std::string& name : cli.species) {
        const auto id = network.find_species(name);
        if (!id) {
          std::fprintf(stderr, "mrsc_batch: --species: no species named '%s'\n",
                       name.c_str());
          return 2;
        }
        roots.push_back(*id);
      }
      auto optimized = compile::optimize_network(network, roots);
      optimized.report.design = label;
      std::printf("%s", optimized.report.to_table().c_str());
      cli.compile_json = optimized.report.to_json();
    }
    // A --species typo is bad usage (exit 2), not a job failure (exit 1):
    // validate the names before any simulation runs.
    try {
      (void)resolve_species(network, cli.species);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "mrsc_batch: --species: %s\n", error.what());
      return 2;
    }
    return cli.mode == "ensemble" ? run_ensemble(network, cli)
                                  : run_sweep(network, cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_batch: %s\n", error.what());
    return 1;
  }
}
