// mrsc_lint — static analysis over compiled designs, before any simulation.
//
//   mrsc_lint --design NAME [options]
//   mrsc_lint --design all  [options]     lint every built-in design
//   mrsc_lint --scenario SPEC [options]   lint a registry scenario
//   mrsc_lint FILE.crn [options]          lint a serialized network
//
//   --design NAME      built-in design to compile and analyze (see list
//                      below), or "all"
//   --scenario SPEC    lint a registry scenario: a design spec ("counter",
//                      "cascade(3)") or a .mrsc scenario file; the
//                      scenario's lint budget supplies default --checks and
//                      --werror (explicit flags win)
//   --roots A,B        species treated as design ports (FILE mode; built-in
//                      designs carry their port roster automatically)
//   --opt 0|1          optimization level to lint at (default 0: the
//                      unoptimized network keeps its emission tags, so
//                      every check can run)
//   --checks a,b       run only the named checks (default: all)
//   --json PATH        write the LintReport(s) as JSON ("-" for stdout)
//   --werror           treat warnings as errors for the exit code
//   --quiet            suppress info diagnostics in the text listing
//
// Exit code contract (asserted by ctest):
//   0  every selected check ran clean
//   1  at least one error (or, with --werror, warning) fired
//   2  usage error / unknown design / unknown check
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "lint/lint.hpp"
#include "scenario/registry.hpp"
#include "tools/builtin_designs.hpp"

namespace {

using namespace mrsc;

struct CliOptions {
  std::string file;
  std::string design;
  std::string scenario;
  std::vector<std::string> roots;
  int opt = 0;
  std::vector<std::string> checks;
  std::string json;
  bool werror = false;
  bool quiet = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: mrsc_lint [FILE.crn | --design NAME|all |\n"
               "       --scenario SPEC] [--opt 0|1]\n"
               "       [--roots A,B] [--checks a,b] [--json PATH|-]\n"
               "       [--werror] [--quiet]\n"
               "       designs: %s\n",
               tools::builtin_design_names());
  std::fprintf(stderr, "       checks:");
  for (const std::string& name : lint::check_names()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-') {
      if (!options.file.empty()) {
        std::fprintf(stderr, "mrsc_lint: more than one input file\n");
        return false;
      }
      options.file = arg;
      continue;
    }
    if (std::strcmp(arg, "--werror") == 0) {
      options.werror = true;
      continue;
    }
    if (std::strcmp(arg, "--quiet") == 0) {
      options.quiet = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_lint: %s needs a value\n", arg);
      return false;
    }
    const char* value = argv[++i];
    if (std::strcmp(arg, "--design") == 0) {
      options.design = value;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      options.scenario = value;
    } else if (std::strcmp(arg, "--opt") == 0) {
      if (std::strcmp(value, "0") != 0 && std::strcmp(value, "1") != 0) {
        std::fprintf(stderr, "mrsc_lint: --opt must be 0 or 1\n");
        return false;
      }
      options.opt = value[0] - '0';
    } else if (std::strcmp(arg, "--checks") == 0) {
      options.checks = split_commas(value);
    } else if (std::strcmp(arg, "--roots") == 0) {
      options.roots = split_commas(value);
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = value;
    } else {
      std::fprintf(stderr, "mrsc_lint: unknown option %s\n", arg);
      return false;
    }
  }
  const int sources = (options.file.empty() ? 0 : 1) +
                      (options.design.empty() ? 0 : 1) +
                      (options.scenario.empty() ? 0 : 1);
  if (sources != 1) {
    std::fprintf(stderr,
                 "mrsc_lint: give exactly one of FILE.crn, --design, or "
                 "--scenario\n");
    return false;
  }
  return true;
}

lint::LintReport lint_file(const CliOptions& cli) {
  const core::ReactionNetwork network = core::load_network(cli.file);
  lint::LintInput input;
  input.network = &network;
  input.design = cli.file;
  for (const std::string& name : cli.roots) {
    const auto id = network.find_species(name);
    if (!id) {
      throw std::invalid_argument("--roots: no species named '" + name + "'");
    }
    input.roots.emplace_back(*id, compile::PortRole::kInput);
  }
  lint::LintOptions lint_options;
  lint_options.checks = cli.checks;
  return lint::run_lint(input, lint_options);
}

lint::LintReport lint_one(const std::string& design_name,
                          const CliOptions& cli) {
  compile::CompileOptions compile_options;
  compile_options.opt =
      cli.opt == 0 ? compile::OptLevel::kO0 : compile::OptLevel::kO1;
  const tools::BuiltDesign design =
      tools::build_design(design_name, compile_options);

  lint::LintInput input =
      lint::LintInput::from_design(*design.network, design.info, design_name);
  input.composition = design.composition.get();

  lint::LintOptions lint_options;
  lint_options.checks = cli.checks;
  return lint::run_lint(input, lint_options);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) {
    usage();
    return 2;
  }
  try {
    if (!cli.file.empty()) {
      const lint::LintReport report = lint_file(cli);
      std::printf("%s", report.to_text(!cli.quiet).c_str());
      if (!cli.json.empty()) {
        if (cli.json == "-") {
          std::printf("%s", report.to_json().c_str());
        } else {
          std::ofstream out(cli.json);
          if (!out) {
            std::fprintf(stderr, "mrsc_lint: cannot write %s\n",
                         cli.json.c_str());
            return 2;
          }
          out << report.to_json();
        }
      }
      return report.clean(cli.werror) ? 0 : 1;
    }

    if (!cli.scenario.empty()) {
      compile::CompileOptions compile_options;
      compile_options.opt =
          cli.opt == 0 ? compile::OptLevel::kO0 : compile::OptLevel::kO1;
      const scenario::ResolvedScenario resolved =
          scenario::resolve_scenario_argument(cli.scenario, compile_options);
      lint::LintInput input =
          lint::LintInput::from_design(*resolved.design.network,
                                       resolved.design.info,
                                       resolved.scenario.name);
      input.composition = resolved.design.composition.get();
      lint::LintOptions lint_options;
      lint_options.checks = cli.checks.empty() ? resolved.scenario.lint.checks
                                               : cli.checks;
      const lint::LintReport report = lint::run_lint(input, lint_options);
      std::printf("%s", report.to_text(!cli.quiet).c_str());
      if (!cli.json.empty()) {
        if (cli.json == "-") {
          std::printf("%s", report.to_json().c_str());
        } else {
          std::ofstream out(cli.json);
          if (!out) {
            std::fprintf(stderr, "mrsc_lint: cannot write %s\n",
                         cli.json.c_str());
            return 2;
          }
          out << report.to_json();
        }
      }
      const bool werror = cli.werror || resolved.scenario.lint.werror;
      return report.clean(werror) ? 0 : 1;
    }

    std::vector<std::string> designs;
    if (cli.design == "all") {
      designs = split_commas(tools::builtin_design_names());
      for (std::string& name : designs) {
        while (!name.empty() && name.front() == ' ') name.erase(0, 1);
      }
    } else {
      designs.push_back(cli.design);
    }

    std::string json_out;
    if (designs.size() > 1) json_out += "[\n";
    bool dirty = false;
    for (std::size_t i = 0; i < designs.size(); ++i) {
      const lint::LintReport report = lint_one(designs[i], cli);
      std::printf("%s", report.to_text(!cli.quiet).c_str());
      if (i + 1 < designs.size()) std::printf("\n");
      if (!report.clean(cli.werror)) dirty = true;
      if (!cli.json.empty()) {
        if (i > 0) json_out += ",\n";
        json_out += report.to_json();
      }
    }
    if (designs.size() > 1) json_out += "]\n";

    if (!cli.json.empty()) {
      if (cli.json == "-") {
        std::printf("%s", json_out.c_str());
      } else {
        std::ofstream out(cli.json);
        if (!out) {
          std::fprintf(stderr, "mrsc_lint: cannot write %s\n",
                       cli.json.c_str());
          return 2;
        }
        out << json_out;
      }
    }
    return dirty ? 1 : 0;
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "mrsc_lint: %s\n", error.what());
    usage();
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_lint: %s\n", error.what());
    return 2;
  }
}
