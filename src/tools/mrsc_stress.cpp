// mrsc_stress — fault-intensity sweep campaigns over the built-in designs.
//
//   mrsc_stress [options]
//
// Sweeps one fault kind's intensity over a grid against one design, several
// seeded trials per grid point, and reports the robustness margin: the
// largest intensity at which every trial (at it and below) still matches the
// exact unperturbed reference. Trials whose simulation misbehaves walk the
// solver fallback ladder; trials that fail every rung are classified and
// quarantined — the sweep never crashes on a hard fault.
//
//   --design D         counter | moving_average | sequence_detector |
//                      async_chain                      (default counter)
//   --scenario SPEC    derive the campaign from a registry scenario
//                      ("counter(4)", a .mrsc file): the scenario's stress
//                      binding picks the design and supplies default
//                      --fault/--intensities/--trials (explicit flags win).
//                      Scenarios without a stress binding are rejected.
//   --fault F          rate-jitter | category-jitter | clock-skew | leak |
//                      injection | loss | initial-noise (default rate-jitter)
//   --category C       fast | slow, for category-jitter (default slow)
//   --intensities A,B  ascending grid                   (default: per-kind)
//   --trials N         seeded trials per grid point     (default 3)
//   --seed S           base seed                        (default 42)
//   --threads N        worker threads, 0 = hardware     (default 1)
//   --attempts N       trial ladder attempts            (default 2)
//   --json             print the campaign as JSON instead of a table
//
// Exit codes:
//   0  campaign completed (the margin itself is a measurement, not a verdict)
//   1  runtime failure while running the campaign
//   2  bad CLI usage: unknown flag, design, fault kind, or malformed value
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "stress/campaign.hpp"

namespace {

using namespace mrsc;

struct CliOptions {
  stress::CampaignConfig config;
  std::string scenario;
  bool json = false;
  // Whether the user passed the flag explicitly; explicit flags beat the
  // scenario's stress binding.
  bool set_design = false;
  bool set_fault = false;
  bool set_intensities = false;
  bool set_trials = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mrsc_stress [--design counter|moving_average|"
      "sequence_detector|async_chain]\n"
      "       [--scenario SPEC]\n"
      "       [--fault rate-jitter|category-jitter|clock-skew|leak|"
      "injection|loss|initial-noise]\n"
      "       [--category fast|slow] [--intensities A,B,C] [--trials N]\n"
      "       [--seed S] [--threads N] [--attempts N] [--json]\n");
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_double(const char* flag, const char* text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_stress: %s: '%s' is not a number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_stress: %s: '%s' is not a whole number\n",
                 flag, text);
    return false;
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_stress: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(arg, "--design") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      const auto design = stress::parse_design(v);
      if (!design) {
        std::fprintf(stderr, "mrsc_stress: unknown design '%s'\n", v);
        return false;
      }
      options.config.design = *design;
      options.set_design = true;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      options.scenario = v;
    } else if (std::strcmp(arg, "--fault") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      const auto fault = stress::parse_fault_kind(v);
      if (!fault) {
        std::fprintf(stderr, "mrsc_stress: unknown fault kind '%s'\n", v);
        return false;
      }
      options.config.fault = *fault;
      options.set_fault = true;
    } else if (std::strcmp(arg, "--category") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      if (std::strcmp(v, "fast") == 0) {
        options.config.category = core::RateCategory::kFast;
      } else if (std::strcmp(v, "slow") == 0) {
        options.config.category = core::RateCategory::kSlow;
      } else {
        std::fprintf(stderr,
                     "mrsc_stress: --category must be fast or slow\n");
        return false;
      }
    } else if (std::strcmp(arg, "--intensities") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      options.config.intensities.clear();
      for (const std::string& item : split_commas(v)) {
        double value = 0.0;
        if (!parse_double(arg, item.c_str(), value)) return false;
        if (value <= 0.0) {
          std::fprintf(stderr, "mrsc_stress: --intensities must be > 0\n");
          return false;
        }
        options.config.intensities.push_back(value);
      }
      options.set_intensities = true;
    } else if (std::strcmp(arg, "--trials") == 0) {
      const char* v = need_value(i);
      std::uint64_t trials = 0;
      if (!v || !parse_u64(arg, v, trials)) return false;
      if (trials == 0) {
        std::fprintf(stderr, "mrsc_stress: --trials must be >= 1\n");
        return false;
      }
      options.config.trials = static_cast<std::size_t>(trials);
      options.set_trials = true;
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_u64(arg, v, options.config.base_seed)) return false;
    } else if (std::strcmp(arg, "--threads") == 0) {
      const char* v = need_value(i);
      std::uint64_t threads = 0;
      if (!v || !parse_u64(arg, v, threads)) return false;
      options.config.threads = static_cast<std::size_t>(threads);
    } else if (std::strcmp(arg, "--attempts") == 0) {
      const char* v = need_value(i);
      std::uint64_t attempts = 0;
      if (!v || !parse_u64(arg, v, attempts)) return false;
      if (attempts == 0) {
        std::fprintf(stderr, "mrsc_stress: --attempts must be >= 1\n");
        return false;
      }
      options.config.max_attempts = static_cast<std::size_t>(attempts);
    } else {
      std::fprintf(stderr, "mrsc_stress: unknown option %s\n", arg);
      return false;
    }
  }
  if (!options.scenario.empty() && options.set_design) {
    std::fprintf(stderr,
                 "mrsc_stress: --design and --scenario are mutually "
                 "exclusive\n");
    return false;
  }
  if (options.config.fault == stress::FaultKind::kRateJitterReaction ||
      options.config.fault == stress::FaultKind::kStoichiometry) {
    std::fprintf(stderr,
                 "mrsc_stress: --fault %s has no intensity knob; campaigns "
                 "sweep continuous fault kinds only\n",
                 stress::to_string(options.config.fault));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) {
    usage();
    return 2;
  }
  if (!cli.scenario.empty()) {
    try {
      const scenario::ResolvedScenario resolved =
          scenario::resolve_scenario_argument(cli.scenario);
      const scenario::StressBinding& binding = resolved.scenario.stress;
      if (binding.design.empty()) {
        std::fprintf(stderr,
                     "mrsc_stress: scenario '%s' has no stress binding (no "
                     "campaign family covers this design)\n",
                     resolved.scenario.name.c_str());
        return 2;
      }
      const auto design = stress::parse_design(binding.design);
      if (!design) {
        std::fprintf(stderr,
                     "mrsc_stress: scenario '%s' binds unknown campaign "
                     "design '%s'\n",
                     resolved.scenario.name.c_str(), binding.design.c_str());
        return 2;
      }
      cli.config.design = *design;
      if (!cli.set_fault && binding.fault) {
        const auto fault = stress::parse_fault_kind(binding.fault->c_str());
        if (!fault) {
          std::fprintf(stderr,
                       "mrsc_stress: scenario '%s' binds unknown fault kind "
                       "'%s'\n",
                       resolved.scenario.name.c_str(), binding.fault->c_str());
          return 2;
        }
        cli.config.fault = *fault;
      }
      if (!cli.set_intensities && !binding.intensities.empty()) {
        cli.config.intensities = binding.intensities;
      }
      if (!cli.set_trials && binding.trials) {
        cli.config.trials = *binding.trials;
      }
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "mrsc_stress: %s\n", error.what());
      return 2;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "mrsc_stress: %s\n", error.what());
      return 1;
    }
  }
  try {
    const stress::CampaignResult result = stress::run_campaign(cli.config);
    if (cli.json) {
      std::printf("%s", result.to_json().c_str());
    } else {
      std::printf("%s", result.to_table().c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_stress: %s\n", error.what());
    return 1;
  }
}
