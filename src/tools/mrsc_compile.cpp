// mrsc_compile — lower a design (or optimize a .crn file) through the shared
// compile pipeline and report what every pass did.
//
//   mrsc_compile FILE.crn [options]
//   mrsc_compile --design NAME [options]
//   mrsc_compile --scenario SPEC [options]
//   mrsc_compile --list-scenarios
//
//   --design NAME      compile a built-in design instead of a file (see
//                      tools/builtin_designs.hpp for the list)
//   --scenario SPEC    compile a registry scenario: a design spec
//                      ("counter", "cascade(3)") or a .mrsc scenario file
//   --list-scenarios   print the scenario catalog (fixed designs, parametric
//                      generators with their ranges, smoke set) and exit
//   --opt 0|1          optimization level               (default 1)
//   --assume-zero A,B  input ports promised to stay zero; their dead cone
//                      is eliminated at -O1 (built-in circuit designs only)
//   --roots A,B        extra species pinned alive (FILE mode; ports and
//                      clock species of built-in designs are pinned
//                      automatically)
//   --json PATH        write the per-pass CompileReport as JSON
//   --out PATH         write the compiled/optimized network as .crn text
//   --lint             run the static analyzer (lint/) over the compiled
//                      network and print its report; lint errors make the
//                      exit code 1
//
// Prints the per-pass table on stdout; exits nonzero on error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "compile/passes.hpp"
#include "compile/report.hpp"
#include "core/io.hpp"
#include "lint/lint.hpp"
#include "tools/builtin_designs.hpp"

namespace {

using namespace mrsc;

struct CliOptions {
  std::string file;
  std::string design;
  std::string scenario;
  bool list_scenarios = false;
  int opt = 1;
  std::vector<std::string> assume_zero;
  std::vector<std::string> roots;
  std::string json;
  std::string out;
  bool lint = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mrsc_compile [FILE.crn | --design NAME | --scenario SPEC]\n"
      "       [--opt 0|1] [--assume-zero A,B] [--roots A,B] [--json PATH]\n"
      "       [--out PATH] [--lint] [--list-scenarios]\n"
      "       designs: %s\n",
      mrsc::tools::builtin_design_names());
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_compile: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-') {
      if (!options.file.empty()) {
        std::fprintf(stderr, "mrsc_compile: more than one input file\n");
        return false;
      }
      options.file = arg;
      continue;
    }
    if (std::strcmp(arg, "--lint") == 0) {
      options.lint = true;
      continue;
    }
    if (std::strcmp(arg, "--list-scenarios") == 0) {
      options.list_scenarios = true;
      continue;
    }
    const char* value = need_value(i);
    if (value == nullptr) return false;
    if (std::strcmp(arg, "--design") == 0) {
      options.design = value;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      options.scenario = value;
    } else if (std::strcmp(arg, "--opt") == 0) {
      if (std::strcmp(value, "0") != 0 && std::strcmp(value, "1") != 0) {
        std::fprintf(stderr, "mrsc_compile: --opt must be 0 or 1\n");
        return false;
      }
      options.opt = value[0] - '0';
    } else if (std::strcmp(arg, "--assume-zero") == 0) {
      options.assume_zero = split_commas(value);
    } else if (std::strcmp(arg, "--roots") == 0) {
      options.roots = split_commas(value);
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = value;
    } else if (std::strcmp(arg, "--out") == 0) {
      options.out = value;
    } else {
      std::fprintf(stderr, "mrsc_compile: unknown option %s\n", arg);
      return false;
    }
  }
  if (options.list_scenarios) return true;
  const int sources = (options.file.empty() ? 0 : 1) +
                      (options.design.empty() ? 0 : 1) +
                      (options.scenario.empty() ? 0 : 1);
  if (sources != 1) {
    std::fprintf(stderr,
                 "mrsc_compile: give exactly one of FILE.crn, --design, or "
                 "--scenario\n");
    return false;
  }
  return true;
}

void print_scenario_catalog() {
  const auto& registry = scenario::ScenarioRegistry::global();
  std::printf("fixed designs: %s\n", registry.fixed_names_csv().c_str());
  std::printf("generators:\n");
  for (const scenario::GeneratorInfo& info : registry.generators()) {
    std::printf("  %s(%s)  %s in [%llu, %llu], smoke %s(%llu) — %s\n",
                info.name.c_str(), info.parameter.c_str(),
                info.parameter.c_str(),
                static_cast<unsigned long long>(info.min_arg),
                static_cast<unsigned long long>(info.max_arg),
                info.name.c_str(),
                static_cast<unsigned long long>(info.smoke_arg),
                info.summary.c_str());
  }
  std::printf("smoke catalog:");
  for (const std::string& spec : registry.smoke_catalog()) {
    std::printf(" %s", spec.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) {
    usage();
    return 2;
  }
  if (cli.list_scenarios) {
    print_scenario_catalog();
    return 0;
  }
  try {
    compile::CompileReport report;
    compile::CompileOptions compile_options;
    compile_options.opt =
        cli.opt == 0 ? compile::OptLevel::kO0 : compile::OptLevel::kO1;
    compile_options.assume_zero_inputs = cli.assume_zero;
    compile_options.report = &report;

    tools::BuiltDesign compiled;
    if (!cli.scenario.empty()) {
      scenario::ResolvedScenario resolved;
      try {
        resolved =
            scenario::resolve_scenario_argument(cli.scenario, compile_options);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "mrsc_compile: %s\n", error.what());
        return 2;
      }
      report.design = resolved.scenario.name;
      compiled = std::move(resolved.design);
    } else if (!cli.design.empty()) {
      report.design = cli.design;
      compiled = tools::build_design(cli.design, compile_options);
    } else {
      report.design = cli.file;
      compiled.owned = std::make_unique<core::ReactionNetwork>(
          core::load_network(cli.file));
      compiled.network = compiled.owned.get();
      std::vector<core::SpeciesId> roots;
      for (const std::string& name : cli.roots) {
        const auto id = compiled.network->find_species(name);
        if (!id) {
          throw std::invalid_argument("--roots: no species named '" + name +
                                      "'");
        }
        roots.push_back(*id);
      }
      if (cli.opt == 0) {
        // Nothing to do, but still report the (identity) stats.
        report.before = core::compute_stats(*compiled.network);
        report.after = report.before;
      } else {
        auto result = compile::optimize_network(*compiled.network, roots);
        result.report.design = report.design;
        report = std::move(result.report);
      }
    }

    std::printf("%s", report.to_table().c_str());
    const auto& b = report.before;
    const auto& a = report.after;
    std::printf("%s: %zu species / %zu reactions -> %zu species / %zu "
                "reactions at -O%d\n",
                report.design.c_str(), b.species, b.reactions, a.species,
                a.reactions, cli.opt);

    if (!cli.json.empty()) {
      std::ofstream out(cli.json);
      if (!out) {
        std::fprintf(stderr, "mrsc_compile: cannot write %s\n",
                     cli.json.c_str());
        return 1;
      }
      out << report.to_json();
      std::printf("report written to %s\n", cli.json.c_str());
    }
    if (!cli.out.empty()) {
      core::save_network(*compiled.network, cli.out);
      std::printf("network written to %s\n", cli.out.c_str());
    }
    if (cli.lint) {
      lint::LintInput input = lint::LintInput::from_design(
          *compiled.network, compiled.info, report.design);
      input.composition = compiled.composition.get();
      const lint::LintReport lint_report = lint::run_lint(input);
      std::printf("%s", lint_report.to_text().c_str());
      if (!lint_report.clean()) return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_compile: %s\n", error.what());
    return 1;
  }
}
