#include "tools/builtin_designs.hpp"

#include <utility>

namespace mrsc::tools {

const char* builtin_design_names() {
  return scenario::ScenarioRegistry::global().fixed_names_csv().c_str();
}

BuiltDesign build_design(const std::string& name,
                         compile::CompileOptions options) {
  return std::move(
      scenario::ScenarioRegistry::global().resolve(name, options).design);
}

}  // namespace mrsc::tools
