#include "tools/builtin_designs.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "compile/compose.hpp"
#include "dsp/counter.hpp"
#include "dsp/filters.hpp"
#include "fsm/fsm.hpp"

namespace mrsc::tools {

namespace {

using compile::PortRole;
using core::SpeciesId;

/// Two delay lines compiled separately, then composed: A's output port is
/// wired into B's input port through a declared fast channel, and B's
/// output is the sampled terminal.
BuiltDesign build_cascade(const compile::CompileOptions& options) {
  compile::CompileOptions layer_options = options;
  layer_options.design_info = nullptr;
  layer_options.report = nullptr;
  const dsp::Design a = dsp::make_delay_line(2, {}, layer_options);
  const dsp::Design b = dsp::make_delay_line(2, {}, layer_options);

  BuiltDesign design;
  design.owned = std::make_unique<core::ReactionNetwork>();
  design.network = design.owned.get();
  design.owned->set_rate_policy(a.network->rate_policy());

  compile::CascadeComposer composer(*design.owned);
  std::vector<SpeciesId> map_a;
  std::vector<SpeciesId> map_b;
  composer.add_layer(*a.network, "A_", &map_a);
  composer.add_layer(*b.network, "B_", &map_b);
  composer.wire(map_a[a.circuit.output("y").index()],
                map_b[b.circuit.input("x").index()], "cascade.link");
  composer.mark_terminal(map_b[b.circuit.output("y").index()]);

  auto add_layer_roots = [&](const dsp::Design& layer,
                             const std::vector<SpeciesId>& map) {
    for (const auto& [name, id] : layer.circuit.inputs) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kInput);
    }
    for (const auto& [name, id] : layer.circuit.outputs) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kOutput);
    }
    for (const auto& [name, id] : layer.circuit.register_state) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kState);
    }
    const sync::ClockHandles& clock = layer.circuit.clock;
    for (const SpeciesId id : {clock.phase_r, clock.phase_g, clock.phase_b,
                               clock.ind_r, clock.ind_g, clock.ind_b}) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kClock);
    }
  };
  add_layer_roots(a, map_a);
  add_layer_roots(b, map_b);
  // Layer tags do not survive the merge; tag-indexed checks are skipped.
  design.info.tags_valid = false;

  design.composition =
      std::make_unique<compile::Composition>(composer.composition());
  return design;
}

}  // namespace

const char* builtin_design_names() {
  return "counter, moving_average, iir, first_difference, delay, seqdet, "
         "cascade";
}

BuiltDesign build_design(const std::string& name,
                         compile::CompileOptions options) {
  if (name == "cascade") return build_cascade(options);

  BuiltDesign design;
  options.design_info = &design.info;
  if (name == "counter") {
    design.owned = std::make_unique<core::ReactionNetwork>();
    dsp::build_counter(*design.owned, dsp::CounterSpec{}, options);
    design.network = design.owned.get();
    return design;
  }
  if (name == "seqdet") {
    design.owned = std::make_unique<core::ReactionNetwork>();
    const fsm::FsmSpec spec = fsm::make_sequence_detector("101");
    fsm::build_fsm(*design.owned, spec, options);
    design.network = design.owned.get();
    return design;
  }
  dsp::Design compiled;
  if (name == "moving_average") {
    compiled = dsp::make_moving_average({}, options);
  } else if (name == "iir") {
    compiled = dsp::make_second_order_iir({}, options);
  } else if (name == "first_difference") {
    compiled = dsp::make_first_difference({}, options);
  } else if (name == "delay") {
    compiled = dsp::make_delay_line(3, {}, options);
  } else {
    throw std::invalid_argument(std::string("unknown design '") + name +
                                "' (try " + builtin_design_names() + ")");
  }
  design.owned = std::move(compiled.network);
  design.network = design.owned.get();
  return design;
}

}  // namespace mrsc::tools
