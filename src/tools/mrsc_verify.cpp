// mrsc_verify — differential-testing and property-fuzzing CLI.
//
//   mrsc_verify [options]
//
// Sweeps seeds over the structured random-case generator (raw networks,
// synchronous circuits, dual-rail circuits, FSMs, counters), runs every
// applicable invariant/differential oracle, and shrinks any failing network
// to a minimal repro. A clean run prints per-kind counts and exits 0; any
// violation prints the shrunk repro plus the exact command to reproduce it
// and exits 1.
//
// A second mode targets one design instead of the random generator:
//
//   mrsc_verify --scenario SPEC [options]
//
// resolves the scenario ("counter", "cascade(3)", or a .mrsc file) through
// the registry and sweeps the legacy-vs-compiled engine-equivalence oracle
// over its network, one run per seed in [start-seed, start-seed + seeds).
// The scenario's verify budget supplies default --seeds/--start-seed
// (explicit flags win; bare specs default to seeds=3, start-seed=1).
//
//   --seeds N          number of cases              (default 50)
//   --start-seed S     first seed                   (default 0)
//   --kinds A,B,C      subset of raw,sync,dual,fsm,counter (default all)
//   --cycles N         clock cycles per clocked case (default 3)
//   --replicates R     SSA replicates per ensemble  (default 16)
//   --omega W          molecules per concentration unit (default 300)
//   --threads N        worker threads               (default 1; 0 = hardware)
//   --no-shrink        report failures unshrunk
//   --no-differential  skip the SSA-ensemble oracles on raw cases
//   --no-opt-equivalence  skip the kO1 compile-pipeline equivalence oracle
//   --no-engine-equivalence  skip the legacy-vs-compiled engine oracle
//   --json PATH        machine-readable failure report
//   --regen-golden DIR recompute the golden traces into DIR and exit
//   --verbose          print every case, not just failures
//
// Exits 0 on a clean sweep, 1 on violations, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "verify/engine_equivalence.hpp"
#include "verify/golden.hpp"
#include "verify/verify.hpp"

namespace {

using namespace mrsc;

struct CliOptions {
  verify::VerifyOptions verify;
  std::string kinds_csv;
  std::string scenario;
  std::string json;
  std::string regen_golden;
  bool verbose = false;
  // Whether the user passed the flag explicitly; explicit flags beat the
  // scenario's verify budget.
  bool set_seeds = false;
  bool set_start_seed = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mrsc_verify [--scenario SPEC]\n"
      "       [--seeds N] [--start-seed S] [--kinds A,B,C]\n"
      "       [--cycles N] [--replicates R] [--omega W] [--threads N]\n"
      "       [--no-shrink] [--no-differential] [--no-opt-equivalence]\n"
      "       [--no-engine-equivalence] [--json PATH]\n"
      "       [--regen-golden DIR] [--verbose]\n"
      "       kinds: raw,sync,dual,fsm,counter\n");
}

bool parse_double(const char* flag, const char* text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_verify: %s: '%s' is not a number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_verify: %s: '%s' is not a whole number\n",
                 flag, text);
    return false;
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_verify: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool is_flag = std::strcmp(arg, "--no-shrink") == 0 ||
                         std::strcmp(arg, "--no-differential") == 0 ||
                         std::strcmp(arg, "--no-opt-equivalence") == 0 ||
                         std::strcmp(arg, "--no-engine-equivalence") == 0 ||
                         std::strcmp(arg, "--verbose") == 0;
    const bool takes_value = !is_flag && arg[0] == '-' && arg[1] == '-';
    const char* value = nullptr;
    if (takes_value && !(value = need_value(i))) return false;
    if (std::strcmp(arg, "--seeds") == 0) {
      std::uint64_t seeds = 0;
      if (!parse_u64(arg, value, seeds)) return false;
      options.verify.seeds = static_cast<std::size_t>(seeds);
      options.set_seeds = true;
    } else if (std::strcmp(arg, "--start-seed") == 0) {
      if (!parse_u64(arg, value, options.verify.start_seed)) return false;
      options.set_start_seed = true;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      options.scenario = value;
    } else if (std::strcmp(arg, "--kinds") == 0) {
      options.kinds_csv = value;
    } else if (std::strcmp(arg, "--cycles") == 0) {
      std::uint64_t cycles = 0;
      if (!parse_u64(arg, value, cycles)) return false;
      options.verify.generator.cycles = static_cast<std::size_t>(cycles);
    } else if (std::strcmp(arg, "--replicates") == 0) {
      std::uint64_t replicates = 0;
      if (!parse_u64(arg, value, replicates)) return false;
      options.verify.ssa_replicates = static_cast<std::size_t>(replicates);
    } else if (std::strcmp(arg, "--omega") == 0) {
      if (!parse_double(arg, value, options.verify.omega)) return false;
    } else if (std::strcmp(arg, "--threads") == 0) {
      std::uint64_t threads = 0;
      if (!parse_u64(arg, value, threads)) return false;
      options.verify.threads = static_cast<std::size_t>(threads);
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.verify.shrink = false;
    } else if (std::strcmp(arg, "--no-differential") == 0) {
      options.verify.differential = false;
    } else if (std::strcmp(arg, "--no-opt-equivalence") == 0) {
      options.verify.opt_equivalence = false;
    } else if (std::strcmp(arg, "--no-engine-equivalence") == 0) {
      options.verify.engine_equivalence = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = value;
    } else if (std::strcmp(arg, "--regen-golden") == 0) {
      options.regen_golden = value;
    } else {
      std::fprintf(stderr, "mrsc_verify: unknown option %s\n", arg);
      return false;
    }
  }
  if (options.regen_golden.empty() && options.verify.seeds == 0) {
    std::fprintf(stderr, "mrsc_verify: --seeds must be >= 1\n");
    return false;
  }
  if (options.verify.omega <= 0.0) {
    std::fprintf(stderr, "mrsc_verify: --omega must be > 0\n");
    return false;
  }
  if (options.verify.generator.cycles == 0 ||
      options.verify.ssa_replicates == 0) {
    std::fprintf(stderr,
                 "mrsc_verify: --cycles and --replicates must be >= 1\n");
    return false;
  }
  try {
    options.verify.kinds = verify::parse_kinds(options.kinds_csv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mrsc_verify: %s\n", e.what());
    return false;
  }
  return true;
}

// --scenario mode: sweep the engine-equivalence oracle over one resolved
// design, one run per seed. The scenario's sim budget shapes the oracle run
// (horizon, sampling grid, omega); its verify budget sets the seed sweep.
int run_scenario_verify(const CliOptions& cli) {
  scenario::ResolvedScenario resolved;
  try {
    resolved = scenario::resolve_scenario_argument(cli.scenario);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "mrsc_verify: %s\n", error.what());
    return 2;
  }
  const scenario::VerifyBudget& budget = resolved.scenario.verify;
  const std::size_t seeds =
      cli.set_seeds ? cli.verify.seeds
                    : static_cast<std::size_t>(budget.seeds.value_or(3));
  const std::uint64_t start_seed =
      cli.set_start_seed ? cli.verify.start_seed : budget.start_seed.value_or(1);

  verify::EngineEquivalenceOptions oracle;
  const scenario::SimBudget& sim = resolved.scenario.sim;
  if (sim.t_end) oracle.t_end = *sim.t_end;
  if (sim.record) oracle.record_interval = *sim.record;
  if (sim.omega) oracle.omega = *sim.omega;

  const core::ReactionNetwork& network = *resolved.design.network;
  std::printf("scenario %s: %zu species, %zu reactions; engine-equivalence "
              "sweep over seeds [%llu, %llu)\n",
              resolved.scenario.name.c_str(), network.species_count(),
              network.reaction_count(),
              static_cast<unsigned long long>(start_seed),
              static_cast<unsigned long long>(start_seed + seeds));
  std::size_t failed = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    oracle.seed = start_seed + i;
    const std::vector<verify::Violation> violations =
        verify::check_engine_equivalence(network, oracle);
    if (!violations.empty()) {
      ++failed;
      for (const verify::Violation& violation : violations) {
        std::printf("seed %llu: %s: %s\n",
                    static_cast<unsigned long long>(oracle.seed),
                    violation.oracle.c_str(), violation.detail.c_str());
      }
    } else if (cli.verbose) {
      std::printf("seed %llu: ok\n",
                  static_cast<unsigned long long>(oracle.seed));
    }
  }
  std::printf("%zu/%zu seeds clean: %s\n", seeds - failed, seeds,
              failed == 0 ? "engines agree"
                          : "ENGINE DIVERGENCE — see above");
  return failed == 0 ? 0 : 1;
}

int regen_golden(const std::string& dir) {
  const auto traces = verify::compute_reference_traces();
  for (const verify::GoldenTrace& trace : traces) {
    const std::string path = dir + "/" + trace.name + ".golden";
    verify::save_golden(trace, path);
    std::printf("wrote %s (%zu rows, tolerance %g)\n", path.c_str(),
                trace.rows.size(), trace.tolerance);
  }
  return 0;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

int write_json(const std::string& path, const verify::FuzzReport& report) {
  std::string json = "{\n";
  json += "  \"checked\": " + std::to_string(report.checked) + ",\n";
  json += "  \"failed\": " + std::to_string(report.failed) + ",\n";
  json +=
      "  \"wall_seconds\": " + std::to_string(report.wall_seconds) + ",\n";
  json += "  \"failures\": [\n";
  bool first = true;
  for (const verify::CaseResult& result : report.cases) {
    if (!result.failed()) continue;
    if (!first) json += ",\n";
    first = false;
    json += "    {\"seed\": " + std::to_string(result.seed) + ", \"kind\": \"";
    json += verify::to_string(result.kind);
    json += "\", \"violations\": [";
    for (std::size_t v = 0; v < result.violations.size(); ++v) {
      json += "{\"oracle\": \"" + json_escape(result.violations[v].oracle) +
              "\", \"detail\": \"" + json_escape(result.violations[v].detail) +
              "\"}";
      if (v + 1 < result.violations.size()) json += ", ";
    }
    json += "], \"shrunk\": ";
    json += result.shrunk ? "true" : "false";
    if (result.shrunk) {
      json += ", \"shrunk_reactions\": " +
              std::to_string(result.shrunk_reactions) +
              ", \"repro\": \"" + json_escape(result.repro) + "\"";
    }
    json += "}";
  }
  json += "\n  ]\n}\n";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "mrsc_verify: cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) {
    usage();
    return 2;
  }
  try {
    if (!cli.regen_golden.empty()) return regen_golden(cli.regen_golden);
    if (!cli.scenario.empty()) return run_scenario_verify(cli);

    const verify::FuzzReport report = verify::run_fuzz(cli.verify);

    std::map<std::string, std::size_t> per_kind;
    std::map<std::string, std::size_t> per_kind_failed;
    for (const verify::CaseResult& result : report.cases) {
      ++per_kind[verify::to_string(result.kind)];
      if (result.failed()) ++per_kind_failed[verify::to_string(result.kind)];
      if (cli.verbose || result.failed()) {
        std::printf("%s\n", verify::describe(result).c_str());
      }
    }
    std::printf("checked %zu cases in %.1fs:", report.checked,
                report.wall_seconds);
    for (const auto& [kind, count] : per_kind) {
      std::printf(" %s=%zu", kind.c_str(), count);
      if (per_kind_failed.count(kind) > 0) {
        std::printf("(%zu FAILED)", per_kind_failed[kind]);
      }
    }
    std::printf("\n%s\n",
                report.failed == 0
                    ? "all oracles passed"
                    : "VIOLATIONS FOUND — see repros above");
    if (!cli.json.empty()) {
      const int rc = write_json(cli.json, report);
      if (rc != 0) return rc;
    }
    return report.failed == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_verify: %s\n", error.what());
    return 1;
  }
}
