// mrsc_sim — command-line simulator for reaction-network files.
//
//   mrsc_sim FILE.crn [options]
//   mrsc_sim --scenario SPEC [options]
//
//   --scenario SPEC    simulate a registry design ("counter", "counter(4)",
//                      "cascade(3)", ...) or a .mrsc scenario file instead
//                      of FILE.crn; scenario @sim budgets become defaults
//                      that explicit flags override
//
//   --t-end T          simulation horizon              (default 100)
//   --method M         dp45 | rk4 | be | ssa | nrm | tau   (default dp45)
//   --dt H             fixed step / initial step       (default 1e-3)
//   --record DT        sampling interval               (default t_end/200)
//   --omega W          molecules per concentration unit, stochastic methods
//   --seed S           RNG seed, stochastic methods    (default 1)
//   --tau T            leap length for tau-leaping     (default 0.01)
//   --max-events N     event cap, stochastic methods; hitting it is an
//                      error that names the method and seed
//   --engine E         compiled | legacy               (default compiled)
//                      both engines are bitwise-identical; legacy is the
//                      differential-testing reference path
//   --species A,B,C    which species to report         (default all)
//   --csv PATH         write the trajectory as CSV
//   --plot             render an ASCII waveform of the reported species
//   --laws             print the network's conservation laws
//   --opt              run the kO1 compile pipeline on the loaded network
//                      first (--species names are pinned as roots) and
//                      print the per-pass table
//
// Prints the final state of the reported species.
//
// Exit codes:
//   0  simulation finished and the report was written
//   1  runtime failure: unreadable file, stepper error, event-limit hit
//   2  bad CLI usage: unknown flag/method, malformed value, unknown species
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/conservation.hpp"
#include "analysis/plot.hpp"
#include "compile/passes.hpp"
#include "core/io.hpp"
#include "scenario/registry.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"

namespace {

using namespace mrsc;

struct CliOptions {
  std::string file;
  std::string scenario;
  double t_end = 100.0;
  std::string method = "dp45";
  double dt = 1e-3;
  double record = 0.0;  // 0 -> t_end / 200
  double omega = 1000.0;
  std::uint64_t seed = 1;
  double tau = 0.01;
  std::uint64_t max_events = 0;  // 0 keeps the SsaOptions default
  std::string engine = "compiled";
  std::vector<std::string> species;
  std::string csv;
  bool plot = false;
  bool laws = false;
  bool opt = false;
  // Which knobs the user set explicitly — scenario @sim budgets only fill
  // the ones they did not.
  bool set_method = false;
  bool set_t_end = false;
  bool set_record = false;
  bool set_omega = false;
  bool set_seed = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: mrsc_sim [FILE.crn | --scenario SPEC] [--t-end T] "
               "[--method dp45|rk4|be|ssa|nrm|tau]\n"
               "       [--dt H] [--record DT] [--omega W] [--seed S] "
               "[--tau T]\n"
               "       [--max-events N] [--engine compiled|legacy] "
               "[--species A,B,C] [--csv PATH]\n"
               "       [--plot] [--laws] [--opt]\n"
               "       scenarios: %s; parametric counter(N), delay_chain(D), "
               "fsm_wide(S), cascade(L); or a .mrsc file\n",
               scenario::ScenarioRegistry::global().fixed_names_csv().c_str());
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_double(const char* flag, const char* text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_sim: %s: '%s' is not a number\n", flag, text);
    return false;
  }
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_sim: %s: '%s' is not a whole number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_sim: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--t-end") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_double(arg, v, options.t_end)) return false;
      options.set_t_end = true;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      options.scenario = v;
    } else if (std::strcmp(arg, "--method") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      options.method = v;
      options.set_method = true;
    } else if (std::strcmp(arg, "--dt") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_double(arg, v, options.dt)) return false;
    } else if (std::strcmp(arg, "--record") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_double(arg, v, options.record)) return false;
      options.set_record = true;
    } else if (std::strcmp(arg, "--omega") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_double(arg, v, options.omega)) return false;
      options.set_omega = true;
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_u64(arg, v, options.seed)) return false;
      options.set_seed = true;
    } else if (std::strcmp(arg, "--tau") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_double(arg, v, options.tau)) return false;
    } else if (std::strcmp(arg, "--max-events") == 0) {
      const char* v = need_value(i);
      if (!v || !parse_u64(arg, v, options.max_events)) return false;
      if (options.max_events == 0) {
        std::fprintf(stderr, "mrsc_sim: --max-events must be >= 1\n");
        return false;
      }
    } else if (std::strcmp(arg, "--engine") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      options.engine = v;
    } else if (std::strcmp(arg, "--species") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      options.species = split_commas(v);
    } else if (std::strcmp(arg, "--csv") == 0) {
      const char* v = need_value(i);
      if (!v) return false;
      options.csv = v;
    } else if (std::strcmp(arg, "--plot") == 0) {
      options.plot = true;
    } else if (std::strcmp(arg, "--laws") == 0) {
      options.laws = true;
    } else if (std::strcmp(arg, "--opt") == 0) {
      options.opt = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "mrsc_sim: unknown option %s\n", arg);
      return false;
    } else if (options.file.empty()) {
      options.file = arg;
    } else {
      std::fprintf(stderr, "mrsc_sim: multiple input files\n");
      return false;
    }
  }
  if (options.file.empty() == options.scenario.empty()) {
    std::fprintf(stderr,
                 "mrsc_sim: give exactly one of FILE.crn or --scenario\n");
    usage();
    return false;
  }
  // Validate up front so a bad value produces one clear message instead of a
  // divide-by-zero sampling grid or an integrator that cannot advance.
  if (options.t_end <= 0.0) {
    std::fprintf(stderr, "mrsc_sim: --t-end must be > 0 (got %g)\n",
                 options.t_end);
    return false;
  }
  if (options.dt <= 0.0) {
    std::fprintf(stderr, "mrsc_sim: --dt must be > 0 (got %g)\n", options.dt);
    return false;
  }
  if (options.omega <= 0.0) {
    std::fprintf(stderr, "mrsc_sim: --omega must be > 0 (got %g)\n",
                 options.omega);
    return false;
  }
  if (options.tau <= 0.0) {
    std::fprintf(stderr, "mrsc_sim: --tau must be > 0 (got %g)\n",
                 options.tau);
    return false;
  }
  if (options.record < 0.0) {
    std::fprintf(stderr, "mrsc_sim: --record must be >= 0 (got %g)\n",
                 options.record);
    return false;
  }
  if (options.engine != "compiled" && options.engine != "legacy") {
    std::fprintf(stderr,
                 "mrsc_sim: --engine must be 'compiled' or 'legacy' "
                 "(got '%s')\n",
                 options.engine.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) return 2;

  core::ReactionNetwork network;
  if (!cli.scenario.empty()) {
    try {
      scenario::ResolvedScenario resolved =
          scenario::resolve_scenario_argument(cli.scenario);
      network = std::move(*resolved.design.network);
      // Scenario budgets are defaults; explicit flags win.
      const scenario::SimBudget& budget = resolved.scenario.sim;
      if (!cli.set_method && budget.method) cli.method = *budget.method;
      if (!cli.set_t_end && budget.t_end) cli.t_end = *budget.t_end;
      if (!cli.set_record && budget.record) cli.record = *budget.record;
      if (!cli.set_omega && budget.omega) cli.omega = *budget.omega;
      if (!cli.set_seed && budget.seed) cli.seed = *budget.seed;
      std::printf("scenario %s: %zu species, %zu reactions\n",
                  resolved.scenario.name.c_str(), network.species_count(),
                  network.reaction_count());
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "mrsc_sim: %s\n", error.what());
      return 2;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "mrsc_sim: %s\n", error.what());
      return 1;
    }
  }

  try {
    if (!cli.file.empty()) {
      network = core::load_network(cli.file);
      std::printf("loaded %s: %zu species, %zu reactions\n",
                  cli.file.c_str(), network.species_count(),
                  network.reaction_count());
    }

    if (cli.opt) {
      // The reported species are the interface the user cares about; pin
      // them (resolved against the pre-optimization network) as roots.
      std::vector<core::SpeciesId> roots;
      for (const std::string& name : cli.species) {
        const auto id = network.find_species(name);
        if (!id) {
          std::fprintf(stderr, "mrsc_sim: unknown species '%s'\n",
                       name.c_str());
          return 2;
        }
        roots.push_back(*id);
      }
      auto optimized = compile::optimize_network(network, roots);
      optimized.report.design = cli.file;
      std::printf("%s", optimized.report.to_table().c_str());
    }

    if (cli.laws) {
      const auto laws = analysis::conservation_laws(network);
      std::printf("%zu conservation law(s):\n", laws.size());
      for (const auto& law : laws) {
        std::printf("  ");
        bool first = true;
        for (std::size_t i = 0; i < law.size(); ++i) {
          if (law[i] == 0.0) continue;
          const core::SpeciesId id{
              static_cast<core::SpeciesId::underlying_type>(i)};
          std::printf("%s%+.3g %s", first ? "" : " ", law[i],
                      network.species_name(id).c_str());
          first = false;
        }
        std::printf(" = const\n");
      }
    }

    // Resolve the reported species.
    std::vector<core::SpeciesId> report;
    if (cli.species.empty()) {
      for (std::size_t i = 0; i < network.species_count(); ++i) {
        report.push_back(core::SpeciesId{
            static_cast<core::SpeciesId::underlying_type>(i)});
      }
    } else {
      for (const std::string& name : cli.species) {
        const auto id = network.find_species(name);
        if (!id) {
          std::fprintf(stderr, "mrsc_sim: unknown species '%s'\n",
                       name.c_str());
          return 2;
        }
        report.push_back(*id);
      }
    }

    // Default sampling grid: t_end/200, clamped away from zero so a tiny
    // --t-end cannot underflow it into an invalid (nonpositive) interval.
    const double record =
        cli.record > 0.0
            ? cli.record
            : std::max(cli.t_end / 200.0,
                       std::numeric_limits<double>::min());
    const sim::EngineKind engine_kind = cli.engine == "legacy"
                                            ? sim::EngineKind::kLegacy
                                            : sim::EngineKind::kCompiled;
    sim::Trajectory trajectory;
    if (cli.method == "dp45" || cli.method == "rk4" || cli.method == "be") {
      sim::OdeOptions options;
      options.t_end = cli.t_end;
      options.dt = cli.dt;
      options.record_interval = record;
      options.engine.kind = engine_kind;
      options.method = cli.method == "rk4" ? sim::OdeMethod::kRk4Fixed
                       : cli.method == "be"
                           ? sim::OdeMethod::kBackwardEuler
                           : sim::OdeMethod::kDormandPrince45;
      sim::OdeResult result = simulate_ode(network, options);
      std::printf("ODE (%s): %zu steps accepted, %zu rejected\n",
                  cli.method.c_str(), result.steps_accepted,
                  result.steps_rejected);
      trajectory = std::move(result.trajectory);
    } else if (cli.method == "ssa" || cli.method == "nrm" ||
               cli.method == "tau") {
      sim::SsaOptions options;
      options.t_end = cli.t_end;
      options.omega = cli.omega;
      options.seed = cli.seed;
      options.tau = cli.tau;
      if (cli.max_events > 0) options.max_events = cli.max_events;
      options.record_interval = record;
      options.engine.kind = engine_kind;
      options.method = cli.method == "ssa" ? sim::SsaMethod::kDirect
                       : cli.method == "nrm"
                           ? sim::SsaMethod::kNextReaction
                           : sim::SsaMethod::kTauLeaping;
      sim::SsaResult result = simulate_ssa(network, options);
      std::printf("SSA (%s): %llu events%s\n", cli.method.c_str(),
                  static_cast<unsigned long long>(result.events),
                  result.exhausted ? " (exhausted)" : "");
      if (result.hit_event_limit) {
        std::fprintf(stderr,
                     "mrsc_sim: method %s seed %llu hit the event limit "
                     "(%llu events) at t=%.6g before t_end=%g\n",
                     cli.method.c_str(),
                     static_cast<unsigned long long>(cli.seed),
                     static_cast<unsigned long long>(result.events),
                     result.end_time, cli.t_end);
        return 1;
      }
      trajectory = std::move(result.trajectory);
    } else {
      std::fprintf(stderr, "mrsc_sim: unknown method '%s'\n",
                   cli.method.c_str());
      return 2;
    }

    std::printf("final state at t=%.6g:\n", trajectory.final_time());
    for (const core::SpeciesId id : report) {
      std::printf("  %-20s %.6g\n", network.species_name(id).c_str(),
                  trajectory.final_value(id));
    }
    if (!cli.csv.empty()) {
      analysis::write_file(cli.csv, trajectory.to_csv(network, report));
      std::printf("trajectory written to %s\n", cli.csv.c_str());
    }
    if (cli.plot) {
      analysis::AsciiPlotOptions plot;
      plot.width = 100;
      plot.height = 14;
      std::printf("%s",
                  analysis::plot_trajectory(trajectory, network, report,
                                            plot)
                      .c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_sim: %s\n", error.what());
    return 1;
  }
  return 0;
}
