// mrsc_chaosproxy — fault-injecting TCP proxy for chaos-testing the fleet
// (src/fleet/chaos_proxy.hpp; usage in docs/FLEET.md).
//
//   mrsc_chaosproxy --upstream-port P [options]
//
//   --upstream-port P  shard to proxy to (required)
//   --upstream-host A  shard address               (default 127.0.0.1)
//   --listen-host A    address to bind             (default 127.0.0.1)
//   --listen-port P    port to bind; 0 = ephemeral (default 0)
//   --port-file PATH   write the bound port to PATH
//   --seed S           fault-schedule seed         (default 1)
//   --drop X           P(close on accept)          (default 0)
//   --delay X          P(delay the response)       (default 0)
//   --delay-ms MS      delay length                (default 50)
//   --truncate X       P(cut the response mid-frame) (default 0)
//   --blackhole X      P(swallow everything, hold the connection) (default 0)
//
// Connection k (accept order) draws its fault from Rng(stream_seed(seed,k)),
// so a given (seed, probabilities) pair is a replayable fault schedule.
// Runs until SIGTERM/SIGINT.
//
// Exit codes:
//   0  clean shutdown on signal
//   1  runtime error (bind failure, unwritable --port-file)
//   2  bad CLI usage
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "fleet/chaos_proxy.hpp"

namespace {

using namespace mrsc;

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int signum) { g_signal = signum; }

struct CliOptions {
  fleet::Endpoint upstream;
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  std::string port_file;
  std::uint64_t seed = 1;
  fleet::ChaosFaults faults;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mrsc_chaosproxy --upstream-port P [--upstream-host A]\n"
      "       [--listen-host A] [--listen-port P] [--port-file PATH]\n"
      "       [--seed S] [--drop X] [--delay X] [--delay-ms MS]\n"
      "       [--truncate X] [--blackhole X]\n");
}

bool parse_double(const char* flag, const char* text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_chaosproxy: %s: '%s' is not a number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_chaosproxy: %s: '%s' is not a whole number\n",
                 flag, text);
    return false;
  }
  return true;
}

bool parse_probability(const char* flag, const char* text, double& out) {
  if (!parse_double(flag, text, out)) return false;
  if (out < 0.0 || out > 1.0) {
    std::fprintf(stderr, "mrsc_chaosproxy: %s must be in [0, 1]\n", flag);
    return false;
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_chaosproxy: %s needs a value\n", arg);
      return false;
    }
    const char* value = argv[++i];
    std::uint64_t number = 0;
    if (std::strcmp(arg, "--upstream-port") == 0) {
      if (!parse_u64(arg, value, number) || number == 0 || number > 65535) {
        return false;
      }
      options.upstream.port = static_cast<std::uint16_t>(number);
    } else if (std::strcmp(arg, "--upstream-host") == 0) {
      options.upstream.host = value;
    } else if (std::strcmp(arg, "--listen-host") == 0) {
      options.listen_host = value;
    } else if (std::strcmp(arg, "--listen-port") == 0) {
      if (!parse_u64(arg, value, number) || number > 65535) return false;
      options.listen_port = static_cast<std::uint16_t>(number);
    } else if (std::strcmp(arg, "--port-file") == 0) {
      options.port_file = value;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!parse_u64(arg, value, options.seed)) return false;
    } else if (std::strcmp(arg, "--drop") == 0) {
      if (!parse_probability(arg, value, options.faults.drop)) return false;
    } else if (std::strcmp(arg, "--delay") == 0) {
      if (!parse_probability(arg, value, options.faults.delay)) return false;
    } else if (std::strcmp(arg, "--delay-ms") == 0) {
      if (!parse_double(arg, value, options.faults.delay_ms)) return false;
    } else if (std::strcmp(arg, "--truncate") == 0) {
      if (!parse_probability(arg, value, options.faults.truncate)) {
        return false;
      }
    } else if (std::strcmp(arg, "--blackhole") == 0) {
      if (!parse_probability(arg, value, options.faults.blackhole)) {
        return false;
      }
    } else {
      std::fprintf(stderr, "mrsc_chaosproxy: unknown option %s\n", arg);
      usage();
      return false;
    }
  }
  if (options.upstream.port == 0) {
    usage();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) return 2;
  try {
    fleet::ChaosProxy proxy(cli.upstream, cli.faults, cli.seed);
    proxy.start(cli.listen_host, cli.listen_port);
    std::printf(
        "mrsc_chaosproxy: %s:%u -> %s:%u (seed=%llu drop=%.2f delay=%.2f "
        "truncate=%.2f blackhole=%.2f)\n",
        cli.listen_host.c_str(), proxy.port(), cli.upstream.host.c_str(),
        cli.upstream.port, static_cast<unsigned long long>(cli.seed),
        cli.faults.drop, cli.faults.delay, cli.faults.truncate,
        cli.faults.blackhole);
    std::fflush(stdout);
    if (!cli.port_file.empty()) {
      std::ofstream out(cli.port_file);
      if (!out) {
        std::fprintf(stderr, "mrsc_chaosproxy: cannot write %s\n",
                     cli.port_file.c_str());
        return 1;
      }
      out << proxy.port() << "\n";
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("mrsc_chaosproxy: signal %d, %llu connection(s) proxied\n",
                static_cast<int>(g_signal),
                static_cast<unsigned long long>(proxy.connections()));
    proxy.stop();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_chaosproxy: %s\n", error.what());
    return 1;
  }
}
