// mrsc_loadgen — open-loop load generator for mrsc_serve.
//
//   mrsc_loadgen --port P [options]
//
// Drives the service at a *fixed request rate* from a replayable corpus
// built out of the builtin designs, nighthawk-style: request i has the
// fixed scheduled start time `i / rate`, regardless of how fast the server
// answers, and its latency is measured from that scheduled start — so
// server-side queueing delay is part of the number instead of the
// closed-loop coordinated-omission blind spot. Concurrency is bounded by
// the connection count; when every connection is busy past a request's
// scheduled start, the wait shows up as latency, which is exactly what an
// overloaded open-loop client should report.
//
//   --host A           server address              (default 127.0.0.1)
//   --port P           server port                 (required)
//   --rate R           requests per second         (default 50)
//   --duration S       run length, seconds         (default 2)
//   --connections C    parallel connections        (default 4)
//   --designs A,B,C    corpus designs: registry specs, fixed or parametric
//                      ("counter", "cascade(3)"); validated and
//                      canonicalized through the scenario registry before
//                      any request is sent (default counter,
//                      moving_average,delay). The special value @catalog
//                      asks the server for its smoke catalog over the wire
//                      ({"op":"catalog"}) and uses that as the design list.
//   --kinds A,B        corpus job kinds: sim|lint  (default sim,lint)
//   --corpus FILE      replay a scenario corpus file instead of the
//                      designs x kinds grid: one "<kind> <spec>" pair per
//                      line (kind sim|lint, spec a registry design spec),
//                      '#' comments and blank lines ignored
//   --seed S           sim seed (fixed per request so replays hit the
//                      cache; default 1)
//   --t-end T          sim horizon                 (default 3)
//   --omega W          sim volume scale            (default 200)
//   --json PATH        write the report ( - = stdout)
//
// The corpus is cycled in order, so any run longer than one cycle
// resubmits byte-identical requests and must produce server cache hits;
// the final report embeds the server's stats payload for exactly that
// kind of assertion.
//
// Connections are opened with bounded retry (serve::connect_with_retry):
// scripts that launch the loadgen the instant the server's --port-file
// appears no longer race the listener coming up, while a genuinely absent
// server still fails within a couple of seconds.
//
// Exit codes:
//   0  every request answered ok
//   1  any overload rejection, error response, or transport failure
//   2  bad CLI usage
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scenario/registry.hpp"
#include "serve/dispatcher.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace mrsc;
using Clock = std::chrono::steady_clock;

struct CliOptions {
  std::string host = "127.0.0.1";
  int port = -1;
  double rate = 50.0;
  double duration = 2.0;
  std::size_t connections = 4;
  std::vector<std::string> designs = {"counter", "moving_average", "delay"};
  std::vector<std::string> kinds = {"sim", "lint"};
  std::string corpus_file;
  std::uint64_t seed = 1;
  double t_end = 3.0;
  double omega = 200.0;
  std::string json;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mrsc_loadgen --port P [--host A] [--rate R] [--duration S]\n"
      "       [--connections C] [--designs A,B,C] [--kinds sim,lint]\n"
      "       [--corpus FILE] [--seed S] [--t-end T] [--omega W]\n"
      "       [--json PATH]\n");
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_double(const char* flag, const char* text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_loadgen: %s: '%s' is not a number\n", flag,
                 text);
    return false;
  }
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrsc_loadgen: %s: '%s' is not a whole number\n",
                 flag, text);
    return false;
  }
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mrsc_loadgen: %s needs a value\n", arg);
      return false;
    }
    const char* value = argv[++i];
    std::uint64_t number = 0;
    if (std::strcmp(arg, "--host") == 0) {
      options.host = value;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!parse_u64(arg, value, number) || number == 0 || number > 65535) {
        std::fprintf(stderr, "mrsc_loadgen: --port must be 1..65535\n");
        return false;
      }
      options.port = static_cast<int>(number);
    } else if (std::strcmp(arg, "--rate") == 0) {
      if (!parse_double(arg, value, options.rate)) return false;
    } else if (std::strcmp(arg, "--duration") == 0) {
      if (!parse_double(arg, value, options.duration)) return false;
    } else if (std::strcmp(arg, "--connections") == 0) {
      if (!parse_u64(arg, value, number) || number == 0) return false;
      options.connections = static_cast<std::size_t>(number);
    } else if (std::strcmp(arg, "--designs") == 0) {
      options.designs = split_commas(value);
    } else if (std::strcmp(arg, "--kinds") == 0) {
      options.kinds = split_commas(value);
    } else if (std::strcmp(arg, "--corpus") == 0) {
      options.corpus_file = value;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!parse_u64(arg, value, options.seed)) return false;
    } else if (std::strcmp(arg, "--t-end") == 0) {
      if (!parse_double(arg, value, options.t_end)) return false;
    } else if (std::strcmp(arg, "--omega") == 0) {
      if (!parse_double(arg, value, options.omega)) return false;
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = value;
    } else {
      std::fprintf(stderr, "mrsc_loadgen: unknown option %s\n", arg);
      usage();
      return false;
    }
  }
  if (options.port < 0) {
    usage();
    return false;
  }
  if (!(options.rate > 0.0) || !(options.duration > 0.0) ||
      !(options.t_end > 0.0) || options.omega < 1.0) {
    std::fprintf(stderr,
                 "mrsc_loadgen: --rate, --duration, --t-end must be > 0 and "
                 "--omega >= 1\n");
    return false;
  }
  if (options.designs.empty() || options.kinds.empty()) {
    std::fprintf(stderr,
                 "mrsc_loadgen: --designs and --kinds must be non-empty\n");
    return false;
  }
  for (const std::string& kind : options.kinds) {
    if (kind != "sim" && kind != "lint") {
      std::fprintf(stderr,
                   "mrsc_loadgen: --kinds must be drawn from sim,lint\n");
      return false;
    }
  }
  return true;
}

/// One corpus entry: a job kind plus the registry design spec it targets.
struct CorpusEntry {
  std::string kind;
  std::string design;
};

/// Parses a scenario corpus file: one "<kind> <spec>" per line, '#'
/// comments and blank lines ignored. Throws std::invalid_argument naming
/// the offending line, std::runtime_error when the file is unreadable.
std::vector<CorpusEntry> load_corpus_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read corpus file " + path);
  std::vector<CorpusEntry> entries;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    const std::size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) {
      throw std::invalid_argument(path + ": line " +
                                  std::to_string(line_number) +
                                  ": expected '<kind> <spec>'");
    }
    CorpusEntry entry;
    entry.kind = line.substr(0, space);
    const std::size_t spec_start = line.find_first_not_of(" \t", space);
    entry.design = line.substr(spec_start);
    if (entry.kind != "sim" && entry.kind != "lint") {
      throw std::invalid_argument(
          path + ": line " + std::to_string(line_number) + ": kind '" +
          entry.kind + "' must be sim or lint");
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    throw std::invalid_argument(path + ": corpus file has no entries");
  }
  return entries;
}

/// The replayable request corpus, fixed seeds/options, so cycle 2 onward
/// replays byte-identical requests.
std::vector<std::string> build_corpus(const std::vector<CorpusEntry>& entries,
                                      const CliOptions& options) {
  std::vector<std::string> corpus;
  for (const CorpusEntry& entry : entries) {
    std::string request = "{\"op\":\"job\",\"kind\":\"" + entry.kind + "\"";
    request += ",\"design\":" + serve::json::quote(entry.design);
    if (entry.kind == "sim") {
      request += ",\"method\":\"nrm\"";
      request += ",\"seed\":" + std::to_string(options.seed);
      request += ",\"t_end\":" + serve::json::number_to_string(options.t_end);
      request += ",\"omega\":" + serve::json::number_to_string(options.omega);
    } else {
      request += ",\"opt\":1";
    }
    request += '}';
    corpus.push_back(std::move(request));
  }
  return corpus;
}

struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overload = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_ms;
};

/// Resolves `--designs @catalog`: asks the server for its smoke catalog
/// over the wire so the corpus can be discovered without consulting the
/// local registry. Throws on transport failure or a malformed response.
std::vector<std::string> fetch_catalog_designs(const CliOptions& options) {
  serve::Client client(serve::connect_with_retry(
      options.host, static_cast<std::uint16_t>(options.port)));
  const serve::json::Value response = client.request(R"({"op":"catalog"})");
  if (response.get_string("status", "") != "ok") {
    throw std::runtime_error("catalog op failed: " + response.dump());
  }
  const serve::json::Value* smoke = response.find("smoke");
  if (smoke == nullptr ||
      smoke->type() != serve::json::Value::Type::kArray) {
    throw std::runtime_error("catalog response has no smoke array");
  }
  std::vector<std::string> designs;
  designs.reserve(smoke->as_array().size());
  for (const serve::json::Value& spec : smoke->as_array()) {
    designs.push_back(spec.as_string());
  }
  if (designs.empty()) {
    throw std::runtime_error("catalog smoke list is empty");
  }
  return designs;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_cli(argc, argv, cli)) return 2;

  // Assemble the corpus entries (from --corpus or the designs x kinds
  // grid), then validate and canonicalize every spec through the registry
  // before a single request leaves: a typo'd design is bad usage here, not
  // a stream of server-side error responses.
  if (cli.designs.size() == 1 && cli.designs[0] == "@catalog") {
    try {
      cli.designs = fetch_catalog_designs(cli);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "mrsc_loadgen: %s\n", error.what());
      return 1;
    }
  }

  std::vector<CorpusEntry> entries;
  if (!cli.corpus_file.empty()) {
    try {
      entries = load_corpus_file(cli.corpus_file);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "mrsc_loadgen: %s\n", error.what());
      return 2;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "mrsc_loadgen: %s\n", error.what());
      return 1;
    }
  } else {
    for (const std::string& design : cli.designs) {
      for (const std::string& kind : cli.kinds) {
        entries.push_back({kind, design});
      }
    }
  }
  for (CorpusEntry& entry : entries) {
    try {
      entry.design =
          scenario::ScenarioRegistry::global().canonicalize(entry.design);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "mrsc_loadgen: %s\n", error.what());
      return 2;
    }
  }

  const std::vector<std::string> corpus = build_corpus(entries, cli);
  const auto total_requests = static_cast<std::uint64_t>(
      std::floor(cli.rate * cli.duration));
  if (total_requests == 0) {
    std::fprintf(stderr,
                 "mrsc_loadgen: rate x duration yields zero requests\n");
    return 2;
  }

  std::atomic<std::uint64_t> next_index{0};
  std::mutex tally_mutex;
  Tally tally;
  const Clock::time_point start = Clock::now();

  auto worker = [&] {
    serve::json::Value parsed;
    Tally local;
    try {
      serve::Client client(serve::connect_with_retry(
          cli.host, static_cast<std::uint16_t>(cli.port)));
      while (true) {
        const std::uint64_t i = next_index.fetch_add(1);
        if (i >= total_requests) break;
        // Open-loop pacing: request i is *due* at start + i/rate no matter
        // what; a late pickup is measured, not skipped.
        const Clock::time_point scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / cli.rate));
        std::this_thread::sleep_until(scheduled);
        const std::string& request = corpus[i % corpus.size()];
        ++local.sent;
        const std::string response = client.request_raw(request);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      scheduled)
                .count();
        local.latencies_ms.push_back(latency_ms);
        parsed = serve::json::parse(response);
        const std::string status = parsed.get_string("status", "");
        if (status == "ok") {
          ++local.ok;
        } else if (status == "rejected") {
          ++local.overload;
        } else {
          ++local.errors;
        }
      }
    } catch (const std::exception& error) {
      // Transport/parse failure: this connection is done; count one error
      // (the request that died) and surface the reason once.
      ++local.errors;
      std::fprintf(stderr, "mrsc_loadgen: connection failed: %s\n",
                   error.what());
    }
    std::lock_guard lock(tally_mutex);
    tally.sent += local.sent;
    tally.ok += local.ok;
    tally.overload += local.overload;
    tally.errors += local.errors;
    tally.latencies_ms.insert(tally.latencies_ms.end(),
                              local.latencies_ms.begin(),
                              local.latencies_ms.end());
  };

  std::vector<std::thread> threads;
  threads.reserve(cli.connections);
  for (std::size_t c = 0; c < cli.connections; ++c) {
    threads.emplace_back(worker);
  }
  for (std::thread& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Pull the server's stats payload so the report carries queue depth,
  // cache hit/miss counters, and server-side latency histograms.
  std::string server_stats = "null";
  try {
    serve::Client client(serve::connect_with_retry(
        cli.host, static_cast<std::uint16_t>(cli.port)));
    server_stats = client.request_raw(R"({"op":"stats"})");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrsc_loadgen: stats fetch failed: %s\n",
                 error.what());
  }

  std::vector<double>& lat = tally.latencies_ms;
  std::sort(lat.begin(), lat.end());
  const double mean =
      lat.empty() ? 0.0
                  : std::accumulate(lat.begin(), lat.end(), 0.0) /
                        static_cast<double>(lat.size());
  const double p50 = percentile(lat, 0.50);
  const double p90 = percentile(lat, 0.90);
  const double p99 = percentile(lat, 0.99);
  const double achieved =
      wall > 0.0 ? static_cast<double>(tally.sent) / wall : 0.0;

  std::printf(
      "loadgen: %llu requests over %.2fs (target %.1f rps, achieved %.1f "
      "rps) on %zu connection(s)\n"
      "         %llu ok, %llu overload-rejected, %llu errors\n"
      "         latency p50 %.3fms p90 %.3fms p99 %.3fms mean %.3fms "
      "(open-loop, from scheduled start)\n",
      static_cast<unsigned long long>(tally.sent), wall, cli.rate, achieved,
      cli.connections, static_cast<unsigned long long>(tally.ok),
      static_cast<unsigned long long>(tally.overload),
      static_cast<unsigned long long>(tally.errors), p50, p90, p99, mean);

  if (!cli.json.empty()) {
    using serve::json::number_to_string;
    std::string json = "{\n";
    json += "  \"rate_target\": " + number_to_string(cli.rate) + ",\n";
    json += "  \"rate_achieved\": " + number_to_string(achieved) + ",\n";
    json += "  \"duration_seconds\": " + number_to_string(wall) + ",\n";
    json += "  \"connections\": " + std::to_string(cli.connections) + ",\n";
    json += "  \"corpus_size\": " + std::to_string(corpus.size()) + ",\n";
    json += "  \"requests\": " + std::to_string(tally.sent) + ",\n";
    json += "  \"ok\": " + std::to_string(tally.ok) + ",\n";
    json += "  \"overload\": " + std::to_string(tally.overload) + ",\n";
    json += "  \"errors\": " + std::to_string(tally.errors) + ",\n";
    json += "  \"latency_ms\": {";
    json += "\"p50\": " + number_to_string(p50);
    json += ", \"p90\": " + number_to_string(p90);
    json += ", \"p99\": " + number_to_string(p99);
    json += ", \"mean\": " + number_to_string(mean);
    json += ", \"max\": " + number_to_string(lat.empty() ? 0.0 : lat.back());
    json += "},\n";
    json += "  \"server\": " + server_stats + "\n";
    json += "}\n";
    if (cli.json == "-") {
      std::printf("%s", json.c_str());
    } else {
      std::ofstream out(cli.json);
      if (!out) {
        std::fprintf(stderr, "mrsc_loadgen: cannot write %s\n",
                     cli.json.c_str());
        return 1;
      }
      out << json;
      std::printf("report written to %s\n", cli.json.c_str());
    }
  }

  return tally.errors == 0 && tally.overload == 0 && tally.sent > 0 ? 0 : 1;
}
