// Per-pass compile observability.
//
// Every pass run through the PassManager records how it changed the network
// (species/reaction deltas), how long it took, and any human-readable notes
// ("merged 4 duplicate reactions"). The aggregate CompileReport is what
// `mrsc_compile --json` exports and what `mrsc_sim --opt` / `mrsc_batch
// --opt` print, so the cost and the payoff of the pipeline stay visible.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::compile {

/// What one pass did to the network.
struct PassStats {
  std::string name;
  std::size_t species_before = 0;
  std::size_t species_after = 0;
  std::size_t reactions_before = 0;
  std::size_t reactions_after = 0;
  double wall_seconds = 0.0;
  bool changed = false;
  std::vector<std::string> notes;
};

/// The full story of one compile: network stats before and after the
/// pipeline, total wall time split into lowering (front-end emission) and
/// passes, and the per-pass breakdown.
struct CompileReport {
  std::string design;  // optional: name of the compiled design/file
  core::NetworkStats before;
  core::NetworkStats after;
  double lowering_seconds = 0.0;
  double pass_seconds = 0.0;
  std::vector<PassStats> passes;

  /// Serializes the report as JSON (self-contained, no library).
  [[nodiscard]] std::string to_json() const;

  /// Renders a fixed-width per-pass table for terminal output.
  [[nodiscard]] std::string to_table() const;
};

}  // namespace mrsc::compile
