#include "compile/compose.hpp"

#include <stdexcept>

namespace mrsc::compile {

namespace {
using core::Reaction;
using core::ReactionId;
using core::ReactionNetwork;
using core::SpeciesId;
using core::Term;
}  // namespace

std::vector<SpeciesId> merge_network(ReactionNetwork& target,
                                     const ReactionNetwork& source,
                                     const std::string& prefix) {
  std::vector<SpeciesId> map;
  map.reserve(source.species_count());
  for (std::size_t i = 0; i < source.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    map.push_back(target.add_species(prefix + source.species_name(id),
                                     source.initial(id)));
  }
  auto remap = [&](const std::vector<Term>& terms) {
    std::vector<Term> out;
    out.reserve(terms.size());
    for (const Term& t : terms) {
      out.push_back(Term{map[t.species.index()], t.stoich});
    }
    return out;
  };
  for (const Reaction& r : source.reactions()) {
    const ReactionId id = target.add(remap(r.reactants()),
                                     remap(r.products()), r.category(),
                                     r.custom_rate(), r.label());
    target.reaction_mutable(id).set_rate_multiplier(r.rate_multiplier());
  }
  return map;
}

std::optional<std::size_t> Composition::layer_of(SpeciesId id) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const ComposedLayer& layer = layers[i];
    if (id.index() >= layer.first_species &&
        id.index() < layer.first_species + layer.species_count) {
      return i;
    }
  }
  return std::nullopt;
}

std::size_t CascadeComposer::add_layer(const ReactionNetwork& source,
                                       const std::string& prefix,
                                       std::vector<SpeciesId>* id_map) {
  ComposedLayer layer;
  layer.prefix = prefix;
  layer.first_species = target_.species_count();
  std::vector<SpeciesId> map = merge_network(target_, source, prefix);
  layer.species_count = target_.species_count() - layer.first_species;
  composition_.layers.push_back(std::move(layer));
  if (id_map != nullptr) *id_map = std::move(map);
  return composition_.layers.size() - 1;
}

ReactionId CascadeComposer::wire(SpeciesId upstream, SpeciesId downstream,
                                 const std::string& label) {
  const auto from = composition_.layer_of(upstream);
  const auto to = composition_.layer_of(downstream);
  if (!from || !to) {
    throw std::invalid_argument(
        "CascadeComposer::wire: species outside every layer");
  }
  if (*from == *to) {
    throw std::invalid_argument(
        "CascadeComposer::wire: both endpoints in layer '" +
        composition_.layers[*from].prefix + "'");
  }
  const ReactionId reaction =
      target_.add({{upstream, 1}}, {{downstream, 1}},
                  core::RateCategory::kFast, 0.0, label);
  composition_.interfaces.push_back(
      InterfaceBinding{*from, *to, upstream, downstream, reaction});
  return reaction;
}

void CascadeComposer::mark_terminal(SpeciesId id) {
  composition_.terminals.push_back(id);
}

}  // namespace mrsc::compile
