#include "compile/compose.hpp"

namespace mrsc::compile {

namespace {
using core::Reaction;
using core::ReactionId;
using core::ReactionNetwork;
using core::SpeciesId;
using core::Term;
}  // namespace

std::vector<SpeciesId> merge_network(ReactionNetwork& target,
                                     const ReactionNetwork& source,
                                     const std::string& prefix) {
  std::vector<SpeciesId> map;
  map.reserve(source.species_count());
  for (std::size_t i = 0; i < source.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    map.push_back(target.add_species(prefix + source.species_name(id),
                                     source.initial(id)));
  }
  auto remap = [&](const std::vector<Term>& terms) {
    std::vector<Term> out;
    out.reserve(terms.size());
    for (const Term& t : terms) {
      out.push_back(Term{map[t.species.index()], t.stoich});
    }
    return out;
  };
  for (const Reaction& r : source.reactions()) {
    const ReactionId id = target.add(remap(r.reactants()),
                                     remap(r.products()), r.category(),
                                     r.custom_rate(), r.label());
    target.reaction_mutable(id).set_rate_multiplier(r.rate_multiplier());
  }
  return map;
}

}  // namespace mrsc::compile
