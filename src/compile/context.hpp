// Shared lowering context for every circuit front-end.
//
// sync::CircuitBuilder, async::compile_async, fsm::build_fsm, and the dsp
// counter/filter factories all target the same handful of reaction shapes:
// clock-phase-gated slow transfers, register color-triple hops sharpened by
// dimer positive feedback, un-gated fast combinational steps, absence
// indicator generation/absorption, and pairwise annihilation. The
// LoweringContext owns those emission helpers once, tags every emitted
// reaction with its semantic role, collects the design's root species
// (ports, clock phases, register state), and hands the finished network to
// the PassManager in finalize().
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "compile/passes.hpp"
#include "core/network.hpp"

namespace mrsc::compile {

// PortRole lives in passes.hpp (next to DesignInfo, which stores it); it is
// re-exported here by the include above for the front-ends that spell it
// compile::PortRole.

/// The three phase-colored copies of one register.
struct ColorTriple {
  core::SpeciesId red;
  core::SpeciesId green;
  core::SpeciesId blue;
};

/// What finalize() did to the network. Front-ends use operator() to remap
/// the species ids in their returned handles; a handle that maps to
/// SpeciesId::invalid() was eliminated (e.g. an assume-zero input cone).
struct FinalizeResult {
  bool optimized = false;
  std::vector<core::SpeciesId> remap;  // original id -> final id

  [[nodiscard]] core::SpeciesId operator()(core::SpeciesId id) const {
    if (!optimized || id == core::SpeciesId::invalid()) return id;
    return remap[id.index()];
  }
  [[nodiscard]] bool removed(core::SpeciesId id) const {
    return (*this)(id) == core::SpeciesId::invalid();
  }
};

class LoweringContext {
 public:
  /// Binds to `network`; reactions already present are left untouched by
  /// every pass (their species are treated as roots).
  LoweringContext(core::ReactionNetwork& network, std::string prefix);

  [[nodiscard]] core::ReactionNetwork& network() { return network_; }
  [[nodiscard]] const std::string& prefix() const { return prefix_; }

  // --- species ---------------------------------------------------------

  core::SpeciesId species(const std::string& name, double initial = 0.0);

  /// Creates `<prefix>_R_<name>`, `<prefix>_G_<name>`, `<prefix>_B_<name>`
  /// in that order; the red copy holds the register's initial value.
  ColorTriple color_triple(const std::string& name, double initial_red = 0.0);

  /// Marks a species as part of the design's interface: it survives every
  /// pass. kClock roots additionally serve as the legal gates for slow
  /// transfers in the validation pass.
  void declare_root(core::SpeciesId id, PortRole role);

  // --- emission helpers ------------------------------------------------

  /// Slow catalyzed transfer `from + gate -> to + gate` (gate appended, as
  /// modules::transfer emits it).
  void gated_transfer(core::SpeciesId from, core::SpeciesId to,
                      core::SpeciesId gate, const std::string& label);

  /// Slow catalyzed transfer `gate + from -> gate + to` (gate leading, the
  /// release idiom used by the async heartbeat).
  void released_transfer(core::SpeciesId gate, core::SpeciesId from,
                         core::SpeciesId to, const std::string& label);

  /// Fast un-gated transfer `from -> to`.
  void fast_transfer(core::SpeciesId from, core::SpeciesId to,
                     const std::string& label);

  /// Slow phase-gated writeback `gate + primed -> gate + slave`.
  void writeback(core::SpeciesId gate, core::SpeciesId primed,
                 core::SpeciesId slave, const std::string& label);

  /// Slow phase-gated drain `gate + victim -> gate`.
  void gated_drain(core::SpeciesId gate, core::SpeciesId victim,
                   const std::string& label);

  /// Fast pairwise annihilation `a + b -> (nothing)`.
  void annihilation(core::SpeciesId a, core::SpeciesId b,
                    const std::string& label);

  /// Absence indicator: zero-order generator `-> ind` (slow, rate scaled by
  /// `gen_multiplier`) plus one fast absorption `ind + m -> m` per member.
  /// Labels are `<label_prefix>.gen` / `<label_prefix>.absorb`.
  void indicator(core::SpeciesId ind,
                 std::span<const core::SpeciesId> members,
                 double gen_multiplier, const std::string& label_prefix);

  /// One extra fast absorption `ind + member -> member` for a species
  /// created after the indicator block (e.g. scale intermediates).
  void indicator_absorb(core::SpeciesId ind, core::SpeciesId member,
                        const std::string& label);

  /// Gated hop `gate + from -> to` (slow, seed rate scaled by
  /// `seed_multiplier`) sharpened by dimer positive feedback: a dimer
  /// species `dimer_name` with dimerize / undimerize / feedback reactions.
  /// Labels are `<label_prefix>.seed` / `.dimerize` / `.undimerize` /
  /// `.feedback`.
  void sharpened_hop(core::SpeciesId from, core::SpeciesId to,
                     core::SpeciesId gate, const std::string& label_prefix,
                     const std::string& dimer_name,
                     double seed_multiplier = 1.0, bool feedback = true);

  /// Tags every reaction emitted since the last helper call (e.g. by a
  /// modules:: combinational emitter invoked directly on network()).
  void tag_pending(ReactionTag tag);

  // --- finalize --------------------------------------------------------

  /// Runs the pass pipeline selected by `options`: validation over the
  /// tagged emission range, then (at kO1) the exact shrinking passes.
  /// `lowering_seconds` is recorded into options.report when provided.
  FinalizeResult finalize(const CompileOptions& options,
                          double lowering_seconds = 0.0);

 private:
  core::ReactionNetwork& network_;
  std::string prefix_;
  std::size_t first_species_ = 0;
  std::size_t first_reaction_ = 0;
  std::vector<ReactionTag> tags_;
  std::vector<std::pair<core::SpeciesId, PortRole>> roots_;
};

}  // namespace mrsc::compile
