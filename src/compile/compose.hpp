// Network composition.
//
// Merging one reaction network into another under a species-name prefix,
// so independently compiled designs can share one solution — the molecular
// analogue of design reuse. The analysis companions (untouched_species,
// unreachable_species) live in passes.hpp with the rest of the pass
// framework.
#pragma once

#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::compile {

/// Appends a copy of `source` into `target`. Every species of `source` is
/// created in `target` as `prefix + name` (throws if that collides with an
/// existing species); initial conditions, reaction categories, custom
/// rates, per-reaction multipliers, and labels are preserved. The target's
/// rate policy is left untouched. Returns, for each source species index,
/// the corresponding id in `target`.
std::vector<core::SpeciesId> merge_network(core::ReactionNetwork& target,
                                           const core::ReactionNetwork& source,
                                           const std::string& prefix);

}  // namespace mrsc::compile
