// Network composition.
//
// Merging one reaction network into another under a species-name prefix,
// so independently compiled designs can share one solution — the molecular
// analogue of design reuse. The analysis companions (untouched_species,
// unreachable_species) live in passes.hpp with the rest of the pass
// framework.
//
// `CascadeComposer` layers merges into a structured composition: it records
// which species belong to which sub-design and which reactions were
// deliberately emitted as inter-layer channels. That record is what the
// static analyzer's ISS composition check consumes — the structural
// sufficient conditions for input-to-state stability of a cascade
// (arXiv 2506.12056, 2512.07116) are conditions *per interface*, so the
// composition must know where the interfaces are.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::compile {

/// Appends a copy of `source` into `target`. Every species of `source` is
/// created in `target` as `prefix + name` (throws if that collides with an
/// existing species); initial conditions, reaction categories, custom
/// rates, per-reaction multipliers, and labels are preserved. The target's
/// rate policy is left untouched. Returns, for each source species index,
/// the corresponding id in `target`.
std::vector<core::SpeciesId> merge_network(core::ReactionNetwork& target,
                                           const core::ReactionNetwork& source,
                                           const std::string& prefix);

/// One merged sub-design: its species occupy the contiguous target id range
/// [first_species, first_species + species_count).
struct ComposedLayer {
  std::string prefix;
  std::size_t first_species = 0;
  std::size_t species_count = 0;
};

/// A declared inter-layer channel: `upstream` is moved into `downstream` by
/// the fast unit-stoichiometry transfer `reaction`.
struct InterfaceBinding {
  std::size_t from_layer = 0;
  std::size_t to_layer = 0;
  core::SpeciesId upstream;
  core::SpeciesId downstream;
  core::ReactionId reaction;
};

/// The full composition record handed to the ISS check.
struct Composition {
  std::vector<ComposedLayer> layers;
  std::vector<InterfaceBinding> interfaces;
  /// Species the surrounding harness samples-and-clears (final output
  /// ports): exempt from the dissipativity condition of the ISS check,
  /// because their outflow is external.
  std::vector<core::SpeciesId> terminals;

  /// Index of the layer owning `id`, or nullopt for species created outside
  /// any add_layer call.
  [[nodiscard]] std::optional<std::size_t> layer_of(core::SpeciesId id) const;
};

/// Builds a layered composition on top of `merge_network`, recording layer
/// membership and interface wiring as it goes.
class CascadeComposer {
 public:
  explicit CascadeComposer(core::ReactionNetwork& target) : target_(target) {}

  /// Merges `source` under `prefix` and records it as a new layer; returns
  /// the layer index. When `id_map` is non-null it receives the source-id ->
  /// target-id map (same as merge_network returns).
  std::size_t add_layer(const core::ReactionNetwork& source,
                        const std::string& prefix,
                        std::vector<core::SpeciesId>* id_map = nullptr);

  /// Declares a channel from `upstream` (a species of one layer) into
  /// `downstream` (a species of a *different* layer) and emits the fast
  /// transfer `upstream -> downstream` realizing it. Throws
  /// `std::invalid_argument` when either species is outside any layer or
  /// both live in the same layer.
  core::ReactionId wire(core::SpeciesId upstream, core::SpeciesId downstream,
                        const std::string& label = {});

  /// Marks a species as externally sampled (see Composition::terminals).
  void mark_terminal(core::SpeciesId id);

  [[nodiscard]] const Composition& composition() const { return composition_; }

 private:
  core::ReactionNetwork& target_;
  Composition composition_;
};

}  // namespace mrsc::compile
