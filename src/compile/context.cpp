#include "compile/context.hpp"

#include "modules/combinational.hpp"

namespace mrsc::compile {

namespace {
using core::RateCategory;
using core::SpeciesId;
}  // namespace

LoweringContext::LoweringContext(core::ReactionNetwork& network,
                                 std::string prefix)
    : network_(network),
      prefix_(std::move(prefix)),
      first_species_(network.species_count()),
      first_reaction_(network.reaction_count()) {}

SpeciesId LoweringContext::species(const std::string& name, double initial) {
  return network_.add_species(name, initial);
}

ColorTriple LoweringContext::color_triple(const std::string& name,
                                          double initial_red) {
  ColorTriple triple;
  triple.red = species(prefix_ + "_R_" + name, initial_red);
  triple.green = species(prefix_ + "_G_" + name);
  triple.blue = species(prefix_ + "_B_" + name);
  return triple;
}

void LoweringContext::declare_root(SpeciesId id, PortRole role) {
  roots_.emplace_back(id, role);
}

void LoweringContext::tag_pending(ReactionTag tag) {
  const std::size_t emitted = network_.reaction_count() - first_reaction_;
  tags_.resize(emitted, tag);
}

void LoweringContext::gated_transfer(SpeciesId from, SpeciesId to,
                                     SpeciesId gate,
                                     const std::string& label) {
  modules::EmitOptions options;
  options.category = RateCategory::kSlow;
  options.catalyst = gate;
  options.label = label;
  modules::transfer(network_, from, to, options);
  tag_pending(ReactionTag::kGatedTransfer);
}

void LoweringContext::released_transfer(SpeciesId gate, SpeciesId from,
                                        SpeciesId to,
                                        const std::string& label) {
  network_.add({{gate, 1}, {from, 1}}, {{gate, 1}, {to, 1}},
               RateCategory::kSlow, 0.0, label);
  tag_pending(ReactionTag::kGatedTransfer);
}

void LoweringContext::fast_transfer(SpeciesId from, SpeciesId to,
                                    const std::string& label) {
  modules::EmitOptions options;
  options.category = RateCategory::kFast;
  options.label = label;
  modules::transfer(network_, from, to, options);
  tag_pending(ReactionTag::kFastOp);
}

void LoweringContext::writeback(SpeciesId gate, SpeciesId primed,
                                SpeciesId slave, const std::string& label) {
  network_.add({{gate, 1}, {primed, 1}}, {{gate, 1}, {slave, 1}},
               RateCategory::kSlow, 0.0, label);
  tag_pending(ReactionTag::kWriteback);
}

void LoweringContext::gated_drain(SpeciesId gate, SpeciesId victim,
                                  const std::string& label) {
  network_.add({{gate, 1}, {victim, 1}}, {{gate, 1}}, RateCategory::kSlow,
               0.0, label);
  tag_pending(ReactionTag::kDrain);
}

void LoweringContext::annihilation(SpeciesId a, SpeciesId b,
                                   const std::string& label) {
  network_.add({{a, 1}, {b, 1}}, {}, RateCategory::kFast, 0.0, label);
  tag_pending(ReactionTag::kAnnihilation);
}

void LoweringContext::indicator(SpeciesId ind,
                                std::span<const SpeciesId> members,
                                double gen_multiplier,
                                const std::string& label_prefix) {
  const core::ReactionId gen = network_.add(
      {}, {{ind, 1}}, RateCategory::kSlow, 0.0, label_prefix + ".gen");
  network_.reaction_mutable(gen).set_rate_multiplier(gen_multiplier);
  for (const SpeciesId member : members) {
    network_.add({{ind, 1}, {member, 1}}, {{member, 1}}, RateCategory::kFast,
                 0.0, label_prefix + ".absorb");
  }
  tag_pending(ReactionTag::kIndicator);
}

void LoweringContext::indicator_absorb(SpeciesId ind, SpeciesId member,
                                       const std::string& label) {
  network_.add({{ind, 1}, {member, 1}}, {{member, 1}}, RateCategory::kFast,
               0.0, label);
  tag_pending(ReactionTag::kIndicator);
}

void LoweringContext::sharpened_hop(SpeciesId from, SpeciesId to,
                                    SpeciesId gate,
                                    const std::string& label_prefix,
                                    const std::string& dimer_name,
                                    double seed_multiplier, bool feedback) {
  const core::ReactionId seed =
      network_.add({{gate, 1}, {from, 1}}, {{to, 1}}, RateCategory::kSlow,
                   0.0, label_prefix + ".seed");
  network_.reaction_mutable(seed).set_rate_multiplier(seed_multiplier);
  if (feedback) {
    const SpeciesId dimer = species(dimer_name);
    network_.add({{to, 2}}, {{dimer, 1}}, RateCategory::kSlow, 0.0,
                 label_prefix + ".dimerize");
    network_.add({{dimer, 1}}, {{to, 2}}, RateCategory::kFast, 0.0,
                 label_prefix + ".undimerize");
    network_.add({{dimer, 1}, {from, 1}}, {{to, 3}}, RateCategory::kFast,
                 0.0, label_prefix + ".feedback");
  }
  tag_pending(ReactionTag::kClockwork);
}

FinalizeResult LoweringContext::finalize(const CompileOptions& options,
                                         double lowering_seconds) {
  tag_pending(ReactionTag::kUntagged);

  PipelineInputs inputs;
  // Species that predate this context belong to whatever the caller already
  // lowered into the network; treat them all as roots so the passes never
  // disturb a sibling design.
  for (std::size_t i = 0; i < first_species_; ++i) {
    inputs.roots.push_back(
        SpeciesId{static_cast<SpeciesId::underlying_type>(i)});
  }
  for (const auto& [id, role] : roots_) {
    inputs.roots.push_back(id);
    if (role == PortRole::kClock) inputs.clock_roots.push_back(id);
  }
  inputs.tags = tags_;
  inputs.first_tagged = first_reaction_;

  if (options.report) {
    options.report->lowering_seconds = lowering_seconds;
    if (options.report->design.empty()) options.report->design = prefix_;
  }

  FinalizeResult result;
  const std::size_t reactions_before = network_.reaction_count();
  if (options.validate || options.opt != OptLevel::kO0 || options.report) {
    const PassManager manager =
        PassManager::standard(options.opt, options.validate);
    result.remap = manager.run(network_, inputs, options.report);
    result.optimized = options.opt >= OptLevel::kO1;
  }

  if (options.design_info != nullptr) {
    DesignInfo& info = *options.design_info;
    info.roots.clear();
    for (const auto& [id, role] : roots_) {
      const core::SpeciesId mapped = result(id);
      if (mapped != core::SpeciesId::invalid()) {
        info.roots.emplace_back(mapped, role);
      }
    }
    // canonicalize rebuilds reactions in place (same count, same order), so
    // tags survive it; coalesce/dead-species-elim drop reactions and
    // invalidate the range.
    info.tags_valid = network_.reaction_count() == reactions_before;
    info.tags = info.tags_valid ? tags_ : std::vector<ReactionTag>{};
    info.first_tagged = first_reaction_;
  }
  return result;
}

}  // namespace mrsc::compile
