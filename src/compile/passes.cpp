#include "compile/passes.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace mrsc::compile {

namespace {

using core::Reaction;
using core::ReactionId;
using core::ReactionNetwork;
using core::SpeciesId;
using core::Term;

SpeciesId species_id(std::size_t index) {
  return SpeciesId{static_cast<SpeciesId::underlying_type>(index)};
}

/// Canonical form of one reaction side: duplicate terms merged, sorted by
/// species id. The mass-action propensity is invariant under both.
std::vector<Term> canonical_side(const std::vector<Term>& terms) {
  std::vector<Term> out;
  for (const Term& t : terms) {
    auto it = std::find_if(out.begin(), out.end(), [&](const Term& have) {
      return have.species == t.species;
    });
    if (it == out.end()) {
      out.push_back(t);
    } else {
      it->stoich += t.stoich;
    }
  }
  std::sort(out.begin(), out.end(), [](const Term& a, const Term& b) {
    return a.species.index() < b.species.index();
  });
  return out;
}

/// Rebuilds `network` with the same species but replacement reactions.
/// Each entry of `reactions` carries the full reaction payload.
struct ReactionSpec {
  std::vector<Term> reactants;
  std::vector<Term> products;
  core::RateCategory category;
  double custom_rate;
  double multiplier;
  std::string label;
};

void rebuild_reactions(ReactionNetwork& network,
                       std::vector<ReactionSpec> reactions) {
  ReactionNetwork rebuilt;
  rebuilt.set_rate_policy(network.rate_policy());
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    const SpeciesId id = species_id(i);
    rebuilt.add_species(network.species_name(id), network.initial(id));
  }
  for (ReactionSpec& spec : reactions) {
    const ReactionId id =
        rebuilt.add(std::move(spec.reactants), std::move(spec.products),
                    spec.category, spec.custom_rate, std::move(spec.label));
    rebuilt.reaction_mutable(id).set_rate_multiplier(spec.multiplier);
  }
  network = std::move(rebuilt);
}

/// Stoichiometry of `species` within a term list (0 when absent).
std::uint32_t stoich_of(const std::vector<Term>& terms, SpeciesId species) {
  for (const Term& t : terms) {
    if (t.species == species) return t.stoich;
  }
  return 0;
}

bool is_catalyst_in(const Reaction& r, SpeciesId species) {
  const std::uint32_t consumed = stoich_of(r.reactants(), species);
  return consumed > 0 && consumed == stoich_of(r.products(), species);
}

// --- validate ---------------------------------------------------------------

class ValidatePass final : public Pass {
 public:
  const char* name() const override { return "validate"; }

  bool run(PassContext& ctx) const override {
    if (ctx.tags.empty()) {
      ctx.notes.push_back("no emission tags: raw network, lint skipped");
      return false;
    }
    std::vector<std::string> violations;
    auto describe = [&](std::size_t index) {
      const ReactionId id{static_cast<ReactionId::underlying_type>(index)};
      const Reaction& r = ctx.network.reaction(id);
      std::string text = "reaction #" + std::to_string(index);
      if (!r.label().empty()) text += " [" + r.label() + "]";
      return text;
    };
    for (std::size_t i = 0; i < ctx.tags.size(); ++i) {
      const std::size_t index = ctx.first_tagged + i;
      const ReactionId id{static_cast<ReactionId::underlying_type>(index)};
      const Reaction& r = ctx.network.reaction(id);

      // Catalyst balance: a species appearing on both sides must appear
      // with equal stoichiometry — lowered designs never emit reactions
      // that covertly create or destroy their own catalysts.
      for (const Term& t : r.reactants()) {
        const std::uint32_t produced = stoich_of(r.products(), t.species);
        if (produced > 0 && produced != t.stoich) {
          violations.push_back(
              describe(index) + ": species '" +
              ctx.network.species_name(t.species) +
              "' appears on both sides with unbalanced stoichiometry (" +
              std::to_string(t.stoich) + " -> " + std::to_string(produced) +
              ")");
        }
      }

      switch (ctx.tags[i]) {
        case ReactionTag::kGatedTransfer:
        case ReactionTag::kWriteback:
        case ReactionTag::kDrain: {
          // Every slow transfer must be gated on a clock-phase catalyst so
          // it only proceeds during its assigned phase.
          if (r.category() != core::RateCategory::kSlow) {
            violations.push_back(describe(index) +
                                 ": gated transfer is not slow");
            break;
          }
          bool gated = false;
          for (const SpeciesId clock : ctx.clock_roots) {
            if (is_catalyst_in(r, clock)) {
              gated = true;
              break;
            }
          }
          if (!gated) {
            violations.push_back(
                describe(index) +
                ": slow transfer is not catalyzed by any clock phase");
          }
          break;
        }
        case ReactionTag::kFastOp:
        case ReactionTag::kAnnihilation:
          if (r.category() != core::RateCategory::kFast) {
            violations.push_back(describe(index) +
                                 ": combinational step is not fast");
          }
          break;
        case ReactionTag::kIndicator:
          // Generators are zero-order and slow; absorptions are fast.
          if (r.reactants().empty()) {
            if (r.category() != core::RateCategory::kSlow) {
              violations.push_back(describe(index) +
                                   ": indicator generator is not slow");
            }
          } else if (r.category() != core::RateCategory::kFast) {
            violations.push_back(describe(index) +
                                 ": indicator absorption is not fast");
          }
          break;
        case ReactionTag::kClockwork:
        case ReactionTag::kUntagged:
          break;
      }
    }
    if (!violations.empty()) {
      std::string message = "compile validation failed:";
      for (const std::string& v : violations) message += "\n  " + v;
      throw std::logic_error(message);
    }
    ctx.notes.push_back("checked " + std::to_string(ctx.tags.size()) +
                        " lowered reactions");
    return false;
  }
};

// --- canonicalize -----------------------------------------------------------

class CanonicalizePass final : public Pass {
 public:
  const char* name() const override { return "canonicalize"; }

  bool run(PassContext& ctx) const override {
    std::vector<ReactionSpec> specs;
    specs.reserve(ctx.network.reaction_count());
    std::size_t rewritten = 0;
    for (const Reaction& r : ctx.network.reactions()) {
      ReactionSpec spec{canonical_side(r.reactants()),
                        canonical_side(r.products()), r.category(),
                        r.custom_rate(), r.rate_multiplier(), r.label()};
      if (spec.reactants != r.reactants() || spec.products != r.products()) {
        ++rewritten;
      }
      specs.push_back(std::move(spec));
    }
    if (rewritten == 0) return false;
    rebuild_reactions(ctx.network, std::move(specs));
    ctx.notes.push_back("rewrote " + std::to_string(rewritten) +
                        " reactions into canonical term order");
    return true;
  }
};

// --- coalesce-duplicates ----------------------------------------------------

class CoalesceDuplicatesPass final : public Pass {
 public:
  const char* name() const override { return "coalesce-duplicates"; }

  bool run(PassContext& ctx) const override {
    // Requires canonical term order (the manager runs canonicalize first).
    using SideKey = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
    using Key = std::tuple<int, double, SideKey, SideKey>;
    auto side_key = [](const std::vector<Term>& terms) {
      SideKey key;
      key.reserve(terms.size());
      for (const Term& t : terms) {
        key.emplace_back(t.species.index(), t.stoich);
      }
      return key;
    };
    std::map<Key, std::size_t> first_of;
    std::vector<ReactionSpec> specs;
    std::size_t merged = 0;
    for (const Reaction& r : ctx.network.reactions()) {
      Key key{static_cast<int>(r.category()), r.custom_rate(),
              side_key(canonical_side(r.reactants())),
              side_key(canonical_side(r.products()))};
      const auto [it, inserted] = first_of.emplace(key, specs.size());
      if (inserted) {
        specs.push_back(ReactionSpec{r.reactants(), r.products(),
                                     r.category(), r.custom_rate(),
                                     r.rate_multiplier(), r.label()});
      } else {
        // Identical mass-action term: one reaction with the summed
        // multiplier contributes the same propensity/derivative exactly.
        specs[it->second].multiplier += r.rate_multiplier();
        ++merged;
      }
    }
    if (merged == 0) return false;
    rebuild_reactions(ctx.network, std::move(specs));
    ctx.notes.push_back("merged " + std::to_string(merged) +
                        " duplicate reactions (rate multipliers summed)");
    return true;
  }
};

// --- dead-species-elimination -----------------------------------------------

std::vector<bool> reachable_set(const ReactionNetwork& network,
                                std::span<const SpeciesId> roots) {
  std::vector<bool> reachable(network.species_count(), false);
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    if (network.initial(species_id(i)) != 0.0) reachable[i] = true;
  }
  for (const SpeciesId root : roots) reachable[root.index()] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Reaction& r : network.reactions()) {
      bool fireable = true;
      for (const Term& t : r.reactants()) {
        if (!reachable[t.species.index()]) {
          fireable = false;
          break;
        }
      }
      if (!fireable) continue;
      for (const Term& t : r.products()) {
        if (!reachable[t.species.index()]) {
          reachable[t.species.index()] = true;
          changed = true;
        }
      }
    }
  }
  return reachable;
}

class DeadSpeciesEliminationPass final : public Pass {
 public:
  const char* name() const override { return "dead-species-elim"; }

  bool run(PassContext& ctx) const override {
    const std::vector<bool> reachable = reachable_set(ctx.network, ctx.roots);
    // A reaction with an unreachable reactant has propensity identically
    // zero for all time: removing it (and the species it was keeping in
    // the table) is exact.
    std::vector<bool> live(ctx.network.reaction_count(), true);
    std::size_t dead_reactions = 0;
    std::size_t index = 0;
    for (const Reaction& r : ctx.network.reactions()) {
      for (const Term& t : r.reactants()) {
        if (!reachable[t.species.index()]) {
          live[index] = false;
          ++dead_reactions;
          break;
        }
      }
      ++index;
    }
    std::size_t dead_species = 0;
    for (std::size_t i = 0; i < reachable.size(); ++i) {
      if (!reachable[i]) ++dead_species;
    }
    if (dead_species == 0 && dead_reactions == 0) return false;

    ReactionNetwork rebuilt;
    rebuilt.set_rate_policy(ctx.network.rate_policy());
    std::vector<SpeciesId> to_new(ctx.network.species_count(),
                                  SpeciesId::invalid());
    for (std::size_t i = 0; i < ctx.network.species_count(); ++i) {
      if (!reachable[i]) continue;
      const SpeciesId old = species_id(i);
      to_new[i] = rebuilt.add_species(ctx.network.species_name(old),
                                      ctx.network.initial(old));
    }
    auto remap_terms = [&](const std::vector<Term>& terms) {
      std::vector<Term> out;
      out.reserve(terms.size());
      for (const Term& t : terms) {
        out.push_back(Term{to_new[t.species.index()], t.stoich});
      }
      return out;
    };
    index = 0;
    for (const Reaction& r : ctx.network.reactions()) {
      if (live[index++]) {
        const ReactionId id =
            rebuilt.add(remap_terms(r.reactants()), remap_terms(r.products()),
                        r.category(), r.custom_rate(), r.label());
        rebuilt.reaction_mutable(id).set_rate_multiplier(r.rate_multiplier());
      }
    }
    ctx.network = std::move(rebuilt);
    for (SpeciesId& root : ctx.roots) root = to_new[root.index()];
    for (SpeciesId& mapped : ctx.remap) {
      if (mapped != SpeciesId::invalid()) mapped = to_new[mapped.index()];
    }
    ctx.notes.push_back("removed " + std::to_string(dead_species) +
                        " dead species and " + std::to_string(dead_reactions) +
                        " dead reactions");
    return true;
  }
};

// --- factor-catalysts -------------------------------------------------------

class FactorCatalystsPass final : public Pass {
 public:
  const char* name() const override { return "factor-catalysts"; }

  bool run(PassContext& ctx) const override {
    // Analysis only: report how many reactions each catalyst gates. A large
    // shared group is the candidate set for enzyme-sequestration style
    // factoring; rewriting them would change transient dynamics, so the
    // pass observes and never mutates.
    std::vector<std::size_t> gated(ctx.network.species_count(), 0);
    for (const Reaction& r : ctx.network.reactions()) {
      for (const Term& t : r.reactants()) {
        if (is_catalyst_in(r, t.species)) ++gated[t.species.index()];
      }
    }
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < gated.size(); ++i) {
      if (gated[i] >= 2) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return gated[a] > gated[b];
    });
    const std::size_t top = std::min<std::size_t>(order.size(), 3);
    for (std::size_t i = 0; i < top; ++i) {
      ctx.notes.push_back(
          "catalyst '" + ctx.network.species_name(species_id(order[i])) +
          "' gates " + std::to_string(gated[order[i]]) + " reactions");
    }
    if (order.empty()) ctx.notes.push_back("no shared catalyst groups");
    return false;
  }
};

}  // namespace

std::unique_ptr<Pass> make_validate_pass() {
  return std::make_unique<ValidatePass>();
}
std::unique_ptr<Pass> make_canonicalize_pass() {
  return std::make_unique<CanonicalizePass>();
}
std::unique_ptr<Pass> make_coalesce_duplicates_pass() {
  return std::make_unique<CoalesceDuplicatesPass>();
}
std::unique_ptr<Pass> make_dead_species_elimination_pass() {
  return std::make_unique<DeadSpeciesEliminationPass>();
}
std::unique_ptr<Pass> make_factor_catalysts_pass() {
  return std::make_unique<FactorCatalystsPass>();
}

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager PassManager::standard(OptLevel level, bool validate) {
  PassManager manager;
  if (validate) manager.add(make_validate_pass());
  if (level >= OptLevel::kO1) {
    manager.add(make_canonicalize_pass());
    manager.add(make_coalesce_duplicates_pass());
    manager.add(make_dead_species_elimination_pass());
    manager.add(make_factor_catalysts_pass());
  }
  return manager;
}

std::vector<SpeciesId> PassManager::run(ReactionNetwork& network,
                                        const PipelineInputs& inputs,
                                        CompileReport* report) const {
  std::vector<SpeciesId> remap;
  remap.reserve(network.species_count());
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    remap.push_back(species_id(i));
  }
  std::vector<SpeciesId> roots = inputs.roots;
  if (report) report->before = core::compute_stats(network);
  for (const std::unique_ptr<Pass>& pass : passes_) {
    PassContext ctx{network, roots,        remap,
                    inputs.clock_roots,    inputs.tags,
                    inputs.first_tagged,   {}};
    PassStats stats;
    stats.name = pass->name();
    stats.species_before = network.species_count();
    stats.reactions_before = network.reaction_count();
    const auto start = std::chrono::steady_clock::now();
    stats.changed = pass->run(ctx);
    const auto stop = std::chrono::steady_clock::now();
    stats.wall_seconds =
        std::chrono::duration<double>(stop - start).count();
    stats.species_after = network.species_count();
    stats.reactions_after = network.reaction_count();
    stats.notes = std::move(ctx.notes);
    if (report) {
      report->pass_seconds += stats.wall_seconds;
      report->passes.push_back(std::move(stats));
    }
  }
  if (report) report->after = core::compute_stats(network);
  return remap;
}

OptimizeResult optimize_network(ReactionNetwork& network,
                                std::span<const SpeciesId> roots,
                                OptLevel level) {
  const PassManager manager = PassManager::standard(level, /*validate=*/false);
  PipelineInputs inputs;
  inputs.roots.assign(roots.begin(), roots.end());
  OptimizeResult result;
  result.remap = manager.run(network, inputs, &result.report);
  return result;
}

std::vector<SpeciesId> untouched_species(const ReactionNetwork& network) {
  std::vector<bool> touched(network.species_count(), false);
  for (const Reaction& r : network.reactions()) {
    for (const Term& t : r.reactants()) touched[t.species.index()] = true;
    for (const Term& t : r.products()) touched[t.species.index()] = true;
  }
  std::vector<SpeciesId> out;
  for (std::size_t i = 0; i < touched.size(); ++i) {
    if (!touched[i]) out.push_back(species_id(i));
  }
  return out;
}

std::vector<SpeciesId> unreachable_species(const ReactionNetwork& network,
                                           std::span<const SpeciesId> roots) {
  const std::vector<bool> reachable = reachable_set(network, roots);
  std::vector<SpeciesId> out;
  for (std::size_t i = 0; i < reachable.size(); ++i) {
    if (!reachable[i]) out.push_back(species_id(i));
  }
  return out;
}

}  // namespace mrsc::compile
