#include "compile/report.hpp"

#include <cstdio>

namespace mrsc::compile {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string stats_json(const core::NetworkStats& stats) {
  std::string out = "{";
  out += "\"species\": " + std::to_string(stats.species);
  out += ", \"reactions\": " + std::to_string(stats.reactions);
  out += ", \"slow_reactions\": " + std::to_string(stats.slow_reactions);
  out += ", \"fast_reactions\": " + std::to_string(stats.fast_reactions);
  out += ", \"custom_reactions\": " + std::to_string(stats.custom_reactions);
  out += ", \"max_order\": " + std::to_string(stats.max_order);
  out += ", \"zero_order_sources\": " +
         std::to_string(stats.zero_order_sources);
  out += "}";
  return out;
}

}  // namespace

std::string CompileReport::to_json() const {
  std::string out = "{\n";
  if (!design.empty()) {
    out += "  \"design\": \"" + json_escape(design) + "\",\n";
  }
  out += "  \"before\": " + stats_json(before) + ",\n";
  out += "  \"after\": " + stats_json(after) + ",\n";
  out += "  \"lowering_seconds\": " + format_double(lowering_seconds) + ",\n";
  out += "  \"pass_seconds\": " + format_double(pass_seconds) + ",\n";
  out += "  \"passes\": [\n";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const PassStats& pass = passes[i];
    out += "    {\"name\": \"" + json_escape(pass.name) + "\"";
    out += ", \"species_before\": " + std::to_string(pass.species_before);
    out += ", \"species_after\": " + std::to_string(pass.species_after);
    out += ", \"reactions_before\": " + std::to_string(pass.reactions_before);
    out += ", \"reactions_after\": " + std::to_string(pass.reactions_after);
    out += ", \"wall_seconds\": " + format_double(pass.wall_seconds);
    out += ", \"changed\": ";
    out += pass.changed ? "true" : "false";
    out += ", \"notes\": [";
    for (std::size_t j = 0; j < pass.notes.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + json_escape(pass.notes[j]) + "\"";
    }
    out += "]}";
    out += (i + 1 < passes.size()) ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string CompileReport::to_table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %15s %17s %10s\n", "pass",
                "species", "reactions", "wall");
  out += line;
  for (const PassStats& pass : passes) {
    char species[32];
    char reactions[32];
    std::snprintf(species, sizeof(species), "%zu -> %zu", pass.species_before,
                  pass.species_after);
    std::snprintf(reactions, sizeof(reactions), "%zu -> %zu",
                  pass.reactions_before, pass.reactions_after);
    std::snprintf(line, sizeof(line), "%-28s %15s %17s %9.3fms\n",
                  pass.name.c_str(), species, reactions,
                  pass.wall_seconds * 1e3);
    out += line;
    for (const std::string& note : pass.notes) {
      out += "  - " + note + "\n";
    }
  }
  std::snprintf(line, sizeof(line),
                "total: %zu -> %zu species, %zu -> %zu reactions "
                "(lowering %.3fms, passes %.3fms)\n",
                before.species, after.species, before.reactions,
                after.reactions, lowering_seconds * 1e3, pass_seconds * 1e3);
  out += line;
  return out;
}

}  // namespace mrsc::compile
