// Optimization and validation passes over lowered reaction networks.
//
// The front-ends (sync, async, fsm, dsp) emit reactions through a
// LoweringContext (context.hpp); the PassManager then runs a pipeline of
// passes over the finished network. Passes are exact: they never change the
// deterministic mass-action trajectory of any surviving species, and the
// verify subsystem's optimized-vs-unoptimized oracle holds them to that.
//
// Pass catalogue (docs/COMPILE.md describes each invariant in detail):
//   validate              structural lint over the tagged emission range
//   canonicalize          merge repeated terms per side, sort terms by id
//   coalesce-duplicates   merge identical reactions, summing multipliers
//   dead-species-elim     drop species unreachable from roots/initials
//   factor-catalysts      analysis only: report shared catalyst groups
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "compile/report.hpp"
#include "core/network.hpp"

namespace mrsc::compile {

/// How hard the pipeline tries. kO0 leaves the network byte-identical to
/// what the front-end emitted (validation may still run); kO1 runs every
/// exact network-shrinking pass.
enum class OptLevel : std::uint8_t { kO0 = 0, kO1 = 1 };

/// Semantic role of an emitted reaction; set by the LoweringContext helpers
/// and consumed by the validation pass.
enum class ReactionTag : std::uint8_t {
  kUntagged = 0,
  kClockwork,       // clock/heartbeat internals: hop seeds, dimer sharpening
  kIndicator,       // absence-indicator generation and absorption
  kGatedTransfer,   // slow transfer catalyzed by a clock-phase species
  kFastOp,          // un-gated fast combinational step
  kWriteback,       // slow phase-gated primed-state -> state copy
  kDrain,           // slow phase-gated removal of a consumed wire
  kAnnihilation,    // fast pairwise annihilation (dual-rail normalization)
};

/// Why a species is part of the design's external interface.
enum class PortRole : std::uint8_t { kInput, kOutput, kState, kClock };

/// Interface and emission metadata captured by LoweringContext::finalize for
/// PassManager-adjacent consumers — chiefly the static analyzer in
/// `lint/`, which needs the role of every root and the semantic tag of
/// every lowered reaction. Root ids refer to the *final* network (they are
/// remapped when the pipeline renumbers species; eliminated roots are
/// dropped). `tags[i]` describes reaction `first_tagged + i` and the range
/// is only meaningful while `tags_valid`: the shrinking passes rewrite the
/// reaction table, so after a kO1 pipeline that changed the reaction count
/// the tag range is dropped and tag-indexed checks must be skipped.
struct DesignInfo {
  std::vector<std::pair<core::SpeciesId, PortRole>> roots;
  std::vector<ReactionTag> tags;
  std::size_t first_tagged = 0;
  bool tags_valid = false;
};

/// Options threaded from a front-end `compile()` call into the pipeline.
struct CompileOptions {
  OptLevel opt = OptLevel::kO0;
  /// Run the structural validation pass over the lowered network.
  bool validate = true;
  /// Input ports the caller promises never to drive. They are dropped from
  /// the root set, so dead-species elimination may delete their entire
  /// downstream cone. Ignored at kO0.
  std::vector<std::string> assume_zero_inputs;
  /// When non-null, filled with per-pass statistics.
  CompileReport* report = nullptr;
  /// When non-null, filled with the design's interface roles and emission
  /// tags so the static analyzer can run without re-lowering.
  DesignInfo* design_info = nullptr;
};

/// What the caller of a pipeline knows about the network being optimized.
struct PipelineInputs {
  /// Species that must survive every pass even when nothing provably keeps
  /// them alive: ports, clock phases, register state — the interface the
  /// harness or a composing design drives from outside.
  std::vector<core::SpeciesId> roots;
  /// The subset of roots that act as clock/pacing catalysts; the validation
  /// pass requires every slow gated transfer to be catalyzed by one.
  std::vector<core::SpeciesId> clock_roots;
  /// Tags for the trailing emission range being validated; empty when the
  /// network was not lowered through a LoweringContext (e.g. a parsed .crn
  /// file), in which case validation is skipped. tags[i] describes reaction
  /// `first_tagged + i`.
  std::vector<ReactionTag> tags;
  std::size_t first_tagged = 0;
};

/// Everything a pass may look at or change. `roots` and `remap` are kept
/// consistent by any pass that renumbers species: `remap[i]` maps a species
/// id of the *original* (pre-pipeline) network to its current id, or
/// SpeciesId::invalid() once the species has been eliminated.
struct PassContext {
  core::ReactionNetwork& network;
  std::vector<core::SpeciesId>& roots;
  std::vector<core::SpeciesId>& remap;
  std::span<const core::SpeciesId> clock_roots;
  std::span<const ReactionTag> tags;
  std::size_t first_tagged = 0;
  /// Human-readable observations, collected into the pass report.
  std::vector<std::string> notes;
};

/// A single transformation (or lint) over the network.
class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Returns true when the network changed. Must keep ctx.roots and
  /// ctx.remap consistent if it renumbers species. Validation passes throw
  /// std::logic_error with every violation listed.
  virtual bool run(PassContext& ctx) const = 0;
};

std::unique_ptr<Pass> make_validate_pass();
std::unique_ptr<Pass> make_canonicalize_pass();
std::unique_ptr<Pass> make_coalesce_duplicates_pass();
std::unique_ptr<Pass> make_dead_species_elimination_pass();
std::unique_ptr<Pass> make_factor_catalysts_pass();

/// Runs a pipeline of passes in order, timing each and recording deltas.
class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);

  /// The stock pipeline for an optimization level: validation (if asked)
  /// followed by the exact shrinking passes at kO1.
  [[nodiscard]] static PassManager standard(OptLevel level,
                                            bool validate = true);

  /// Runs every pass. Returns the original-id -> final-id species map
  /// (identity when nothing renumbered). Appends per-pass stats to
  /// `report` when non-null. Validation failures throw std::logic_error
  /// listing every violation.
  std::vector<core::SpeciesId> run(core::ReactionNetwork& network,
                                   const PipelineInputs& inputs,
                                   CompileReport* report = nullptr) const;

  [[nodiscard]] std::size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Result of optimizing a standalone network (no lowering context).
struct OptimizeResult {
  /// Original species id -> optimized id; SpeciesId::invalid() if removed.
  std::vector<core::SpeciesId> remap;
  CompileReport report;
};

/// Convenience wrapper: runs the standard kO1 pipeline (without validation,
/// which needs emission tags) over an arbitrary network. `roots` are
/// species that must survive even if the passes cannot prove them live —
/// typically the design's interface (ports, clock phases, register state).
OptimizeResult optimize_network(core::ReactionNetwork& network,
                                std::span<const core::SpeciesId> roots,
                                OptLevel level = OptLevel::kO1);

// --- Analysis helpers (previously core/transform.hpp) -----------------------

/// Species that appear in no reaction at all (neither side). Such species
/// are frozen at their initial concentration; usually a design bug.
[[nodiscard]] std::vector<core::SpeciesId> untouched_species(
    const core::ReactionNetwork& network);

/// Species that can never hold a nonzero concentration: initial 0, not a
/// root, and not produced by any reaction whose reactants are all
/// reachable. Reactions consuming only such species are dead.
[[nodiscard]] std::vector<core::SpeciesId> unreachable_species(
    const core::ReactionNetwork& network,
    std::span<const core::SpeciesId> roots = {});

}  // namespace mrsc::compile
