// Gate-level digital golden model.
//
// A small synchronous netlist simulator (combinational gates + D flip-flops)
// used as the reference ("known-good hardware") when verifying molecular
// sequential designs: the molecular counter and any FSM built on the sync
// layer are checked cycle-by-cycle against this model. Evaluation is
// event-free: gates are topologically ordered once, then each clock cycle
// evaluates the combinational cone and commits the flip-flops.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"

namespace mrsc::logic {

struct NetTag {};
/// Index of a boolean net (wire) in a Netlist.
using NetId = StrongId<NetTag>;

enum class GateKind : std::uint8_t {
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kBuf,
};

/// Applies a gate function to its inputs (stored as 0/1 bytes; plain
/// std::vector<bool> lacks contiguous storage for spans).
[[nodiscard]] bool evaluate_gate(GateKind kind,
                                 std::span<const std::uint8_t> inputs);

class Netlist {
 public:
  /// Declares a primary input.
  NetId add_input(const std::string& name);

  /// Declares a gate driving a fresh net.
  NetId add_gate(GateKind kind, std::vector<NetId> inputs,
                 const std::string& name = {});

  /// Declares a D flip-flop: `q` is a fresh net holding the registered value;
  /// the data input is connected later via `connect_flip_flop` (so feedback
  /// loops can be expressed).
  NetId add_flip_flop(bool initial, const std::string& name = {});

  /// Connects flip-flop `q` (returned by add_flip_flop) to its data input.
  void connect_flip_flop(NetId q, NetId d);

  /// Marks a net as a primary output (for `outputs()` convenience).
  void mark_output(NetId net, const std::string& name);

  [[nodiscard]] std::size_t net_count() const { return kinds_.size(); }
  [[nodiscard]] std::optional<NetId> find(const std::string& name) const;

  /// Validates that the combinational part is acyclic and every flip-flop is
  /// connected; throws `std::logic_error` otherwise. Called by Simulation.
  void validate() const;

 private:
  friend class Simulation;

  enum class NetKind : std::uint8_t { kInput, kGate, kFlipFlop };

  std::vector<NetKind> kinds_;
  std::vector<GateKind> gate_kinds_;           // per net (valid for kGate)
  std::vector<std::vector<NetId>> gate_inputs_;  // per net (valid for kGate)
  std::vector<bool> ff_initial_;               // per net (valid for kFlipFlop)
  std::vector<NetId> ff_data_;                 // per net (valid for kFlipFlop)
  std::vector<std::string> names_;
  std::unordered_map<std::string, NetId> name_index_;
  std::vector<std::pair<std::string, NetId>> outputs_;
};

/// Cycle-accurate synchronous simulation of a Netlist.
class Simulation {
 public:
  explicit Simulation(const Netlist& netlist);

  /// Sets a primary input for the current cycle.
  void set_input(NetId input, bool value);

  /// Evaluates the combinational logic with the current inputs and register
  /// values (no state commit). May be called repeatedly.
  void evaluate();

  /// Commits flip-flops (rising clock edge) after an evaluate().
  void clock_edge();

  /// Convenience: set inputs, evaluate, read a net.
  [[nodiscard]] bool value(NetId net) const;

  /// Packs the named output nets (in mark_output order) as bits, LSB first.
  [[nodiscard]] std::uint64_t output_word() const;

 private:
  const Netlist* netlist_;
  std::vector<NetId> topo_order_;       // gates only, dependency order
  std::vector<std::uint8_t> values_;    // current value of each net (0/1)
  std::vector<std::uint8_t> ff_state_;  // registered value per net
};

}  // namespace mrsc::logic

/// Builds an n-bit binary up-counter netlist with an `enable` input; the
/// counter increments each clocked cycle when enable is 1. Outputs are the
/// flip-flop nets, marked "q0".."q<n-1>".
namespace mrsc::logic {
Netlist make_counter_netlist(std::size_t bits, std::uint64_t initial_value);
}  // namespace mrsc::logic
