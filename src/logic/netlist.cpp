#include "logic/netlist.hpp"

#include <stdexcept>

namespace mrsc::logic {

bool evaluate_gate(GateKind kind, std::span<const std::uint8_t> inputs) {
  switch (kind) {
    case GateKind::kNot:
      if (inputs.size() != 1) {
        throw std::invalid_argument("evaluate_gate: NOT takes one input");
      }
      return inputs[0] == 0;
    case GateKind::kBuf:
      if (inputs.size() != 1) {
        throw std::invalid_argument("evaluate_gate: BUF takes one input");
      }
      return inputs[0] != 0;
    case GateKind::kAnd:
    case GateKind::kNand: {
      bool all = true;
      for (const std::uint8_t v : inputs) all = all && (v != 0);
      return kind == GateKind::kAnd ? all : !all;
    }
    case GateKind::kOr:
    case GateKind::kNor: {
      bool any = false;
      for (const std::uint8_t v : inputs) any = any || (v != 0);
      return kind == GateKind::kOr ? any : !any;
    }
    case GateKind::kXor: {
      bool acc = false;
      for (const std::uint8_t v : inputs) acc = acc != (v != 0);
      return acc;
    }
  }
  throw std::logic_error("evaluate_gate: unknown gate kind");
}

NetId Netlist::add_input(const std::string& name) {
  const NetId id{static_cast<NetId::underlying_type>(kinds_.size())};
  kinds_.push_back(NetKind::kInput);
  gate_kinds_.push_back(GateKind::kBuf);
  gate_inputs_.emplace_back();
  ff_initial_.push_back(false);
  ff_data_.push_back(NetId::invalid());
  names_.push_back(name);
  if (!name.empty()) name_index_.emplace(name, id);
  return id;
}

NetId Netlist::add_gate(GateKind kind, std::vector<NetId> inputs,
                        const std::string& name) {
  if (inputs.empty()) {
    throw std::invalid_argument("add_gate: gate needs inputs");
  }
  for (const NetId in : inputs) {
    if (!in.valid() || in.index() >= kinds_.size()) {
      throw std::invalid_argument("add_gate: unknown input net");
    }
  }
  const NetId id{static_cast<NetId::underlying_type>(kinds_.size())};
  kinds_.push_back(NetKind::kGate);
  gate_kinds_.push_back(kind);
  gate_inputs_.push_back(std::move(inputs));
  ff_initial_.push_back(false);
  ff_data_.push_back(NetId::invalid());
  names_.push_back(name);
  if (!name.empty()) name_index_.emplace(name, id);
  return id;
}

NetId Netlist::add_flip_flop(bool initial, const std::string& name) {
  const NetId id{static_cast<NetId::underlying_type>(kinds_.size())};
  kinds_.push_back(NetKind::kFlipFlop);
  gate_kinds_.push_back(GateKind::kBuf);
  gate_inputs_.emplace_back();
  ff_initial_.push_back(initial);
  ff_data_.push_back(NetId::invalid());
  names_.push_back(name);
  if (!name.empty()) name_index_.emplace(name, id);
  return id;
}

void Netlist::connect_flip_flop(NetId q, NetId d) {
  if (!q.valid() || q.index() >= kinds_.size() ||
      kinds_[q.index()] != NetKind::kFlipFlop) {
    throw std::invalid_argument("connect_flip_flop: q is not a flip-flop");
  }
  if (!d.valid() || d.index() >= kinds_.size()) {
    throw std::invalid_argument("connect_flip_flop: unknown data net");
  }
  ff_data_[q.index()] = d;
}

void Netlist::mark_output(NetId net, const std::string& name) {
  if (!net.valid() || net.index() >= kinds_.size()) {
    throw std::invalid_argument("mark_output: unknown net");
  }
  outputs_.emplace_back(name, net);
}

std::optional<NetId> Netlist::find(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == NetKind::kFlipFlop && !ff_data_[i].valid()) {
      throw std::logic_error("Netlist: flip-flop '" + names_[i] +
                             "' has no data input");
    }
  }
  // Acyclicity of the combinational part is established by the topological
  // sort in Simulation's constructor, which throws on a cycle.
}

Simulation::Simulation(const Netlist& netlist) : netlist_(&netlist) {
  netlist.validate();
  const std::size_t n = netlist.kinds_.size();
  values_.assign(n, 0);
  ff_state_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (netlist.kinds_[i] == Netlist::NetKind::kFlipFlop) {
      ff_state_[i] = netlist.ff_initial_[i];
      values_[i] = netlist.ff_initial_[i];
    }
  }
  // Topological sort of the gates (inputs and flip-flop outputs are sources).
  std::vector<std::uint8_t> mark(n, 0);  // 0=unvisited, 1=visiting, 2=done
  std::vector<NetId> stack;
  for (std::size_t i = 0; i < n; ++i) {
    if (netlist.kinds_[i] != Netlist::NetKind::kGate || mark[i] != 0) continue;
    stack.push_back(NetId{static_cast<NetId::underlying_type>(i)});
    while (!stack.empty()) {
      const NetId node = stack.back();
      if (mark[node.index()] == 2) {
        stack.pop_back();
        continue;
      }
      if (mark[node.index()] == 1) {
        mark[node.index()] = 2;
        topo_order_.push_back(node);
        stack.pop_back();
        continue;
      }
      mark[node.index()] = 1;
      for (const NetId in : netlist.gate_inputs_[node.index()]) {
        if (netlist.kinds_[in.index()] != Netlist::NetKind::kGate) continue;
        if (mark[in.index()] == 1) {
          throw std::logic_error(
              "Simulation: combinational cycle through net '" +
              netlist.names_[in.index()] + "'");
        }
        if (mark[in.index()] == 0) stack.push_back(in);
      }
    }
  }
}

void Simulation::set_input(NetId input, bool value) {
  if (netlist_->kinds_[input.index()] != Netlist::NetKind::kInput) {
    throw std::invalid_argument("set_input: net is not a primary input");
  }
  values_[input.index()] = value ? 1 : 0;
}

void Simulation::evaluate() {
  // Flip-flop outputs present their registered values.
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (netlist_->kinds_[i] == Netlist::NetKind::kFlipFlop) {
      values_[i] = ff_state_[i];
    }
  }
  std::vector<std::uint8_t> scratch;
  for (const NetId gate : topo_order_) {
    scratch.clear();
    for (const NetId in : netlist_->gate_inputs_[gate.index()]) {
      scratch.push_back(values_[in.index()]);
    }
    values_[gate.index()] = evaluate_gate(
                                  netlist_->gate_kinds_[gate.index()],
                                  std::span<const std::uint8_t>(
                                      scratch.data(), scratch.size()))
                                  ? 1
                                  : 0;
  }
}

void Simulation::clock_edge() {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (netlist_->kinds_[i] == Netlist::NetKind::kFlipFlop) {
      ff_state_[i] = values_[netlist_->ff_data_[i].index()];
    }
  }
}

bool Simulation::value(NetId net) const {
  return values_[net.index()] != 0;
}

std::uint64_t Simulation::output_word() const {
  std::uint64_t word = 0;
  for (std::size_t bit = 0; bit < netlist_->outputs_.size(); ++bit) {
    if (values_[netlist_->outputs_[bit].second.index()] != 0) {
      word |= (std::uint64_t{1} << bit);
    }
  }
  return word;
}

Netlist make_counter_netlist(std::size_t bits, std::uint64_t initial_value) {
  if (bits == 0 || bits > 62) {
    throw std::invalid_argument("make_counter_netlist: bits in [1, 62]");
  }
  Netlist netlist;
  const NetId enable = netlist.add_input("enable");
  NetId carry = enable;
  for (std::size_t i = 0; i < bits; ++i) {
    const bool init = (initial_value >> i) & 1;
    const NetId q =
        netlist.add_flip_flop(init, "q" + std::to_string(i));
    // next_q = q XOR carry ; carry_out = q AND carry.
    const NetId next_q = netlist.add_gate(GateKind::kXor, {q, carry});
    const NetId carry_out = netlist.add_gate(GateKind::kAnd, {q, carry});
    netlist.connect_flip_flop(q, next_q);
    netlist.mark_output(q, "q" + std::to_string(i));
    carry = carry_out;
  }
  return netlist;
}

}  // namespace mrsc::logic
