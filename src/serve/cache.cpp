#include "serve/cache.hpp"

namespace mrsc::serve {

std::optional<std::string> ResultCache::get(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::put(const std::string& key, const std::string& value) {
  if (capacity_entries_ == 0 || value.size() > capacity_bytes_) return;
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->value.size();
    bytes_ += value.size();
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, value});
    index_[key] = lru_.begin();
    bytes_ += value.size();
  }
  evict_locked();
}

void ResultCache::evict_locked() {
  while (!lru_.empty() &&
         (lru_.size() > capacity_entries_ || bytes_ > capacity_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.value.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacity_entries = capacity_entries_;
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

}  // namespace mrsc::serve
