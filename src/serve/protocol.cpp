#include "serve/protocol.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace mrsc::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("bad IPv4 address '" + host + "'");
  }
  return address;
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_on(const std::string& host, std::uint16_t port,
                 std::uint16_t& bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const int yes = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
  sockaddr_in address = make_address(host, port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&address),
             sizeof address) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), 128) != 0) throw_errno("listen");
  socklen_t length = sizeof address;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    throw_errno("getsockname");
  }
  bound_port = ntohs(address.sin_port);
  return sock;
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const int yes = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
  sockaddr_in address = make_address(host, port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&address),
                sizeof address) != 0) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  return sock;
}

Socket connect_with_retry(const std::string& host, std::uint16_t port,
                          std::size_t attempts, double initial_backoff_ms) {
  constexpr double kBackoffCapMs = 400.0;
  double backoff_ms = initial_backoff_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return connect_to(host, port);
    } catch (const std::runtime_error&) {
      if (attempt + 1 >= attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2.0, kBackoffCapMs);
  }
}

Socket accept_on(int listener_fd) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int yes = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();
  }
}

void write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame too large (" +
                        std::to_string(payload.size()) + " bytes)");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length),
  };
  std::string frame(reinterpret_cast<char*>(header), 4);
  frame += payload;
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

namespace {

/// Reads exactly `count` bytes. Returns false on EOF before the first byte
/// when `eof_ok`; throws on mid-read EOF or errors.
bool read_exact(int fd, char* buffer, std::size_t count, bool eof_ok) {
  std::size_t got = 0;
  while (got < count) {
    const ssize_t n = ::recv(fd, buffer + got, count - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::string& payload) {
  char header[4];
  if (!read_exact(fd, header, 4, /*eof_ok=*/true)) return false;
  const std::uint32_t length =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (length > kMaxFrameBytes) {
    throw ProtocolError("oversized frame (" + std::to_string(length) +
                        " bytes)");
  }
  payload.resize(length);
  if (length != 0) read_exact(fd, payload.data(), length, /*eof_ok=*/false);
  return true;
}

std::string Client::request_raw(const std::string& payload) {
  write_frame(socket_.fd(), payload);
  std::string response;
  if (!read_frame(socket_.fd(), response)) {
    throw std::runtime_error("server closed the connection");
  }
  return response;
}

json::Value Client::request(const std::string& payload) {
  return json::parse(request_raw(payload));
}

}  // namespace mrsc::serve
