// Request validation, canonical cache keys, and job execution.
//
// A job request names one of the four workloads the CLIs already expose —
// sim / verify / lint / stress — plus a diagnostic `sleep` kind that holds
// a worker slot for a fixed time (drain and backpressure tests). The
// dispatcher is deliberately a pure library: it never touches sockets, the
// queue, or the cache, so tests can drive it directly and the server stays
// a thin admission/IO shell around it.
//
// Determinism contract (the service-layer extension of the BatchRunner
// contract): a successful response payload is a pure function of the
// canonical key — no wall-clock times, no thread counts, no machine names
// ever appear in it. Wall-clock results (timeouts, cancellations) are
// reported as status "error" and are never cached.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/json.hpp"

namespace mrsc::runtime {
class BatchRunner;
}

namespace mrsc::serve {

enum class JobKind : std::uint8_t { kSim, kVerify, kLint, kStress, kSleep };

[[nodiscard]] const char* to_string(JobKind kind);

/// A validated job request with every default filled in, so two spellings
/// of the same job (explicit defaults vs. omitted fields) share one
/// canonical key.
struct JobRequest {
  JobKind kind = JobKind::kSim;

  // sim + lint + stress: design name. sim/lint use the builtin-design
  // catalog (tools/builtin_designs.hpp); stress uses the campaign catalog.
  std::string design = "counter";
  std::uint64_t seed = 1;
  int opt = 0;  ///< compile pipeline level (0 or 1) for sim/lint

  // sim
  std::string method = "nrm";  ///< ode|dp45|rk4|be|ssa|nrm|tau
  double t_end = 5.0;
  double omega = 200.0;
  double record = 0.0;  ///< sampling interval; 0 -> t_end / 50

  // lint
  bool werror = false;
  std::string checks;  ///< comma-separated registry names; empty = all

  // verify
  std::size_t seeds = 4;
  std::uint64_t start_seed = 0;
  std::string case_kinds;  ///< comma-separated generator kinds; empty = all
  bool differential = false;
  bool opt_equivalence = false;

  // stress
  std::string fault = "rate-jitter";
  std::vector<double> intensities;  ///< empty = per-kind default grid
  std::size_t trials = 1;

  // sleep
  double sleep_ms = 0.0;

  /// Per-job deadline in seconds (0 disables). Deliberately *not* part of
  /// the canonical key: it changes whether a job completes, never what a
  /// completed job returns.
  double deadline_s = 30.0;
};

/// Parses and validates the "job" fields of a request object. Throws
/// std::invalid_argument with a deterministic message on unknown kinds,
/// wrong field types, or out-of-range values (field caps are documented in
/// docs/SERVE.md — the server is not a general batch farm, so per-job work
/// is bounded at admission time).
[[nodiscard]] JobRequest parse_job(const json::Value& request);

/// The canonical cache key: a versioned "|"-separated field=value string
/// over every result-determining field, numbers rendered exactly like the
/// payload serializer renders them. Documented in docs/SERVE.md.
[[nodiscard]] std::string canonical_key(const JobRequest& request);

/// Execution environment the server provides to a job.
struct DispatchHooks {
  /// Server shutdown flag; long jobs poll it cooperatively.
  std::function<bool()> cancelled;
  /// Registry for the job's BatchRunner so Server::stop can cancel() it.
  /// Both may be null (tests drive jobs without a server).
  std::function<void(runtime::BatchRunner*)> runner_started;
  std::function<void(runtime::BatchRunner*)> runner_finished;
  /// Interruptible wait for sleep jobs; returns true when woken early by
  /// shutdown. Null falls back to an uninterruptible wait.
  std::function<bool(double ms)> sleep_wait;
};

struct DispatchResult {
  std::string payload;  ///< complete response JSON (status ok or error)
  bool ok = false;
  /// Only deterministic successful payloads may enter the cache.
  bool cacheable = false;
};

/// Runs one validated job to completion on the calling thread.
[[nodiscard]] DispatchResult run_job(const JobRequest& request,
                                     const DispatchHooks& hooks);

/// Renders the deterministic "rejected: overload" response.
[[nodiscard]] std::string overload_response();

/// Renders the deterministic "rejected: draining" response (the `drain` op
/// flipped the shard into drain mode).
[[nodiscard]] std::string draining_response();

/// Renders a deterministic error response.
[[nodiscard]] std::string error_response(const std::string& message);

/// Renders the `catalog` op response: every registry design reachable over
/// the wire — the fixed names, the parametric generators with their ranges,
/// and the smoke catalog — so a fleet or load generator can discover the
/// corpus without a local binary. Deterministic (pure registry contents).
[[nodiscard]] std::string catalog_response();

}  // namespace mrsc::serve
