#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "serve/json.hpp"

namespace mrsc::serve {

namespace {

std::size_t bucket_index(double seconds) {
  if (seconds <= 1e-6) return 0;
  const double octaves = std::log2(seconds / 1e-6);
  const auto index = static_cast<std::size_t>(octaves * 4.0);
  return std::min(index, LatencyHistogram::kBuckets - 1);
}

}  // namespace

double LatencyHistogram::bucket_floor(std::size_t index) {
  return 1e-6 * std::exp2(static_cast<double>(index) / 4.0);
}

void LatencyHistogram::record(double seconds) {
  seconds = std::max(seconds, 0.0);
  ++buckets_[bucket_index(seconds)];
  ++count_;
  total_seconds_ += seconds;
  max_seconds_ = std::max(max_seconds_, seconds);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const auto above = static_cast<double>(below + buckets_[i]);
    if (above >= target) {
      const double inside =
          buckets_[i] == 0
              ? 0.0
              : (target - static_cast<double>(below)) /
                    static_cast<double>(buckets_[i]);
      const double lo = bucket_floor(i);
      const double hi = bucket_floor(i + 1);
      return lo + std::clamp(inside, 0.0, 1.0) * (hi - lo);
    }
    below += buckets_[i];
  }
  return max_seconds_;
}

ServerStats::ServerStats(std::vector<std::string> kinds) {
  kinds_.reserve(kinds.size());
  for (std::string& kind : kinds) {
    KindStats entry;
    entry.kind = std::move(kind);
    kinds_.push_back(std::move(entry));
  }
}

void ServerStats::record_job(const std::string& kind, bool ok, bool cache_hit,
                             double latency_seconds) {
  std::lock_guard lock(mutex_);
  ++received_;
  for (KindStats& entry : kinds_) {
    if (entry.kind != kind) continue;
    if (ok) {
      ++entry.ok;
    } else {
      ++entry.failed;
    }
    if (cache_hit) ++entry.cache_hits;
    entry.latency.record(latency_seconds);
    return;
  }
}

void ServerStats::record_overload() {
  std::lock_guard lock(mutex_);
  ++received_;
  ++overload_rejected_;
}

void ServerStats::record_protocol_error() {
  std::lock_guard lock(mutex_);
  ++protocol_errors_;
}

void ServerStats::record_connection_error() {
  std::lock_guard lock(mutex_);
  ++connection_errors_;
}

void ServerStats::record_drain_rejection() {
  std::lock_guard lock(mutex_);
  ++received_;
  ++drain_rejected_;
}

std::string ServerStats::to_json() const {
  std::lock_guard lock(mutex_);
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  for (const KindStats& entry : kinds_) {
    ok += entry.ok;
    failed += entry.failed;
  }
  std::string out = "\"requests\":{";
  out += "\"received\":" + std::to_string(received_);
  out += ",\"ok\":" + std::to_string(ok);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"overload_rejected\":" + std::to_string(overload_rejected_);
  out += ",\"drain_rejected\":" + std::to_string(drain_rejected_);
  out += ",\"protocol_errors\":" + std::to_string(protocol_errors_);
  out += ",\"connection_errors\":" + std::to_string(connection_errors_);
  out += "},\"latency\":{";
  bool first = true;
  for (const KindStats& entry : kinds_) {
    if (!first) out += ',';
    first = false;
    const LatencyHistogram& h = entry.latency;
    out += json::quote(entry.kind) + ":{";
    out += "\"count\":" + std::to_string(h.count());
    out += ",\"ok\":" + std::to_string(entry.ok);
    out += ",\"failed\":" + std::to_string(entry.failed);
    out += ",\"cache_hits\":" + std::to_string(entry.cache_hits);
    out += ",\"mean_ms\":" +
           json::number_to_string(
               h.count() == 0
                   ? 0.0
                   : 1e3 * h.total_seconds() / static_cast<double>(h.count()));
    out += ",\"p50_ms\":" + json::number_to_string(1e3 * h.percentile(0.50));
    out += ",\"p90_ms\":" + json::number_to_string(1e3 * h.percentile(0.90));
    out += ",\"p99_ms\":" + json::number_to_string(1e3 * h.percentile(0.99));
    out += ",\"max_ms\":" + json::number_to_string(1e3 * h.max_seconds());
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace mrsc::serve
