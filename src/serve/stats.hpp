// Server-side request counters and per-kind latency histograms.
//
// Latencies land in fixed log2-spaced buckets (1 µs … ~1 h, 4 buckets per
// octave) so recording is a couple of arithmetic ops under a short lock and
// the stats endpoint can serve p50/p90/p99 estimates without keeping every
// sample. Bucket interpolation bounds the percentile error to the bucket
// width (~19% relative), which is fine for a dashboard; the load generator
// keeps exact client-side samples for the committed benchmark numbers.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mrsc::serve {

class LatencyHistogram {
 public:
  // 4 buckets per factor-of-2 from 1 µs: bucket i covers
  // [1e-6 * 2^(i/4), 1e-6 * 2^((i+1)/4)). 128 buckets tops out above 1 h.
  static constexpr std::size_t kBuckets = 128;

  void record(double seconds);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double total_seconds() const { return total_seconds_; }
  [[nodiscard]] double max_seconds() const { return max_seconds_; }

  /// Percentile estimate in seconds (p in [0,1]), linearly interpolated
  /// inside the winning bucket. 0 when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  [[nodiscard]] static double bucket_floor(std::size_t index);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double total_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

/// Everything the stats endpoint reports about one job kind.
struct KindStats {
  std::string kind;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  LatencyHistogram latency;  ///< hits and misses both land here
};

/// Aggregated counters for the whole server. One mutex is plenty: the
/// per-request critical sections are tens of nanoseconds next to
/// millisecond-scale jobs.
class ServerStats {
 public:
  explicit ServerStats(std::vector<std::string> kinds);

  void record_job(const std::string& kind, bool ok, bool cache_hit,
                  double latency_seconds);
  void record_overload();
  void record_protocol_error();
  /// A framing violation (torn frame, garbage length prefix, vanished peer)
  /// that cost one connection but never a request: distinct from
  /// protocol_errors, which count well-framed but invalid payloads.
  void record_connection_error();
  /// A job request rejected because the server is draining (see the `drain`
  /// op in docs/SERVE.md).
  void record_drain_rejection();

  /// Renders the "requests" / "latency" sections of the stats response
  /// (deterministic field order; values obviously run-dependent).
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::vector<KindStats> kinds_;
  std::uint64_t received_ = 0;
  std::uint64_t overload_rejected_ = 0;
  std::uint64_t drain_rejected_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t connection_errors_ = 0;
};

}  // namespace mrsc::serve
