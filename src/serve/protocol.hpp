// Wire protocol for the simulation service: length-prefixed JSON frames.
//
// One frame = a 4-byte big-endian unsigned payload length followed by that
// many bytes of UTF-8 JSON. Requests and responses are single frames; a
// connection carries any number of request/response pairs, strictly in
// order (no pipelining ids — a client that wants concurrency opens more
// connections, which is also what the load generator does). The full
// request/response schema lives in docs/SERVE.md.
//
// This header also carries the small POSIX socket layer: everything the
// server, the client class, and the load generator need, so no other file
// touches <sys/socket.h>.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/json.hpp"

namespace mrsc::serve {

/// Frames larger than this are a protocol error on both sides (a lint
/// report for the biggest builtin design is ~10 KiB; 16 MiB is headroom,
/// not a target).
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// A framing violation on one connection: a peer that closed mid-frame, an
/// oversized or garbage length prefix, or a send into a vanished peer. The
/// server catches this per connection (drops that connection, counts it in
/// `requests.connection_errors`, keeps accepting); it must never tear down
/// the accept loop.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RAII socket fd. Closes on destruction; movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// shutdown(SHUT_RDWR): unblocks a peer thread stuck in read/write
  /// without racing fd reuse the way close() would.
  void shutdown_both() const;
  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 picks an ephemeral port).
/// `bound_port` receives the actual port. Throws std::runtime_error.
[[nodiscard]] Socket listen_on(const std::string& host, std::uint16_t port,
                               std::uint16_t& bound_port);

/// Blocking connect. Throws std::runtime_error on failure.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

/// connect_to with bounded retries: attempt k sleeps
/// min(initial_backoff_ms * 2^k, 400 ms) before trying again. Absorbs the
/// startup race where a client launches the instant a server's --port-file
/// appears but before its listener accepts (loaded CI runners); a server
/// that is genuinely absent still fails, after roughly two seconds at the
/// defaults. Throws the final connect error.
[[nodiscard]] Socket connect_with_retry(const std::string& host,
                                        std::uint16_t port,
                                        std::size_t attempts = 8,
                                        double initial_backoff_ms = 25.0);

/// Blocking accept. Returns an invalid Socket once the listener has been
/// shut down or closed — the server's accept loop treats that as "stop".
[[nodiscard]] Socket accept_on(int listener_fd);

/// Writes one frame, looping over partial writes. Throws std::runtime_error
/// on a closed/failed socket or an oversized payload.
void write_frame(int fd, const std::string& payload);

/// Reads one frame. Returns false on clean EOF at a frame boundary; throws
/// std::runtime_error on mid-frame EOF, socket errors, or oversized lengths.
[[nodiscard]] bool read_frame(int fd, std::string& payload);

/// Convenience synchronous client: one connection, request/response.
class Client {
 public:
  Client(const std::string& host, std::uint16_t port)
      : socket_(connect_to(host, port)) {}

  /// Wraps an already-connected socket (e.g. from connect_with_retry).
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  /// Sends `payload` and returns the raw response bytes (the byte-identical
  /// contract is asserted on this form).
  std::string request_raw(const std::string& payload);

  /// request_raw + parse.
  json::Value request(const std::string& payload);

 private:
  Socket socket_;
};

}  // namespace mrsc::serve
