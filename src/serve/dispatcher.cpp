#include "serve/dispatcher.hpp"

#include <chrono>
#include <cmath>
#include <span>
#include <stdexcept>
#include <thread>

#include "compile/passes.hpp"
#include "core/network.hpp"
#include "lint/lint.hpp"
#include "runtime/batch.hpp"
#include "scenario/registry.hpp"
#include "stress/campaign.hpp"
#include "tools/builtin_designs.hpp"
#include "verify/verify.hpp"

namespace mrsc::serve {

namespace {

using json::number_to_string;
using json::quote;

constexpr double kMaxTEnd = 1e4;
constexpr double kMaxDeadline = 600.0;
constexpr double kMaxSleepMs = 60'000.0;
constexpr std::size_t kMaxVerifySeeds = 32;
constexpr std::size_t kMaxStressTrials = 5;
constexpr std::size_t kMaxStressIntensities = 8;

[[noreturn]] void reject(const std::string& message) {
  throw std::invalid_argument(message);
}

std::uint64_t u64_field(const json::Value& v, const std::string& key,
                        std::uint64_t fallback) {
  const double raw = v.get_number(key, static_cast<double>(fallback));
  if (raw < 0.0 || raw != std::floor(raw) || raw > 1.8e19) {
    reject("field '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(raw);
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool is_ode_method(const std::string& method) {
  return method == "ode" || method == "dp45" || method == "rk4" ||
         method == "be";
}

bool is_ssa_method(const std::string& method) {
  return method == "ssa" || method == "nrm" || method == "tau";
}

std::string intensities_csv(const std::vector<double>& intensities) {
  std::string out;
  for (std::size_t i = 0; i < intensities.size(); ++i) {
    if (i != 0) out += ',';
    out += number_to_string(intensities[i]);
  }
  return out;
}

}  // namespace

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kSim:
      return "sim";
    case JobKind::kVerify:
      return "verify";
    case JobKind::kLint:
      return "lint";
    case JobKind::kStress:
      return "stress";
    case JobKind::kSleep:
      return "sleep";
  }
  return "unknown";
}

JobRequest parse_job(const json::Value& request) {
  if (!request.is_object()) reject("request must be a JSON object");
  JobRequest job;
  const std::string kind = request.get_string("kind", "");
  if (kind == "sim") {
    job.kind = JobKind::kSim;
  } else if (kind == "verify") {
    job.kind = JobKind::kVerify;
  } else if (kind == "lint") {
    job.kind = JobKind::kLint;
  } else if (kind == "stress") {
    job.kind = JobKind::kStress;
  } else if (kind == "sleep") {
    job.kind = JobKind::kSleep;
  } else {
    reject("unknown job kind '" + kind +
           "' (expected sim|verify|lint|stress|sleep)");
  }

  job.design = request.get_string("design", job.design);
  // Sim and lint designs resolve through the scenario registry: validate
  // here (bad specs are parse errors, not run failures) and cache-key on the
  // canonical spelling, so "counter( 2 )" and "counter(2)" share an entry.
  // Fixed names canonicalize to themselves, preserving pre-registry keys.
  // Stress designs name campaign families, not registry specs — left alone.
  if (job.kind == JobKind::kSim || job.kind == JobKind::kLint) {
    try {
      job.design =
          scenario::ScenarioRegistry::global().canonicalize(job.design);
    } catch (const std::invalid_argument& error) {
      reject(error.what());
    }
  }
  job.seed = u64_field(request, "seed", job.seed);
  const double opt = request.get_number("opt", 0.0);
  if (opt != 0.0 && opt != 1.0) reject("field 'opt' must be 0 or 1");
  job.opt = static_cast<int>(opt);

  job.method = request.get_string("method", job.method);
  if (job.kind == JobKind::kSim && !is_ode_method(job.method) &&
      !is_ssa_method(job.method)) {
    reject("unknown method '" + job.method +
           "' (expected ode|dp45|rk4|be|ssa|nrm|tau)");
  }
  job.t_end = request.get_number("t_end", job.t_end);
  if (!(job.t_end > 0.0) || job.t_end > kMaxTEnd) {
    reject("field 't_end' must be in (0, " + number_to_string(kMaxTEnd) +
           "]");
  }
  job.omega = request.get_number("omega", job.omega);
  if (job.omega < 1.0 || job.omega > 1e6) {
    reject("field 'omega' must be in [1, 1e6]");
  }
  job.record = request.get_number("record", 0.0);
  if (job.record < 0.0 || job.record > job.t_end) {
    reject("field 'record' must be in [0, t_end]");
  }
  if (job.record == 0.0) job.record = job.t_end / 50.0;

  job.werror = request.get_bool("werror", false);
  job.checks = request.get_string("checks", "");

  job.seeds = u64_field(request, "seeds", job.seeds);
  if (job.seeds == 0 || job.seeds > kMaxVerifySeeds) {
    reject("field 'seeds' must be in [1, " +
           std::to_string(kMaxVerifySeeds) + "]");
  }
  job.start_seed = u64_field(request, "start_seed", job.start_seed);
  job.case_kinds = request.get_string("kinds", "");
  job.differential = request.get_bool("differential", false);
  job.opt_equivalence = request.get_bool("opt_equivalence", false);

  job.fault = request.get_string("fault", job.fault);
  job.trials = u64_field(request, "trials", job.trials);
  if (job.trials == 0 || job.trials > kMaxStressTrials) {
    reject("field 'trials' must be in [1, " +
           std::to_string(kMaxStressTrials) + "]");
  }
  if (const json::Value* grid = request.find("intensities")) {
    if (grid->type() != json::Value::Type::kArray) {
      reject("field 'intensities' must be an array of numbers");
    }
    if (grid->as_array().size() > kMaxStressIntensities) {
      reject("field 'intensities' is capped at " +
             std::to_string(kMaxStressIntensities) + " points");
    }
    double previous = 0.0;
    for (const json::Value& point : grid->as_array()) {
      if (point.type() != json::Value::Type::kNumber) {
        reject("field 'intensities' must be an array of numbers");
      }
      const double intensity = point.as_number();
      if (!(intensity > previous)) {
        reject("field 'intensities' must be positive and ascending");
      }
      previous = intensity;
      job.intensities.push_back(intensity);
    }
  }

  job.sleep_ms = request.get_number("ms", 0.0);
  if (job.sleep_ms < 0.0 || job.sleep_ms > kMaxSleepMs) {
    reject("field 'ms' must be in [0, " + number_to_string(kMaxSleepMs) +
           "]");
  }

  job.deadline_s = request.get_number("deadline_s", job.deadline_s);
  if (job.deadline_s < 0.0 || job.deadline_s > kMaxDeadline) {
    reject("field 'deadline_s' must be in [0, " +
           number_to_string(kMaxDeadline) + "]");
  }
  return job;
}

std::string canonical_key(const JobRequest& request) {
  std::string key = "mrsc-serve-v1|kind=";
  key += to_string(request.kind);
  switch (request.kind) {
    case JobKind::kSim:
      key += "|design=" + request.design;
      key += "|opt=" + std::to_string(request.opt);
      key += "|method=" + request.method;
      key += "|seed=" + std::to_string(request.seed);
      key += "|t_end=" + number_to_string(request.t_end);
      key += "|omega=" + number_to_string(request.omega);
      key += "|record=" + number_to_string(request.record);
      break;
    case JobKind::kLint:
      key += "|design=" + request.design;
      key += "|opt=" + std::to_string(request.opt);
      key += "|checks=" + request.checks;
      key += "|werror=" + std::string(request.werror ? "1" : "0");
      break;
    case JobKind::kVerify:
      key += "|seeds=" + std::to_string(request.seeds);
      key += "|start_seed=" + std::to_string(request.start_seed);
      key += "|kinds=" + request.case_kinds;
      key += "|differential=" + std::string(request.differential ? "1" : "0");
      key += "|opt_equivalence=" +
             std::string(request.opt_equivalence ? "1" : "0");
      break;
    case JobKind::kStress:
      key += "|design=" + request.design;
      key += "|fault=" + request.fault;
      key += "|seed=" + std::to_string(request.seed);
      key += "|trials=" + std::to_string(request.trials);
      key += "|intensities=" + intensities_csv(request.intensities);
      break;
    case JobKind::kSleep:
      key += "|ms=" + number_to_string(request.sleep_ms);
      break;
  }
  return key;
}

std::string overload_response() {
  return R"({"status":"rejected","reason":"overload"})";
}

std::string draining_response() {
  return R"({"status":"rejected","reason":"draining"})";
}

std::string error_response(const std::string& message) {
  return "{\"status\":\"error\",\"error\":" + quote(message) + "}";
}

std::string catalog_response() {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();
  std::string out = R"({"status":"ok","op":"catalog","fixed":[)";
  bool first = true;
  for (const std::string& name : registry.fixed_names()) {
    if (!first) out += ',';
    first = false;
    out += quote(name);
  }
  out += "],\"generators\":[";
  first = true;
  for (const scenario::GeneratorInfo& info : registry.generators()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + quote(info.name);
    out += ",\"parameter\":" + quote(info.parameter);
    out += ",\"min\":" + std::to_string(info.min_arg);
    out += ",\"max\":" + std::to_string(info.max_arg);
    out += ",\"smoke\":" + std::to_string(info.smoke_arg);
    out += ",\"summary\":" + quote(info.summary);
    out += '}';
  }
  out += "],\"smoke\":[";
  first = true;
  for (const std::string& spec : registry.smoke_catalog()) {
    if (!first) out += ',';
    first = false;
    out += quote(spec);
  }
  out += "]}";
  return out;
}

namespace {

/// RAII registration of the job's BatchRunner with the server's cancel set.
struct RunnerScope {
  const DispatchHooks& hooks;
  runtime::BatchRunner* runner;
  RunnerScope(const DispatchHooks& h, runtime::BatchRunner* r)
      : hooks(h), runner(r) {
    if (hooks.runner_started) hooks.runner_started(runner);
  }
  ~RunnerScope() {
    if (hooks.runner_finished) hooks.runner_finished(runner);
  }
};

std::string payload_header(const JobRequest& request) {
  return "{\"status\":\"ok\",\"kind\":\"" +
         std::string(to_string(request.kind)) +
         "\",\"key\":" + quote(canonical_key(request)) + ",\"result\":";
}

DispatchResult run_sim(const JobRequest& request,
                       const DispatchHooks& hooks) {
  compile::CompileOptions options;
  options.opt =
      request.opt == 1 ? compile::OptLevel::kO1 : compile::OptLevel::kO0;
  const tools::BuiltDesign design =
      tools::build_design(request.design, options);

  runtime::SimJob job;
  job.network = design.network;
  if (is_ode_method(request.method)) {
    job.kind = runtime::SimKind::kOde;
    job.ode.t_end = request.t_end;
    job.ode.record_interval = request.record;
    if (request.method == "rk4") {
      job.ode.method = sim::OdeMethod::kRk4Fixed;
    } else if (request.method == "be") {
      job.ode.method = sim::OdeMethod::kBackwardEuler;
    } else {
      job.ode.method = sim::OdeMethod::kDormandPrince45;
    }
  } else {
    job.kind = runtime::SimKind::kSsa;
    job.ssa.t_end = request.t_end;
    job.ssa.seed = request.seed;
    job.ssa.omega = request.omega;
    job.ssa.record_interval = request.record;
    if (request.method == "ssa") {
      job.ssa.method = sim::SsaMethod::kDirect;
    } else if (request.method == "tau") {
      job.ssa.method = sim::SsaMethod::kTauLeaping;
    } else {
      job.ssa.method = sim::SsaMethod::kNextReaction;
    }
  }

  runtime::BatchOptions batch;
  batch.threads = 1;
  batch.timeout_seconds = request.deadline_s;
  runtime::BatchRunner runner(batch);
  const RunnerScope scope(hooks, &runner);
  if (hooks.cancelled && hooks.cancelled()) {
    return {error_response("cancelled: server shutting down"), false, false};
  }
  const std::vector<runtime::JobResult> results =
      runner.run(std::span<const runtime::SimJob>(&job, 1));
  const runtime::JobResult& result = results.front();
  if (result.status != runtime::JobStatus::kOk) {
    std::string message = std::string("sim job ") +
                          runtime::to_string(result.status);
    if (!result.error.empty()) message += ": " + result.error;
    return {error_response(message), false, false};
  }

  std::string out = payload_header(request);
  out += "{\"design\":" + quote(request.design);
  out += ",\"method\":" + quote(request.method);
  out += ",\"opt\":" + std::to_string(request.opt);
  out += ",\"seed\":" + std::to_string(request.seed);
  out += ",\"t_end\":" + number_to_string(request.t_end);
  out += ",\"omega\":" + number_to_string(request.omega);
  out += ",\"end_time\":" + number_to_string(result.end_time);
  out += ",\"ssa_events\":" + std::to_string(result.ssa_events);
  out += ",\"ode_steps\":" + std::to_string(result.ode_steps);
  out += ",\"final\":{";
  const core::ReactionNetwork& network = *design.network;
  for (std::size_t i = 0; i < result.final_state.size(); ++i) {
    if (i != 0) out += ',';
    const core::SpeciesId id{
        static_cast<core::SpeciesId::underlying_type>(i)};
    out += quote(network.species_name(id)) + ":" +
           number_to_string(result.final_state[i]);
  }
  out += "}}}";
  return {out, true, true};
}

DispatchResult run_verify(const JobRequest& request,
                          const DispatchHooks& hooks) {
  if (hooks.cancelled && hooks.cancelled()) {
    return {error_response("cancelled: server shutting down"), false, false};
  }
  verify::VerifyOptions options;
  options.seeds = request.seeds;
  options.start_seed = request.start_seed;
  options.kinds = verify::parse_kinds(request.case_kinds);
  options.threads = 1;
  options.differential = request.differential;
  options.opt_equivalence = request.opt_equivalence;
  // Bounded-work profile: the expensive sweeps (robustness re-runs, the
  // lint cross-oracle, shrinking) stay in the offline mrsc_verify CLI.
  options.robustness = false;
  options.lint_cross = false;
  options.shrink = false;
  const verify::FuzzReport report = verify::run_fuzz(options);

  std::string out = payload_header(request);
  out += "{\"seeds\":" + std::to_string(request.seeds);
  out += ",\"start_seed\":" + std::to_string(request.start_seed);
  out += ",\"checked\":" + std::to_string(report.checked);
  out += ",\"failed\":" + std::to_string(report.failed);
  out += ",\"failures\":[";
  bool first = true;
  for (const verify::CaseResult& c : report.cases) {
    if (!c.failed()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"seed\":" + std::to_string(c.seed);
    out += ",\"case\":" + quote(verify::to_string(c.kind));
    out += ",\"oracles\":[";
    for (std::size_t i = 0; i < c.violations.size(); ++i) {
      if (i != 0) out += ',';
      out += quote(c.violations[i].oracle);
    }
    out += "]}";
  }
  out += "]}}";
  return {out, true, true};
}

DispatchResult run_lint_job(const JobRequest& request,
                            const DispatchHooks& hooks) {
  if (hooks.cancelled && hooks.cancelled()) {
    return {error_response("cancelled: server shutting down"), false, false};
  }
  compile::CompileOptions options;
  options.opt =
      request.opt == 1 ? compile::OptLevel::kO1 : compile::OptLevel::kO0;
  const tools::BuiltDesign design =
      tools::build_design(request.design, options);
  lint::LintInput input =
      lint::LintInput::from_design(*design.network, design.info,
                                   request.design);
  input.composition = design.composition.get();
  lint::LintOptions lint_options;
  lint_options.checks = split_commas(request.checks);
  const lint::LintReport report = lint::run_lint(input, lint_options);

  std::string out = payload_header(request);
  out += "{\"werror\":" + std::string(request.werror ? "true" : "false");
  out += ",\"clean\":" +
         std::string(report.clean(request.werror) ? "true" : "false");
  // Re-serialize the analyzer's (pretty-printed) JSON through the protocol
  // serializer so the payload has exactly one deterministic formatting.
  out += ",\"report\":" + json::parse(report.to_json()).dump();
  out += "}}";
  return {out, true, true};
}

DispatchResult run_stress(const JobRequest& request,
                          const DispatchHooks& hooks) {
  if (hooks.cancelled && hooks.cancelled()) {
    return {error_response("cancelled: server shutting down"), false, false};
  }
  const std::optional<stress::Design> design =
      stress::parse_design(request.design);
  if (!design) {
    reject("unknown stress design '" + request.design +
           "' (expected counter|moving_average|sequence_detector|"
           "async_chain)");
  }
  const std::optional<stress::FaultKind> fault =
      stress::parse_fault_kind(request.fault);
  if (!fault) reject("unknown fault kind '" + request.fault + "'");

  stress::CampaignConfig config;
  config.design = *design;
  config.fault = *fault;
  config.intensities = request.intensities;
  config.trials = request.trials;
  config.base_seed = request.seed;
  config.threads = 1;
  const stress::CampaignResult result = stress::run_campaign(config);

  std::string out = payload_header(request);
  out += "{\"design\":" + quote(request.design);
  out += ",\"fault\":" + quote(request.fault);
  out += ",\"base_seed\":" + std::to_string(request.seed);
  out += ",\"trials\":" + std::to_string(request.trials);
  out += ",\"margin\":" + number_to_string(result.margin);
  out += ",\"margin_found\":" +
         std::string(result.margin_found ? "true" : "false");
  out += ",\"intensities\":[";
  for (std::size_t i = 0; i < result.intensities.size(); ++i) {
    if (i != 0) out += ',';
    const stress::IntensityResult& point = result.intensities[i];
    out += "{\"intensity\":" + number_to_string(point.intensity);
    out += ",\"ok\":" + std::to_string(point.ok);
    out += ",\"mismatch\":" + std::to_string(point.mismatch);
    out += ",\"sim_failure\":" + std::to_string(point.sim_failure);
    out += '}';
  }
  out += "]}}";
  return {out, true, true};
}

DispatchResult run_sleep(const JobRequest& request,
                         const DispatchHooks& hooks) {
  bool cancelled = false;
  if (hooks.sleep_wait) {
    cancelled = hooks.sleep_wait(request.sleep_ms);
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(request.sleep_ms));
  }
  if (cancelled) {
    return {error_response("cancelled: server shutting down"), false, false};
  }
  std::string out = payload_header(request);
  out += "{\"slept_ms\":" + number_to_string(request.sleep_ms) + "}}";
  // Deterministic, but caching a sleep would defeat its purpose (holding a
  // worker slot for backpressure tests).
  return {out, true, false};
}

}  // namespace

DispatchResult run_job(const JobRequest& request,
                       const DispatchHooks& hooks) {
  try {
    switch (request.kind) {
      case JobKind::kSim:
        return run_sim(request, hooks);
      case JobKind::kVerify:
        return run_verify(request, hooks);
      case JobKind::kLint:
        return run_lint_job(request, hooks);
      case JobKind::kStress:
        return run_stress(request, hooks);
      case JobKind::kSleep:
        return run_sleep(request, hooks);
    }
    return {error_response("unknown job kind"), false, false};
  } catch (const std::exception& error) {
    return {error_response(error.what()), false, false};
  }
}

}  // namespace mrsc::serve
