#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mrsc::serve::json {

namespace {

constexpr std::size_t kMaxDepth = 64;

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at byte " +
                                std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text.compare(pos, n, literal) != 0) return false;
    pos += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) fail("unterminated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
              }
            }
            // BMP-only UTF-8 encoding; surrogate pairs are rejected (the
            // protocol never needs astral-plane request fields).
            if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate escape");
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
      pos = start;
      fail("bad number '" + token + "'");
    }
    return Value(value);
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Value object;
      object.make_object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return object;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        object.set(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return object;
      }
    }
    if (c == '[') {
      ++pos;
      Value array;
      array.make_array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return array;
      }
      while (true) {
        array.array().push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return array;
      }
    }
    if (c == '"') return Value(parse_string());
    if (consume_literal("null")) return Value();
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->type() != Type::kString) {
    throw std::invalid_argument("field '" + key + "' must be a string");
  }
  return v->as_string();
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->type() != Type::kNumber) {
    throw std::invalid_argument("field '" + key + "' must be a number");
  }
  return v->as_number();
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->type() != Type::kBool) {
    throw std::invalid_argument("field '" + key + "' must be a boolean");
  }
  return v->as_bool();
}

std::string number_to_string(double value) {
  // Integral values that fit in int64 print as plain integers so counters
  // and seeds keep their exact spelling through parse/dump cycles.
  if (value == std::floor(value) && std::abs(value) < 9.2e18) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Value::dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber:
      return number_to_string(number_);
    case Type::kString:
      return quote(string_);
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        out += quote(members_[i].first);
        out += ':';
        out += members_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

Value parse(const std::string& text) {
  Parser parser{text};
  Value value = parser.parse_value(0);
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing garbage");
  return value;
}

}  // namespace mrsc::serve::json
