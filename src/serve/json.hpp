// Minimal JSON value type for the service protocol.
//
// The rest of the codebase only *emits* JSON (bench reports, CLI --json) and
// does it with hand-built strings; the server is the first component that
// must also *parse* JSON, so this is the smallest recursive-descent parser
// that covers the protocol: null/bool/finite numbers/strings/arrays/objects,
// UTF-8 passed through verbatim, \uXXXX escapes decoded for the BMP.
// Objects preserve insertion order so a dump() round-trip is deterministic —
// the byte-identical response contract (docs/SERVE.md) depends on every
// response being produced by exactly one serialization path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mrsc::serve::json {

class Value;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<Value>& as_array() const { return array_; }
  [[nodiscard]] const std::vector<Member>& as_object() const {
    return members_;
  }

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  // Typed object-field accessors with defaults; used by the request
  // validator. They throw std::invalid_argument when the field exists with
  // the wrong type (a silently coerced request would cache under the wrong
  // canonical key).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  // Mutating builders (parser + tests).
  void make_array() { type_ = Type::kArray; }
  void make_object() { type_ = Type::kObject; }
  std::vector<Value>& array() {
    type_ = Type::kArray;
    return array_;
  }
  void set(std::string key, Value value) {
    type_ = Type::kObject;
    members_.emplace_back(std::move(key), std::move(value));
  }

  /// Compact deterministic serialization (no whitespace, members in
  /// insertion order, numbers via util-style %.17g with integer shortening).
  [[nodiscard]] std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> members_;
};

/// Parses one JSON document (must consume the whole input apart from
/// trailing whitespace). Throws std::invalid_argument with a position on
/// malformed input. Depth is capped so hostile input cannot blow the stack.
[[nodiscard]] Value parse(const std::string& text);

/// Formats a double the way every serializer in this repo does (%.17g), but
/// prints integral values that fit in 64 bits without an exponent, so seeds
/// and counters survive a parse → dump round trip textually.
[[nodiscard]] std::string number_to_string(double value);

/// JSON string escaping (quotes included in the result).
[[nodiscard]] std::string quote(const std::string& text);

}  // namespace mrsc::serve::json
