// Long-running simulation service: admission control, cache, worker pool.
//
// Architecture (nighthawk-style client/distributor split, scaled to one
// process): an accept thread hands each connection to its own reader
// thread; readers validate requests, consult the result cache, and submit
// misses to a bounded `runtime::ThreadPool`. Admission is an exact counter
// of admitted-but-unfinished jobs — when it reaches workers +
// queue_capacity the server answers `{"status":"rejected","reason":
// "overload"}` immediately instead of buffering without bound. Responses
// travel back on the same connection, strictly request-ordered (clients
// that want concurrency open more connections, as mrsc_loadgen does).
//
// Shutdown: stop() flips the stopping flag, cancels every in-flight
// BatchRunner cooperatively, wakes sleep jobs, shuts down all sockets, and
// joins every thread. Queued jobs still produce (cancelled-)responses —
// nothing is silently dropped, mirroring the ThreadPool drain contract.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/cache.hpp"
#include "serve/dispatcher.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"

namespace mrsc::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 binds an ephemeral port (see Server::port)
  std::size_t workers = 0;  ///< 0 selects the hardware concurrency
  /// Jobs admitted beyond the workers before overload rejection kicks in.
  std::size_t queue_capacity = 64;
  std::size_t cache_entries = 256;
  std::size_t cache_bytes = 64u << 20;
  std::size_t max_connections = 64;
  /// Operator-assigned shard name, echoed by health/stats so a fleet
  /// operator can tell which process answered. Never part of any job
  /// payload (the byte-identity contract forbids it).
  std::string shard_id;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// Cooperative full shutdown; idempotent, callable from any thread
  /// (the CLI calls it from a signal-watcher thread).
  void stop();

  /// Enters drain mode (also reachable over the wire via the `drain` op):
  /// subsequent job requests are answered with the deterministic
  /// {"status":"rejected","reason":"draining"} while in-flight jobs finish
  /// and stats/health/ping/catalog stay available. One-way; a drained
  /// shard is restarted, not resumed.
  void drain() { draining_.store(true); }
  [[nodiscard]] bool draining() const { return draining_.load(); }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

  /// The exact payload the `stats` op returns (the CLI prints it on
  /// shutdown so every run ends with a machine-readable summary).
  [[nodiscard]] std::string stats_payload() const;

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& connection);
  [[nodiscard]] std::string handle_request(const std::string& payload);
  [[nodiscard]] std::string handle_job(const json::Value& request);
  [[nodiscard]] std::string health_payload() const;
  void reap_finished_connections();

  ServerOptions options_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  ResultCache cache_;
  ServerStats stats_;
  DispatchHooks hooks_;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point started_at_{};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Admitted-but-unfinished jobs; the exact admission-control bound.
  std::mutex admission_mutex_;
  std::size_t admitted_ = 0;

  /// In-flight BatchRunners, cancelled on stop().
  std::mutex runners_mutex_;
  std::unordered_set<runtime::BatchRunner*> runners_;

  /// Wakes sleep jobs on shutdown.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

}  // namespace mrsc::serve
