// Keyed result cache for the simulation service.
//
// The composed-design workflows the service exists for (lint + re-simulate
// after every composition tweak) resubmit byte-identical requests
// constantly; a deterministic job is a pure function of its canonical key
// (dispatcher.hpp), so the response bytes can be replayed verbatim. The
// cache is a plain LRU over canonical-key -> response-payload with hit /
// miss / eviction counters for the stats endpoint. Bounded by entry count
// *and* total payload bytes — a burst of huge trajectory-bearing responses
// must not grow the server without bound.
//
// Thread safety: all methods lock; get() refreshes recency. Determinism:
// the cache can only ever substitute bytes that an identical cold run
// produced, so hit-vs-miss is invisible to clients (asserted in
// tests/test_serve.cpp).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mrsc::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_entries = 0;
  std::size_t capacity_bytes = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ResultCache {
 public:
  /// capacity_entries == 0 disables caching entirely (every get is a miss,
  /// every put a no-op) — used by --cache 0 for A/B runs.
  ResultCache(std::size_t capacity_entries, std::size_t capacity_bytes)
      : capacity_entries_(capacity_entries),
        capacity_bytes_(capacity_bytes) {}

  /// Returns the cached response and counts a hit; counts a miss otherwise.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Inserts/refreshes, then evicts LRU entries until both bounds hold.
  /// A value larger than capacity_bytes is simply not cached.
  void put(const std::string& key, const std::string& value);

  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  void evict_locked();

  const std::size_t capacity_entries_;
  const std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mrsc::serve
