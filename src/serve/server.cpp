#include "serve/server.hpp"

#include <future>
#include <stdexcept>
#include <utility>

#include "runtime/batch.hpp"

namespace mrsc::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries, options_.cache_bytes),
      stats_({"sim", "verify", "lint", "stress", "sleep"}) {
  if (options_.workers == 0) {
    options_.workers = runtime::ThreadPool::default_worker_count();
  }
  hooks_.cancelled = [this] { return stopping_.load(); };
  hooks_.runner_started = [this](runtime::BatchRunner* runner) {
    std::lock_guard lock(runners_mutex_);
    runners_.insert(runner);
    // A stop that raced the registration still lands: cancel directly.
    if (stopping_.load()) runner->cancel();
  };
  hooks_.runner_finished = [this](runtime::BatchRunner* runner) {
    std::lock_guard lock(runners_mutex_);
    runners_.erase(runner);
  };
  hooks_.sleep_wait = [this](double ms) {
    std::unique_lock lock(sleep_mutex_);
    return sleep_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(ms),
        [this] { return stopping_.load(); });
  };
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) throw std::runtime_error("server already running");
  stopping_.store(false);
  listener_ = listen_on(options_.host, options_.port, port_);
  pool_ = std::make_unique<runtime::ThreadPool>(options_.workers);
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  {
    std::lock_guard lock(runners_mutex_);
    for (runtime::BatchRunner* runner : runners_) runner->cancel();
  }
  sleep_cv_.notify_all();
  // shutdown_both() wakes the blocked accept without touching fd_; close()
  // must wait until the accept thread is joined because accept_loop reads
  // listener_.fd() concurrently.
  listener_.shutdown_both();
  {
    std::lock_guard lock(connections_mutex_);
    for (const auto& connection : connections_) {
      connection->socket.shutdown_both();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    std::lock_guard lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
    }
    connections_.clear();
  }
  // Destroying the pool drains any still-queued tasks; with the stopping
  // flag up they all resolve to cancelled responses quickly.
  pool_.reset();
}

void Server::reap_finished_connections() {
  std::lock_guard lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load() && (*it)->thread.joinable()) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    Socket accepted = accept_on(listener_.fd());
    if (!accepted.valid()) break;  // listener shut down
    reap_finished_connections();
    std::lock_guard lock(connections_mutex_);
    if (stopping_.load() || connections_.size() >= options_.max_connections) {
      continue;  // drop: accepted socket closes on scope exit
    }
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(accepted);
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { serve_connection(*raw); });
    connections_.push_back(std::move(connection));
  }
}

void Server::serve_connection(Connection& connection) {
  const int fd = connection.socket.fd();
  std::string request;
  try {
    while (!stopping_.load() && read_frame(fd, request)) {
      write_frame(fd, handle_request(request));
    }
  } catch (const ProtocolError&) {
    // A framing violation — truncated frame, garbage length prefix, peer
    // close mid-frame, peer vanished mid-response — is a clean
    // per-connection error: count it, drop this connection, and leave the
    // accept loop (and every other connection) untouched. During shutdown
    // the torn IO is expected, not a peer fault.
    if (!stopping_.load()) stats_.record_connection_error();
  } catch (const std::exception&) {
    // Non-protocol failure (allocation, handler bug): likewise confined to
    // this connection.
    if (!stopping_.load()) stats_.record_connection_error();
  }
  connection.done.store(true);
}

std::string Server::handle_request(const std::string& payload) {
  json::Value request;
  try {
    request = json::parse(payload);
  } catch (const std::exception& error) {
    stats_.record_protocol_error();
    return error_response(error.what());
  }
  std::string op;
  try {
    op = request.get_string("op", "");
  } catch (const std::exception&) {
    op.clear();
  }
  if (op == "job") return handle_job(request);
  if (op == "stats") return stats_payload();
  if (op == "health") return health_payload();
  if (op == "ping") return R"({"status":"ok","op":"ping"})";
  if (op == "catalog") return catalog_response();
  if (op == "drain") {
    drain();
    return R"({"status":"ok","op":"drain","draining":true})";
  }
  stats_.record_protocol_error();
  return error_response("unknown op '" + op +
                        "' (expected job|stats|health|ping|catalog|drain)");
}

std::string Server::handle_job(const json::Value& request) {
  const auto start = std::chrono::steady_clock::now();
  JobRequest job;
  try {
    job = parse_job(request);
  } catch (const std::exception& error) {
    stats_.record_protocol_error();
    return error_response(error.what());
  }
  const std::string kind_name = to_string(job.kind);

  // A draining shard finishes what it admitted but takes nothing new; the
  // rejection is deterministic so fleet clients can treat it exactly like
  // overload backpressure and route elsewhere.
  if (draining_.load()) {
    stats_.record_drain_rejection();
    return draining_response();
  }

  // Sleep jobs exist to occupy capacity; caching one would answer from the
  // cache in microseconds and defeat the test it serves.
  const bool use_cache = job.kind != JobKind::kSleep;
  const std::string key = canonical_key(job);
  if (use_cache) {
    if (std::optional<std::string> cached = cache_.get(key)) {
      stats_.record_job(kind_name, true, true, seconds_since(start));
      return *cached;
    }
  }

  // Exact admission control: admitted-but-unfinished jobs may not exceed
  // workers + queue_capacity. Beyond that the only honest answer is an
  // immediate, deterministic overload rejection.
  {
    std::lock_guard lock(admission_mutex_);
    if (admitted_ >= options_.workers + options_.queue_capacity) {
      stats_.record_overload();
      return overload_response();
    }
    ++admitted_;
  }

  auto promise = std::make_shared<std::promise<DispatchResult>>();
  std::future<DispatchResult> future = promise->get_future();
  const JobRequest job_copy = job;
  pool_->submit([this, promise, job_copy] {
    try {
      promise->set_value(run_job(job_copy, hooks_));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });

  DispatchResult result;
  try {
    result = future.get();
  } catch (const std::exception& error) {
    result = {error_response(error.what()), false, false};
  }
  {
    std::lock_guard lock(admission_mutex_);
    --admitted_;
  }
  if (result.ok && result.cacheable && use_cache) {
    cache_.put(key, result.payload);
  }
  stats_.record_job(kind_name, result.ok, false, seconds_since(start));
  return result.payload;
}

std::string Server::health_payload() const {
  std::string out = R"({"status":"ok","accepting":)";
  out += running_.load() && !stopping_.load() && !draining_.load() ? "true"
                                                                   : "false";
  out += ",\"draining\":";
  out += draining_.load() ? "true" : "false";
  out += ",\"shard_id\":" + json::quote(options_.shard_id);
  out += ",\"uptime_seconds\":" +
         json::number_to_string(seconds_since(started_at_));
  out += '}';
  return out;
}

std::string Server::stats_payload() const {
  const CacheStats cache = cache_.stats();
  std::string out = R"({"status":"ok")";
  out += ",\"shard_id\":" + json::quote(options_.shard_id);
  out += ",\"draining\":";
  out += draining_.load() ? "true" : "false";
  out += ",\"uptime_seconds\":" +
         json::number_to_string(seconds_since(started_at_));
  out += ",\"queue\":{";
  out += "\"depth\":" + std::to_string(pool_ ? pool_->queued() : 0);
  out += ",\"in_flight\":" + std::to_string(pool_ ? pool_->active() : 0);
  out += ",\"capacity\":" + std::to_string(options_.queue_capacity);
  out += ",\"workers\":" + std::to_string(options_.workers);
  out += "},\"cache\":{";
  out += "\"hits\":" + std::to_string(cache.hits);
  out += ",\"misses\":" + std::to_string(cache.misses);
  out += ",\"evictions\":" + std::to_string(cache.evictions);
  out += ",\"entries\":" + std::to_string(cache.entries);
  out += ",\"bytes\":" + std::to_string(cache.bytes);
  out += ",\"capacity_entries\":" + std::to_string(cache.capacity_entries);
  out += ",\"hit_rate\":" + json::number_to_string(cache.hit_rate());
  out += "},";
  out += stats_.to_json();
  out += '}';
  return out;
}

}  // namespace mrsc::serve
