// Rate-robustness sweep drivers (experiment T1).
//
// The paper's central robustness claim: computation is exact and independent
// of the specific reaction rates, as long as "fast" reactions are fast
// relative to "slow" ones. These helpers operationalize the claim two ways:
//   1. sweep the k_fast/k_slow separation ratio over decades, and
//   2. jitter every individual rate constant by a log-uniform multiplicative
//      factor (kinetic constants "are not constant at all"),
// re-running an experiment at each point and reporting its error.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "util/rng.hpp"

namespace mrsc::analysis {

struct SweepPoint {
  double ratio = 0.0;          ///< k_fast / k_slow
  double jitter_factor = 1.0;  ///< per-reaction rate spread (1 = none)
  std::uint64_t seed = 0;      ///< jitter seed
  double error = 0.0;          ///< experiment-defined error metric
  bool failed = false;         ///< the experiment threw (e.g. did not settle)
};

/// Applies a log-uniform multiplicative jitter in [1/factor, factor] to every
/// reaction's rate multiplier. Factor 1 clears the multipliers.
void apply_rate_jitter(core::ReactionNetwork& network, double factor,
                       util::Rng& rng);

/// An experiment maps a configured network-under-test to an error metric.
/// The sweep calls `configure` before each run so the experiment can rebuild
/// or mutate its network for the given policy/jitter.
struct RateSweepConfig {
  std::vector<double> ratios = {10.0, 100.0, 1000.0, 10000.0, 100000.0};
  std::vector<double> jitter_factors = {1.0};
  std::uint64_t base_seed = 42;
  double k_slow = 1.0;  ///< held fixed; k_fast = ratio * k_slow

  /// Worker threads for the sweep (executed through runtime::BatchRunner).
  /// 1 keeps the historical serial path on the calling thread; 0 selects the
  /// hardware concurrency. Each grid point's seed is fixed up front
  /// (base_seed + flat row-major index), so results are bitwise identical
  /// for every thread count.
  std::size_t threads = 1;
};

/// Runs `experiment(policy, jitter_factor, seed)` over the grid; the
/// experiment returns its error metric (and may throw to mark failure).
/// With `config.threads != 1` the experiment callback is invoked
/// concurrently and must be thread-safe (build a fresh network per call, as
/// all in-repo experiments do).
[[nodiscard]] std::vector<SweepPoint> run_rate_sweep(
    const RateSweepConfig& config,
    const std::function<double(const core::RatePolicy&, double jitter_factor,
                               std::uint64_t seed)>& experiment);

/// Renders sweep results as an aligned text table.
[[nodiscard]] std::string format_sweep_table(
    const std::vector<SweepPoint>& points, const std::string& error_label);

}  // namespace mrsc::analysis
