#include "analysis/harness.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace mrsc::analysis {

namespace {

/// Stops the run once a predicate holds (checked after each accepted step).
class StopWhen : public sim::Observer {
 public:
  explicit StopWhen(std::function<bool()> predicate)
      : predicate_(std::move(predicate)) {}
  void on_step(double, std::span<double>) override {}
  bool should_stop(double, std::span<const double>) override {
    return predicate_();
  }

 private:
  std::function<bool()> predicate_;
};

/// Decodes a dual-rail counter on every rising edge of a clock phase.
class CounterProbe : public sim::Observer {
 public:
  CounterProbe(const dsp::CounterHandles& handles, double low, double high,
               std::size_t skip_edges)
      : handles_(&handles),
        edge_(handles.clock.phase_r, low, high),
        skip_edges_(skip_edges) {}

  void on_step(double t, std::span<double> state) override {
    const std::size_t before = edge_.rising_edges().size();
    edge_.on_step(t, state);
    if (edge_.rising_edges().size() == before) return;
    ++edges_seen_;
    if (edges_seen_ <= skip_edges_) return;
    values_.push_back(dsp::decode_counter(*handles_, state));
    times_.push_back(t);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& values() const {
    return values_;
  }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }

 private:
  const dsp::CounterHandles* handles_;
  sim::EdgeDetector edge_;
  std::size_t skip_edges_;
  std::size_t edges_seen_ = 0;
  std::vector<std::uint64_t> values_;
  std::vector<double> times_;
};

/// Drives an FSM: injects one input token per C_G rising edge, decodes state
/// and reads/clears output tokens per C_R rising edge.
class FsmProbe : public sim::Observer {
 public:
  FsmProbe(const fsm::FsmHandles& handles, std::span<const std::size_t> inputs,
           double low, double high, std::size_t skip_edges)
      : handles_(&handles),
        inputs_(inputs.begin(), inputs.end()),
        inject_edge_(handles.clock.phase_g, low, high),
        read_edge_(handles.clock.phase_r, low, high),
        skip_edges_(skip_edges) {}

  void on_step(double t, std::span<double> state) override {
    const std::size_t injected_before = inject_edge_.rising_edges().size();
    inject_edge_.on_step(t, state);
    if (inject_edge_.rising_edges().size() != injected_before) {
      ++inject_edges_seen_;
      if (inject_edges_seen_ > skip_edges_ &&
          next_input_ < inputs_.size()) {
        state[handles_->input[inputs_[next_input_]].index()] += 1.0;
        ++next_input_;
      }
    }
    const std::size_t read_before = read_edge_.rising_edges().size();
    read_edge_.on_step(t, state);
    if (read_edge_.rising_edges().size() != read_before) {
      ++read_edges_seen_;
      if (read_edges_seen_ <= skip_edges_) return;
      if (states_.size() >= inputs_.size()) return;
      states_.push_back(fsm::decode_state(*handles_, state));
      // Collect the output token (if any) and clear the output species.
      std::size_t symbol = fsm::kNoOutput;
      for (std::size_t x = 0; x < handles_->output.size(); ++x) {
        const std::size_t idx = handles_->output[x].index();
        if (state[idx] > 0.5) symbol = x;
        state[idx] = 0.0;
      }
      outputs_.push_back(symbol);
      read_times_.push_back(t);
    }
  }

  [[nodiscard]] const std::vector<std::size_t>& states() const {
    return states_;
  }
  [[nodiscard]] const std::vector<std::size_t>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const std::vector<double>& read_times() const {
    return read_times_;
  }

 private:
  const fsm::FsmHandles* handles_;
  std::vector<std::size_t> inputs_;
  sim::EdgeDetector inject_edge_;
  sim::EdgeDetector read_edge_;
  std::size_t skip_edges_;
  std::size_t inject_edges_seen_ = 0;
  std::size_t read_edges_seen_ = 0;
  std::size_t next_input_ = 0;
  std::vector<std::size_t> states_;
  std::vector<std::size_t> outputs_;
  std::vector<double> read_times_;
};

double mean_edge_spacing(const std::vector<double>& edges) {
  if (edges.size() < 2) return 0.0;
  return (edges.back() - edges.front()) /
         static_cast<double>(edges.size() - 1);
}

/// Error text for a run that ended before delivering all its outputs. When
/// the batch runtime's abort hook (deadline/cancellation, set on
/// ClockedRunOptions::ode.abort) stopped the integrator, say so instead of
/// blaming t_end.
std::string incomplete_run_error(const char* function, std::size_t got,
                                 std::size_t wanted, const char* noun,
                                 const sim::OdeResult& ode) {
  std::string message = std::string(function) + ": simulation " +
                        (ode.aborted ? "aborted by deadline/cancellation"
                                     : "ended") +
                        " after " + std::to_string(got) + "/" +
                        std::to_string(wanted) + " " + noun;
  if (!ode.aborted) message += "; increase OdeOptions::t_end";
  return message;
}

}  // namespace

double suggest_t_end(const sync::ClockSpec& clock_spec,
                     const core::RatePolicy& policy, std::size_t cycles) {
  // Empirically the period is ~15 * stretch / k_slow; provision 2.5x.
  const double period_guess = 15.0 * clock_spec.phase_stretch / policy.k_slow;
  return 2.5 * period_guess * static_cast<double>(cycles + 3);
}

ClockedRunResult run_clocked_circuit(const core::ReactionNetwork& network,
                                     const sync::CompiledCircuit& circuit,
                                     const std::string& in_port,
                                     std::span<const double> samples,
                                     const std::string& out_port,
                                     const ClockedRunOptions& options) {
  if (samples.empty()) {
    throw std::invalid_argument("run_clocked_circuit: no input samples");
  }
  const double token = circuit.clock.token;
  const double low = options.threshold_low * token;
  const double high = options.threshold_high * token;

  // A cycle: inject x[k] at a C_R rising edge; the red phase runs the
  // combinational pass (consuming the injected sample and every register's
  // blue species) and deposits into register red species and output ports;
  // sample y[k] at the C_G rising edge that ends that red phase. Output k
  // corresponds to the red phase of injection k, so the sampler skips one
  // more green edge than the injector skips red edges (the green edge at
  // t~0 precedes the first detected red edge).
  sim::EdgeTriggeredSampler sampler(circuit.clock.phase_g, low, high,
                                    circuit.output(out_port),
                                    /*clear_after_read=*/true,
                                    /*skip_edges=*/options.warmup_edges + 1);
  sim::EdgeTriggeredInjector injector(
      circuit.clock.phase_r, low, high, circuit.input(in_port),
      std::vector<double>(samples.begin(), samples.end()),
      /*skip_edges=*/options.warmup_edges);
  const std::size_t wanted = samples.size();
  StopWhen stopper([&] { return sampler.samples().size() >= wanted; });

  // Sampler first: at edge k it reads the result of the sample injected at
  // edge k-1, before the injector adds this cycle's input.
  std::vector<sim::Observer*> observers = {&sampler, &injector};
  observers.insert(observers.end(), options.extra_observers.begin(),
                   options.extra_observers.end());
  observers.push_back(&stopper);

  ClockedRunResult result;
  result.ode = sim::simulate_ode(
      network, options.ode, network.initial_state(),
      std::span<sim::Observer* const>(observers.data(), observers.size()));
  result.outputs = sampler.samples();
  result.output_times = sampler.sample_times();
  result.input_times = injector.injection_times();
  result.clock_period = mean_edge_spacing(result.output_times);
  if (result.outputs.size() < wanted) {
    throw std::runtime_error(incomplete_run_error(
        "run_clocked_circuit", result.outputs.size(), wanted, "outputs",
        result.ode));
  }
  return result;
}

ClockedRunResult run_async_circuit(const core::ReactionNetwork& network,
                                   const async::CompiledAsyncCircuit& circuit,
                                   const std::string& in_port,
                                   std::span<const double> samples,
                                   const std::string& out_port,
                                   const ClockedRunOptions& options) {
  if (samples.empty()) {
    throw std::invalid_argument("run_async_circuit: no input samples");
  }
  // The heartbeat token is 1.0 by construction.
  const double low = options.threshold_low;
  const double high = options.threshold_high;

  // Sample on heartbeat-green edges (the release/deposit phase just ended;
  // clearing the red output unblocks the next green-to-blue phase); inject
  // on heartbeat-blue edges (just before the next release window opens).
  sim::EdgeTriggeredSampler sampler(circuit.pacing, low, high,
                                    circuit.output(out_port),
                                    /*clear_after_read=*/true,
                                    /*skip_edges=*/options.warmup_edges + 1);
  sim::EdgeTriggeredInjector injector(
      circuit.pacing_inject, low, high, circuit.input(in_port),
      std::vector<double>(samples.begin(), samples.end()),
      /*skip_edges=*/options.warmup_edges);
  const std::size_t wanted = samples.size();
  StopWhen stopper([&] { return sampler.samples().size() >= wanted; });
  std::vector<sim::Observer*> observers = {&sampler, &injector};
  observers.insert(observers.end(), options.extra_observers.begin(),
                   options.extra_observers.end());
  observers.push_back(&stopper);

  ClockedRunResult result;
  result.ode = sim::simulate_ode(
      network, options.ode, network.initial_state(),
      std::span<sim::Observer* const>(observers.data(), observers.size()));
  result.outputs = sampler.samples();
  result.output_times = sampler.sample_times();
  result.input_times = injector.injection_times();
  result.clock_period = mean_edge_spacing(result.output_times);
  if (result.outputs.size() < wanted) {
    throw std::runtime_error(incomplete_run_error(
        "run_async_circuit", result.outputs.size(), wanted, "outputs",
        result.ode));
  }
  return result;
}

MultiRunResult run_clocked_circuit_multi(
    const core::ReactionNetwork& network, const sync::CompiledCircuit& circuit,
    std::span<const PortSamples> inputs,
    std::span<const std::string> out_ports, const ClockedRunOptions& options) {
  if (inputs.empty() || out_ports.empty()) {
    throw std::invalid_argument(
        "run_clocked_circuit_multi: need inputs and outputs");
  }
  const std::size_t cycles = inputs.front().samples.size();
  for (const PortSamples& in : inputs) {
    if (in.samples.size() != cycles || cycles == 0) {
      throw std::invalid_argument(
          "run_clocked_circuit_multi: input streams must be equal-length "
          "and non-empty");
    }
  }
  const double token = circuit.clock.token;
  const double low = options.threshold_low * token;
  const double high = options.threshold_high * token;

  std::vector<std::unique_ptr<sim::Observer>> owned;
  std::vector<sim::EdgeTriggeredSampler*> samplers;
  std::vector<sim::Observer*> observers;
  // Samplers first (read previous cycle before this cycle's injection).
  for (const std::string& port : out_ports) {
    auto sampler = std::make_unique<sim::EdgeTriggeredSampler>(
        circuit.clock.phase_g, low, high, circuit.output(port),
        /*clear_after_read=*/true,
        /*skip_edges=*/options.warmup_edges + 1);
    samplers.push_back(sampler.get());
    observers.push_back(sampler.get());
    owned.push_back(std::move(sampler));
  }
  for (const PortSamples& in : inputs) {
    auto injector = std::make_unique<sim::EdgeTriggeredInjector>(
        circuit.clock.phase_r, low, high, circuit.input(in.port), in.samples,
        /*skip_edges=*/options.warmup_edges);
    observers.push_back(injector.get());
    owned.push_back(std::move(injector));
  }
  observers.insert(observers.end(), options.extra_observers.begin(),
                   options.extra_observers.end());
  StopWhen stopper([&] {
    return std::ranges::all_of(samplers, [&](const auto* s) {
      return s->samples().size() >= cycles;
    });
  });
  observers.push_back(&stopper);

  MultiRunResult result;
  result.ode = sim::simulate_ode(
      network, options.ode, network.initial_state(),
      std::span<sim::Observer* const>(observers.data(), observers.size()));
  for (std::size_t i = 0; i < out_ports.size(); ++i) {
    if (samplers[i]->samples().size() < cycles) {
      throw std::runtime_error(incomplete_run_error(
          ("run_clocked_circuit_multi: port '" + out_ports[i] + "'").c_str(),
          samplers[i]->samples().size(), cycles, "outputs", result.ode));
    }
    result.outputs.emplace(out_ports[i], samplers[i]->samples());
  }
  if (!samplers.empty()) {
    result.clock_period = mean_edge_spacing(samplers[0]->sample_times());
  }
  return result;
}

std::vector<double> signed_series(const MultiRunResult& result,
                                  const std::string& name) {
  const auto pos = result.outputs.find(name + "_p");
  const auto neg = result.outputs.find(name + "_n");
  if (pos == result.outputs.end() || neg == result.outputs.end()) {
    throw std::out_of_range("signed_series: missing rails for '" + name +
                            "'");
  }
  std::vector<double> out(pos->second.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = pos->second[i] - neg->second[i];
  }
  return out;
}

CounterRunResult run_counter(const core::ReactionNetwork& network,
                             const dsp::CounterHandles& handles,
                             std::size_t increments,
                             const ClockedRunOptions& options) {
  if (increments == 0) {
    throw std::invalid_argument("run_counter: need >= 1 increment");
  }
  const double token = handles.clock.token;
  const double low = options.threshold_low * token;
  const double high = options.threshold_high * token;

  // Inject increment tokens at the rising edge of the *compute* phase.
  sim::EdgeTriggeredInjector injector(
      handles.clock.phase_g, low, high, handles.increment,
      std::vector<double>(increments, 1.0),
      /*skip_edges=*/options.warmup_edges);
  // Decode on C_R rising edges (write-back complete). The k-th injection
  // happens at the k-th non-warmup C_G edge, which lies *between* the k-th
  // and (k+1)-th C_R edges counted with the same warmup skip — so skipping
  // `warmup_edges` red edges aligns read k with increment k.
  CounterProbe probe(handles, low, high,
                     /*skip_edges=*/options.warmup_edges);
  StopWhen stopper([&] { return probe.values().size() >= increments; });

  std::vector<sim::Observer*> observers = {&probe, &injector};
  observers.insert(observers.end(), options.extra_observers.begin(),
                   options.extra_observers.end());
  observers.push_back(&stopper);

  CounterRunResult result;
  result.ode = sim::simulate_ode(
      network, options.ode, network.initial_state(),
      std::span<sim::Observer* const>(observers.data(), observers.size()));
  result.values = probe.values();
  result.read_times = probe.times();
  if (result.values.size() < increments) {
    throw std::runtime_error(incomplete_run_error(
        "run_counter", result.values.size(), increments, "reads",
        result.ode));
  }
  return result;
}

FsmRunResult run_fsm(const core::ReactionNetwork& network,
                     const fsm::FsmHandles& handles,
                     std::span<const std::size_t> inputs,
                     const ClockedRunOptions& options) {
  if (inputs.empty()) {
    throw std::invalid_argument("run_fsm: empty input string");
  }
  for (const std::size_t a : inputs) {
    if (a >= handles.input.size()) {
      throw std::invalid_argument("run_fsm: input symbol out of range");
    }
  }
  const double token = handles.clock.token;
  FsmProbe probe(handles, inputs, options.threshold_low * token,
                 options.threshold_high * token, options.warmup_edges);
  const std::size_t wanted = inputs.size();
  StopWhen stopper([&] { return probe.states().size() >= wanted; });
  std::vector<sim::Observer*> observers = {&probe};
  observers.insert(observers.end(), options.extra_observers.begin(),
                   options.extra_observers.end());
  observers.push_back(&stopper);

  FsmRunResult result;
  result.ode = sim::simulate_ode(
      network, options.ode, network.initial_state(),
      std::span<sim::Observer* const>(observers.data(), observers.size()));
  result.states = probe.states();
  result.outputs = probe.outputs();
  result.read_times = probe.read_times();
  if (result.states.size() < wanted) {
    throw std::runtime_error(incomplete_run_error(
        "run_fsm", result.states.size(), wanted, "steps", result.ode));
  }
  return result;
}

}  // namespace mrsc::analysis
