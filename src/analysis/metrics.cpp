#include "analysis/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mrsc::analysis {

namespace {
void check_sizes(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("metrics: series must be equal-length, "
                                "non-empty");
  }
}
}  // namespace

double rmse(std::span<const double> a, std::span<const double> b) {
  check_sizes(a, b);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  check_sizes(a, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double max_relative_error(std::span<const double> a, std::span<const double> b,
                          double floor) {
  check_sizes(a, b);
  double scale = floor;
  for (const double v : b) scale = std::max(scale, std::abs(v));
  return max_abs_error(a, b) / scale;
}

std::vector<bool> digitize(std::span<const double> series, double low,
                           double high) {
  if (!(low < high)) {
    throw std::invalid_argument("digitize: low must be < high");
  }
  std::vector<bool> bits;
  bits.reserve(series.size());
  bool state = !series.empty() && series.front() >= high;
  for (const double v : series) {
    if (!state && v >= high) state = true;
    if (state && v <= low) state = false;
    bits.push_back(state);
  }
  return bits;
}

std::size_t hamming_distance(const std::vector<bool>& a,
                             const std::vector<bool>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: size mismatch");
  }
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++distance;
  }
  return distance;
}

double mean(std::span<const double> series) {
  if (series.empty()) {
    throw std::invalid_argument("mean: empty series");
  }
  double acc = 0.0;
  for (const double v : series) acc += v;
  return acc / static_cast<double>(series.size());
}

double stddev(std::span<const double> series) {
  if (series.size() < 2) {
    throw std::invalid_argument("stddev: need >= 2 samples");
  }
  const double m = mean(series);
  double acc = 0.0;
  for (const double v : series) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(series.size() - 1));
}

}  // namespace mrsc::analysis
