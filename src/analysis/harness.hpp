// Experiment harness for clocked molecular circuits.
//
// Drives a compiled synchronous design the way the paper drives its examples:
// one input sample is injected per clock cycle, the output register is read
// (and cleared) once per cycle, and the run stops as soon as the requested
// number of outputs has been collected. Edges of the clock's red phase define
// the cycle boundary: by the time C_R rises, the write-back (blue) phase has
// completed, so outputs are valid and inputs injected now are ready for the
// next compute (green) phase.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "async/circuit.hpp"
#include "dsp/counter.hpp"
#include "fsm/fsm.hpp"
#include "sim/ode.hpp"
#include "sync/circuit.hpp"

namespace mrsc::analysis {

struct ClockedRunOptions {
  sim::OdeOptions ode;  ///< t_end is treated as an upper bound; the run
                        ///< stops early once all outputs are sampled. Set
                        ///< `ode.abort` (the batch runtime does) to give the
                        ///< run a deadline/cancellation hook; an aborted run
                        ///< throws with an "aborted" message rather than
                        ///< "increase t_end".
  /// Edge-detector hysteresis thresholds, as fractions of the clock token.
  double threshold_low = 0.2;
  double threshold_high = 0.6;
  /// Clock edges to let pass before the first injection. During warmup the
  /// circuit free-runs on zero input; whatever it deposits into output
  /// ports (e.g. register initial values) is discarded. Use 0 to observe
  /// initial values in the first output.
  std::size_t warmup_edges = 1;
  /// Additional observers appended after the harness's own (non-owning; must
  /// outlive the run). The stress layer hooks its scheduled fault events —
  /// spurious injections and molecule losses — in here.
  std::vector<sim::Observer*> extra_observers;
};

struct ClockedRunResult {
  std::vector<double> outputs;       ///< one sampled output per input sample
  std::vector<double> output_times;  ///< when each was sampled
  std::vector<double> input_times;   ///< when each input was injected
  sim::OdeResult ode;
  double clock_period = 0.0;  ///< measured from C_R rising edges
};

/// Feeds `samples` into input port `in_port` of `circuit` (one per cycle) and
/// collects the same number of outputs from `out_port`.
[[nodiscard]] ClockedRunResult run_clocked_circuit(
    const core::ReactionNetwork& network, const sync::CompiledCircuit& circuit,
    const std::string& in_port, std::span<const double> samples,
    const std::string& out_port, const ClockedRunOptions& options);

/// Suggests an ODE t_end generous enough for `cycles` clock cycles of a clock
/// with the given spec under the given rate policy (the run stops early, so
/// over-provisioning is cheap).
[[nodiscard]] double suggest_t_end(const sync::ClockSpec& clock_spec,
                                   const core::RatePolicy& policy,
                                   std::size_t cycles);

/// One input port's per-cycle sample stream for multi-port runs.
struct PortSamples {
  std::string port;
  std::vector<double> samples;
};

struct MultiRunResult {
  /// Output port name -> one sampled value per cycle.
  std::map<std::string, std::vector<double>> outputs;
  sim::OdeResult ode;
  double clock_period = 0.0;
};

/// Multi-port variant of `run_clocked_circuit`: drives several input ports
/// (all streams must have equal length) and samples several output ports.
/// Dual-rail designs use this to drive/read both rails of signed signals;
/// see `signed_series`.
[[nodiscard]] MultiRunResult run_clocked_circuit_multi(
    const core::ReactionNetwork& network, const sync::CompiledCircuit& circuit,
    std::span<const PortSamples> inputs,
    std::span<const std::string> out_ports, const ClockedRunOptions& options);

/// Reconstructs a signed per-cycle series from a dual-rail output pair
/// (`<name>_p` minus `<name>_n`) in a MultiRunResult.
[[nodiscard]] std::vector<double> signed_series(const MultiRunResult& result,
                                                const std::string& name);

struct CounterRunResult {
  /// Decoded counter value after each increment (read on C_R rising edges).
  std::vector<std::uint64_t> values;
  std::vector<double> read_times;
  sim::OdeResult ode;
};

/// Drives a dual-rail counter for `increments` cycles: injects one increment
/// token at each rising edge of the compute phase and decodes the counter at
/// each subsequent rising edge of the write-back-complete (red) phase.
[[nodiscard]] CounterRunResult run_counter(
    const core::ReactionNetwork& network, const dsp::CounterHandles& handles,
    std::size_t increments, const ClockedRunOptions& options);

/// Drives a compiled *self-timed* circuit: injects one input sample and
/// samples (and clears!) the output once per handshake cycle, paced on the
/// heartbeat register's green species. Clearing the output is not optional:
/// outputs are red-colored, and an unconsumed output suppresses the red
/// absence indicator, stalling the pipeline — downstream must consume what
/// the pipeline produces.
[[nodiscard]] ClockedRunResult run_async_circuit(
    const core::ReactionNetwork& network,
    const async::CompiledAsyncCircuit& circuit, const std::string& in_port,
    std::span<const double> samples, const std::string& out_port,
    const ClockedRunOptions& options);

struct FsmRunResult {
  /// Decoded state after each input symbol.
  std::vector<std::size_t> states;
  /// Output symbol emitted in each cycle (fsm::kNoOutput when none).
  std::vector<std::size_t> outputs;
  std::vector<double> read_times;
  sim::OdeResult ode;
};

/// Drives a compiled FSM over an input string: injects the token of input
/// symbol `inputs[k]` at the k-th rising edge of the compute phase, decodes
/// the state and collects (then clears) the output tokens at the following
/// rising edge of the red phase.
[[nodiscard]] FsmRunResult run_fsm(const core::ReactionNetwork& network,
                                   const fsm::FsmHandles& handles,
                                   std::span<const std::size_t> inputs,
                                   const ClockedRunOptions& options);

}  // namespace mrsc::analysis
