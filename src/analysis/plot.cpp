#include "analysis/plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mrsc::analysis {

std::string ascii_plot(std::span<const Series> series,
                       const AsciiPlotOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("ascii_plot: no series");
  }
  double x_min = 1e300, x_max = -1e300;
  double y_min = options.y_min;
  double y_max = options.y_max;
  const bool auto_y = y_max < y_min;
  if (auto_y) {
    y_min = 1e300;
    y_max = -1e300;
  }
  for (const Series& s : series) {
    if (s.x.size() != s.y.size()) {
      throw std::invalid_argument("ascii_plot: series size mismatch");
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      if (auto_y) {
        y_min = std::min(y_min, s.y[i]);
        y_max = std::max(y_max, s.y[i]);
      }
    }
  }
  if (!(x_max > x_min)) x_max = x_min + 1.0;
  if (!(y_max > y_min)) y_max = y_min + 1.0;

  const std::size_t w = std::max<std::size_t>(options.width, 10);
  const std::size_t h = std::max<std::size_t>(options.height, 4);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double fx = (s.x[i] - x_min) / (x_max - x_min);
      const double fy = (s.y[i] - y_min) / (y_max - y_min);
      if (fy < 0.0 || fy > 1.0) continue;
      const std::size_t col = std::min(
          w - 1, static_cast<std::size_t>(fx * static_cast<double>(w - 1) +
                                          0.5));
      const std::size_t row_from_bottom = std::min(
          h - 1, static_cast<std::size_t>(fy * static_cast<double>(h - 1) +
                                          0.5));
      grid[h - 1 - row_from_bottom][col] = s.glyph;
    }
  }

  std::ostringstream out;
  out << std::string(8, ' ');
  for (const Series& s : series) {
    out << s.glyph << "=" << s.label << "  ";
  }
  out << "\n";
  for (std::size_t row = 0; row < h; ++row) {
    const double y_val =
        y_max - (y_max - y_min) * static_cast<double>(row) /
                    static_cast<double>(h - 1);
    char label[16];
    std::snprintf(label, sizeof label, "%7.3f", y_val);
    out << label << "|" << grid[row] << "\n";
  }
  out << std::string(8, ' ') << std::string(w, '-') << "\n";
  out << std::string(8, ' ') << "t = " << x_min << " .. " << x_max << "\n";
  return out.str();
}

std::string plot_trajectory(const sim::Trajectory& trajectory,
                            const core::ReactionNetwork& network,
                            std::span<const core::SpeciesId> ids,
                            const AsciiPlotOptions& options) {
  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '~'};
  std::vector<Series> series;
  series.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Series s;
    s.label = network.species_name(ids[i]);
    s.x = trajectory.times();
    s.y = trajectory.series(ids[i]);
    s.glyph = kGlyphs[i % sizeof kGlyphs];
    series.push_back(std::move(s));
  }
  return ascii_plot(series, options);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_file: cannot open '" + path + "'");
  }
  file << content;
  if (!file) {
    throw std::runtime_error("write_file: write failed for '" + path + "'");
  }
}

}  // namespace mrsc::analysis
