// Error metrics and signal digitization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mrsc::analysis {

/// Root-mean-square error between two equal-length series.
[[nodiscard]] double rmse(std::span<const double> a, std::span<const double> b);

/// Maximum absolute error between two equal-length series.
[[nodiscard]] double max_abs_error(std::span<const double> a,
                                   std::span<const double> b);

/// max |a-b| / max(|b|, floor): relative worst-case error against reference
/// `b`, guarded against tiny references.
[[nodiscard]] double max_relative_error(std::span<const double> a,
                                        std::span<const double> b,
                                        double floor = 1e-9);

/// Thresholds an analog series into bits with hysteresis: 1 once the value
/// exceeds `high`, back to 0 once it drops below `low`. The initial logic
/// value is `value >= high` of the first sample.
[[nodiscard]] std::vector<bool> digitize(std::span<const double> series,
                                         double low, double high);

/// Number of positions where two bit sequences differ.
[[nodiscard]] std::size_t hamming_distance(const std::vector<bool>& a,
                                           const std::vector<bool>& b);

/// Mean of a series.
[[nodiscard]] double mean(std::span<const double> series);

/// Sample standard deviation of a series.
[[nodiscard]] double stddev(std::span<const double> series);

}  // namespace mrsc::analysis
