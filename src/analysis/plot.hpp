// ASCII waveform rendering and CSV export.
//
// The bench binaries regenerate the paper's figures as time series; these
// helpers render them directly in the terminal (so `bench_*` output is
// self-contained) and dump CSV for external plotting.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "sim/trajectory.hpp"

namespace mrsc::analysis {

struct AsciiPlotOptions {
  std::size_t width = 100;   ///< character columns
  std::size_t height = 18;   ///< character rows
  double y_min = 0.0;
  double y_max = -1.0;  ///< < y_min means auto-scale
};

/// One labelled series for the plotter.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

/// Renders overlaid series on a shared axis grid.
[[nodiscard]] std::string ascii_plot(std::span<const Series> series,
                                     const AsciiPlotOptions& options = {});

/// Convenience: plots selected species of a trajectory (glyphs cycle through
/// a fixed palette).
[[nodiscard]] std::string plot_trajectory(
    const sim::Trajectory& trajectory, const core::ReactionNetwork& network,
    std::span<const core::SpeciesId> ids, const AsciiPlotOptions& options = {});

/// Writes a string to a file (used for CSV dumps); throws on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace mrsc::analysis
