#include "analysis/conservation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/matrix.hpp"

namespace mrsc::analysis {

std::vector<std::vector<double>> conservation_laws(
    const core::ReactionNetwork& network, double tol) {
  const std::size_t n = network.species_count();   // columns of S^T
  const std::size_t m = network.reaction_count();  // rows of S^T
  if (n == 0) return {};

  // Build A = S^T (m x n); we want the null space of A.
  const util::Matrix s = network.stoichiometric_matrix();
  util::Matrix a(m, n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = s(c, r);
  }

  // Gaussian elimination to reduced row echelon form with partial pivoting.
  std::vector<std::size_t> pivot_column_of_row;
  std::size_t row = 0;
  for (std::size_t col = 0; col < n && row < m; ++col) {
    // Find the largest pivot in this column at or below `row`.
    std::size_t best = row;
    for (std::size_t r = row + 1; r < m; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(best, col))) best = r;
    }
    if (std::abs(a(best, col)) < tol) continue;  // free column
    if (best != row) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(best, c), a(row, c));
    }
    const double inv = 1.0 / a(row, col);
    for (std::size_t c = 0; c < n; ++c) a(row, c) *= inv;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == row) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) a(r, c) -= factor * a(row, c);
    }
    pivot_column_of_row.push_back(col);
    ++row;
  }

  // Free columns parameterize the null space: for each free column f, the
  // basis vector has w_f = 1 and w_p = -a(row_of_p, f) for pivot columns p.
  std::vector<bool> is_pivot(n, false);
  for (const std::size_t p : pivot_column_of_row) is_pivot[p] = true;

  std::vector<std::vector<double>> basis;
  for (std::size_t f = 0; f < n; ++f) {
    if (is_pivot[f]) continue;
    std::vector<double> w(n, 0.0);
    w[f] = 1.0;
    for (std::size_t r = 0; r < pivot_column_of_row.size(); ++r) {
      w[pivot_column_of_row[r]] = -a(r, f);
    }
    // Normalize: largest magnitude entry = 1, tiny entries snapped to 0.
    double max_mag = 0.0;
    for (const double v : w) max_mag = std::max(max_mag, std::abs(v));
    for (double& v : w) {
      v /= max_mag;
      if (std::abs(v) < tol) v = 0.0;
    }
    basis.push_back(std::move(w));
  }
  return basis;
}

double conserved_quantity(const std::vector<double>& law,
                          std::span<const double> state) {
  if (law.size() != state.size()) {
    throw std::invalid_argument("conserved_quantity: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < law.size(); ++i) acc += law[i] * state[i];
  return acc;
}

}  // namespace mrsc::analysis
