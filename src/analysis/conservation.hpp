// Conservation-law analysis.
//
// A conservation law of a CRN is a weight vector w >= over species with
// w^T S = 0 (S the stoichiometric matrix): the weighted sum of
// concentrations sum_i w_i x_i is invariant along every trajectory,
// deterministic or stochastic. The paper's constructions are full of them —
// the clock token, each register triple, every dual-rail bit pair — and the
// tests use the automatically discovered laws as structural invariants.
#pragma once

#include <vector>

#include "core/network.hpp"

namespace mrsc::analysis {

/// Returns a basis of the left null space of the stoichiometric matrix,
/// i.e. one weight vector (indexed by SpeciesId) per independent
/// conservation law. Entries smaller than `tol` (after normalization) are
/// snapped to zero. The basis is not unique; each vector is scaled so its
/// largest-magnitude entry is 1.
[[nodiscard]] std::vector<std::vector<double>> conservation_laws(
    const core::ReactionNetwork& network, double tol = 1e-9);

/// Evaluates w . x for a law and a state.
[[nodiscard]] double conserved_quantity(const std::vector<double>& law,
                                        std::span<const double> state);

}  // namespace mrsc::analysis
