#include "analysis/sweep.hpp"

#include <iomanip>
#include <sstream>

#include "runtime/batch.hpp"

namespace mrsc::analysis {

void apply_rate_jitter(core::ReactionNetwork& network, double factor,
                       util::Rng& rng) {
  if (factor < 1.0) {
    throw std::invalid_argument("apply_rate_jitter: factor must be >= 1");
  }
  for (std::size_t j = 0; j < network.reaction_count(); ++j) {
    const core::ReactionId id{
        static_cast<core::ReactionId::underlying_type>(j)};
    core::Reaction& reaction = network.reaction_mutable(id);
    if (factor == 1.0) {
      reaction.set_rate_multiplier(1.0);
    } else {
      // Compose with any build-time multiplier (e.g. the clock's
      // phase-stretch) instead of overwriting it.
      reaction.set_rate_multiplier(reaction.rate_multiplier() *
                                   rng.log_uniform_jitter(factor));
    }
  }
}

std::vector<SweepPoint> run_rate_sweep(
    const RateSweepConfig& config,
    const std::function<double(const core::RatePolicy&, double, std::uint64_t)>&
        experiment) {
  // Lay the whole grid out first, seeds included, so that execution order
  // (and therefore worker count) cannot influence any point's inputs.
  std::vector<SweepPoint> points;
  std::uint64_t seed = config.base_seed;
  for (const double ratio : config.ratios) {
    for (const double jitter : config.jitter_factors) {
      SweepPoint point;
      point.ratio = ratio;
      point.jitter_factor = jitter;
      point.seed = seed++;
      points.push_back(point);
    }
  }

  runtime::BatchRunner runner({.threads = config.threads});
  runner.for_each_index(points.size(), [&](std::size_t i) {
    SweepPoint& point = points[i];
    core::RatePolicy policy;
    policy.k_slow = config.k_slow;
    policy.k_fast = point.ratio * config.k_slow;
    try {
      point.error = experiment(policy, point.jitter_factor, point.seed);
    } catch (const std::exception&) {
      point.failed = true;
    }
  });
  return points;
}

std::string format_sweep_table(const std::vector<SweepPoint>& points,
                               const std::string& error_label) {
  std::ostringstream out;
  out << std::left << std::setw(14) << "k_fast/k_slow" << std::setw(10)
      << "jitter" << std::setw(18) << error_label << "\n";
  out << std::string(42, '-') << "\n";
  for (const SweepPoint& point : points) {
    out << std::left << std::setw(14) << point.ratio << std::setw(10)
        << point.jitter_factor;
    if (point.failed) {
      out << "FAILED";
    } else {
      out << std::scientific << std::setprecision(3) << point.error
          << std::defaultfloat;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mrsc::analysis
