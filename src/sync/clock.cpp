#include "sync/clock.hpp"

#include <stdexcept>

#include "core/builder.hpp"

namespace mrsc::sync {

namespace {
using core::RateCategory;
using core::SpeciesId;
}  // namespace

ClockHandles build_clock(core::ReactionNetwork& network,
                         const ClockSpec& spec) {
  if (spec.token <= 0.0) {
    throw std::invalid_argument("build_clock: token must be positive");
  }
  if (spec.phase_stretch < 1.0) {
    throw std::invalid_argument("build_clock: phase_stretch must be >= 1");
  }
  core::NetworkBuilder builder(network);
  const std::string& p = spec.prefix;

  ClockHandles handles;
  handles.token = spec.token;
  handles.phase_r = builder.species(p + "_R", spec.token);
  handles.phase_g = builder.species(p + "_G", 0.0);
  handles.phase_b = builder.species(p + "_B", 0.0);
  handles.ind_r = builder.species(p + "_r");
  handles.ind_g = builder.species(p + "_g");
  handles.ind_b = builder.species(p + "_b");

  // Private absence indicators. The generation reactions carry a rate
  // multiplier of 1/phase_stretch: slower indicator build-up lengthens every
  // phase without touching the fast/slow policy.
  auto emit_indicator = [&](SpeciesId indicator, SpeciesId phase,
                            const char* name) {
    const core::ReactionId gen =
        network.add({}, {{indicator, 1}}, RateCategory::kSlow, 0.0,
                    p + ".ind." + name + ".gen");
    network.reaction_mutable(gen).set_rate_multiplier(1.0 /
                                                      spec.phase_stretch);
    network.add({{indicator, 1}, {phase, 1}}, {{phase, 1}},
                RateCategory::kFast, 0.0, p + ".ind." + name + ".absorb");
  };
  emit_indicator(handles.ind_r, handles.phase_r, "r");
  emit_indicator(handles.ind_g, handles.phase_g, "g");
  emit_indicator(handles.ind_b, handles.phase_b, "b");

  // One hop: from -> to, gated on the absence indicator of the third phase.
  // The seed carries the same 1/phase_stretch multiplier as the indicator
  // generation: both the gate build-up and the bootstrap seeding slow down,
  // so the period scales roughly linearly with the stretch.
  auto emit_hop = [&](SpeciesId from, SpeciesId to, SpeciesId gate,
                      const char* name) {
    const core::ReactionId seed =
        network.add({{gate, 1}, {from, 1}}, {{to, 1}}, RateCategory::kSlow,
                    0.0, p + ".hop." + name + ".seed");
    network.reaction_mutable(seed).set_rate_multiplier(1.0 /
                                                       spec.phase_stretch);
    if (spec.feedback) {
      const SpeciesId dimer =
          builder.species(p + std::string("_I_") + name);
      network.add({{to, 2}}, {{dimer, 1}}, RateCategory::kSlow, 0.0,
                  p + ".hop." + name + ".dimerize");
      network.add({{dimer, 1}}, {{to, 2}}, RateCategory::kFast, 0.0,
                  p + ".hop." + name + ".undimerize");
      network.add({{dimer, 1}, {from, 1}}, {{to, 3}}, RateCategory::kFast,
                  0.0, p + ".hop." + name + ".feedback");
    }
  };
  // red-to-green needs blue absent; green-to-blue needs red absent;
  // blue-to-red needs green absent.
  emit_hop(handles.phase_r, handles.phase_g, handles.ind_b, "r2g");
  emit_hop(handles.phase_g, handles.phase_b, handles.ind_r, "g2b");
  emit_hop(handles.phase_b, handles.phase_r, handles.ind_g, "b2r");

  return handles;
}

}  // namespace mrsc::sync
