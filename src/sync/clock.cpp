#include "sync/clock.hpp"

#include <stdexcept>

namespace mrsc::sync {

namespace {
using core::SpeciesId;
}  // namespace

ClockHandles build_clock(compile::LoweringContext& ctx,
                         const ClockSpec& spec) {
  if (spec.token <= 0.0) {
    throw std::invalid_argument("build_clock: token must be positive");
  }
  if (spec.phase_stretch < 1.0) {
    throw std::invalid_argument("build_clock: phase_stretch must be >= 1");
  }
  const std::string& p = spec.prefix;

  ClockHandles handles;
  handles.token = spec.token;
  handles.phase_r = ctx.species(p + "_R", spec.token);
  handles.phase_g = ctx.species(p + "_G", 0.0);
  handles.phase_b = ctx.species(p + "_B", 0.0);
  handles.ind_r = ctx.species(p + "_r");
  handles.ind_g = ctx.species(p + "_g");
  handles.ind_b = ctx.species(p + "_b");
  ctx.declare_root(handles.phase_r, compile::PortRole::kClock);
  ctx.declare_root(handles.phase_g, compile::PortRole::kClock);
  ctx.declare_root(handles.phase_b, compile::PortRole::kClock);
  ctx.declare_root(handles.ind_r, compile::PortRole::kClock);
  ctx.declare_root(handles.ind_g, compile::PortRole::kClock);
  ctx.declare_root(handles.ind_b, compile::PortRole::kClock);

  // Private absence indicators. The generation reactions carry a rate
  // multiplier of 1/phase_stretch: slower indicator build-up lengthens every
  // phase without touching the fast/slow policy.
  auto emit_indicator = [&](SpeciesId indicator, SpeciesId phase,
                            const char* name) {
    const SpeciesId members[] = {phase};
    ctx.indicator(indicator, members, 1.0 / spec.phase_stretch,
                  p + ".ind." + name);
  };
  emit_indicator(handles.ind_r, handles.phase_r, "r");
  emit_indicator(handles.ind_g, handles.phase_g, "g");
  emit_indicator(handles.ind_b, handles.phase_b, "b");

  // One hop: from -> to, gated on the absence indicator of the third phase.
  // The seed carries the same 1/phase_stretch multiplier as the indicator
  // generation: both the gate build-up and the bootstrap seeding slow down,
  // so the period scales roughly linearly with the stretch.
  // red-to-green needs blue absent; green-to-blue needs red absent;
  // blue-to-red needs green absent.
  auto emit_hop = [&](SpeciesId from, SpeciesId to, SpeciesId gate,
                      const char* name) {
    ctx.sharpened_hop(from, to, gate, p + ".hop." + name,
                      p + std::string("_I_") + name, 1.0 / spec.phase_stretch,
                      spec.feedback);
  };
  emit_hop(handles.phase_r, handles.phase_g, handles.ind_b, "r2g");
  emit_hop(handles.phase_g, handles.phase_b, handles.ind_r, "g2b");
  emit_hop(handles.phase_b, handles.phase_r, handles.ind_g, "b2r");

  return handles;
}

ClockHandles build_clock(core::ReactionNetwork& network,
                         const ClockSpec& spec) {
  compile::LoweringContext ctx(network, spec.prefix);
  return build_clock(ctx, spec);
}

}  // namespace mrsc::sync
