// The molecular clock.
//
// The synchronous paper's central construct: a set of reactions whose species
// concentrations rise and fall in sustained, mutually exclusive oscillation.
// A high concentration is a logical 1, a low concentration a logical 0; the
// three phase species play the role of a non-overlapping three-phase clock.
//
// Construction (same machinery as the delay chains): a fixed token quantity
// circulates around three phase species C_R -> C_G -> C_B -> C_R. Each hop is
// gated by the absence indicator of the *third* phase and sharpened by the
// dimer positive-feedback reactions, so at any moment (away from the brief
// transfer windows) exactly one phase species holds the token:
//
//   0 ->slow c_x ; c_x + C_X ->fast C_X          (private absence indicators)
//   c_b + C_R ->slow C_G                          (red-to-green seed)
//   2 C_G <->slow/fast I_g ; I_g + C_R ->fast 3 C_G   (feedback)
//   ... and cyclically for green-to-blue and blue-to-red.
//
// Timing knob: `phase_stretch` scales down the indicator generation rate (via
// the per-reaction rate multiplier, so it composes with the network's
// fast/slow policy). Larger stretch -> indicators take longer to accumulate
// -> each phase holds longer -> gated computation gets more time to settle.
// This is the molecular analogue of lowering the clock frequency to meet
// setup time, and the timing-closure experiment (T5) sweeps it.
#pragma once

#include <string>

#include "compile/context.hpp"
#include "core/network.hpp"

namespace mrsc::sync {

struct ClockSpec {
  /// Total circulating token quantity (concentration units).
  double token = 1.0;
  /// >= 1; scales phase duration (see header comment).
  double phase_stretch = 4.0;
  /// Emit the positive-feedback sharpening reactions.
  bool feedback = true;
  /// Species-name prefix.
  std::string prefix = "clk";
};

struct ClockHandles {
  core::SpeciesId phase_r;  ///< C_R — the write-back phase in the discipline
  core::SpeciesId phase_g;  ///< C_G — the compute phase
  core::SpeciesId phase_b;  ///< C_B — guard / transfer phase
  core::SpeciesId ind_r;    ///< private absence indicator of C_R
  core::SpeciesId ind_g;
  core::SpeciesId ind_b;
  double token = 1.0;  ///< echo of ClockSpec::token, for thresholding
};

/// Emits the clock reactions; the token starts in C_R (write-back phase), so
/// the first compute phase begins after one hop.
ClockHandles build_clock(core::ReactionNetwork& network,
                         const ClockSpec& spec);

/// Same, emitting through an existing lowering context so the clock's
/// reactions are tagged (indicators, sharpened hops) and the phase species
/// registered as kClock roots of the surrounding design.
ClockHandles build_clock(compile::LoweringContext& ctx,
                         const ClockSpec& spec);

}  // namespace mrsc::sync
