// Synchronous circuit compiler.
//
// `CircuitBuilder` is a small dataflow IR for clocked molecular designs:
// input ports, registers (delay elements), and combinational operations. It
// lowers to a flat `ReactionNetwork` containing a molecular clock plus the
// compiled datapath, following the paper's delay-element discipline:
//
//   * Each register is a *color triple* of species (R_i, G_i, B_i) — exactly
//     the three types per delay element of the paper. The registered value
//     circulates once around the triple per clock cycle, each hop catalyzed
//     by the matching clock phase:
//        C_G + R_i -> C_G + G_i        (green phase)
//        C_B + G_i -> C_B + B_i        (blue phase)
//        C_R + B_i -> C_R + <wire>     (red phase: release into the
//                                       combinational network)
//   * The combinational pass executes during the RED phase: register values
//     and input-port samples are released into wire species (slow transfers
//     catalyzed by C_R); the ops themselves (add, fan-out, scaling, min) are
//     fast and un-gated — their operands exist only mid-phase — and each
//     dataflow path terminates in the R_i species of the register it feeds
//     (or an output port).
//   * Because a value must traverse three hops gated by three *consecutive*
//     clock phases to cross a register, the brief overlap between adjacent
//     clock phases cannot race a value through a register within one cycle:
//     a full-cycle flow-through would require two consecutive off-phase
//     leaks, suppressed as the square of the tiny phase residual. (A two-
//     species master/slave register would not have this property — with
//     three clock phases, any two gating phases are adjacent somewhere.)
//   * I/O convention: inject input samples on rising edges of C_R (the
//     combinational phase consumes them immediately); sample output ports on
//     rising edges of C_G (the red phase that deposited them has just
//     ended).
//
// Because molecular operations *consume* their operands, every signal must be
// used exactly once; explicit `fanout` creates copies. `compile()` verifies
// this single-use discipline and reports violations by signal name.
#pragma once

#include <cstdint>
#include <map>
#include <source_location>
#include <string>
#include <vector>

#include "compile/context.hpp"
#include "compile/passes.hpp"
#include "core/network.hpp"
#include "sync/clock.hpp"

namespace mrsc::sync {

/// Handle to a dataflow signal (single-use).
struct Sig {
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
};

/// Handle to a register.
struct Reg {
  std::uint32_t index = UINT32_MAX;
};

/// Everything the simulation harness needs to drive a compiled circuit.
struct CompiledCircuit {
  ClockHandles clock;
  /// Input port name -> species to inject samples into (on C_R rising).
  std::map<std::string, core::SpeciesId> inputs;
  /// Output port name -> species to sample and clear (on C_G rising).
  std::map<std::string, core::SpeciesId> outputs;
  /// Register name -> the red species of its color triple (where the state
  /// sits at the start of each cycle).
  std::map<std::string, core::SpeciesId> register_state;

  [[nodiscard]] core::SpeciesId input(const std::string& name) const;
  [[nodiscard]] core::SpeciesId output(const std::string& name) const;
  [[nodiscard]] core::SpeciesId state(const std::string& name) const;
};

class CircuitBuilder {
 public:
  /// Declares an input port; returns the per-cycle sample signal.
  Sig input(const std::string& name,
            std::source_location loc = std::source_location::current());

  /// Declares a register with an initial value.
  Reg add_register(const std::string& name, double initial = 0.0,
                   std::source_location loc = std::source_location::current());

  /// Reads a register's current value (allowed exactly once per register).
  Sig read(Reg reg,
           std::source_location loc = std::source_location::current());

  /// Schedules `value` as the register's next value (exactly once).
  void write(Reg reg, Sig value,
             std::source_location loc = std::source_location::current());

  /// Declares an output port fed by `value`.
  void output(const std::string& name, Sig value,
              std::source_location loc = std::source_location::current());

  /// Declares two output ports whose species annihilate each other (fast):
  /// used by the dual-rail layer so a signed output pair is normalized in
  /// place before it is sampled.
  void output_pair(const std::string& pos_name, const std::string& neg_name,
                   Sig pos, Sig neg,
                   std::source_location loc = std::source_location::current());

  /// Requests fast annihilation between the red (state-holding) species of
  /// two registers: a parked dual-rail value (p, n) relaxes to its
  /// normalized form (p-n, 0) / (0, n-p) between clock cycles.
  void annihilate_registers(Reg a, Reg b);

  /// c := a + b.
  Sig add(Sig a, Sig b,
          std::source_location loc = std::source_location::current());

  /// k explicit copies of `value`.
  std::vector<Sig> fanout(Sig value, std::size_t copies,
                          std::source_location loc =
                              std::source_location::current());

  /// value * numerator / 2^halvings (dyadic-rational coefficient).
  Sig scale(Sig value, std::uint32_t numerator, std::uint32_t halvings,
            std::source_location loc = std::source_location::current());

  /// min(a, b); the |a-b| leftover in the larger operand is drained during
  /// the following green phase.
  Sig min(Sig a, Sig b,
          std::source_location loc = std::source_location::current());

  /// Discards a signal (drained during the following green phase).
  void discard(Sig value,
               std::source_location loc = std::source_location::current());

  /// Lowers the circuit into `network` (clock included) through the shared
  /// compile::LoweringContext, then runs the pass pipeline selected by
  /// `options` (validation at every level; exact shrinking passes at kO1,
  /// where `options.assume_zero_inputs` names ports whose dead cones may be
  /// deleted — such ports disappear from the returned handle maps). Throws
  /// `std::logic_error` — citing the definition site and both use sites —
  /// if the single-use discipline is violated.
  CompiledCircuit compile(core::ReactionNetwork& network,
                          const ClockSpec& clock_spec = {},
                          const std::string& prefix = "ckt",
                          const compile::CompileOptions& options = {}) const;

 protected:
  // The IR is protected (not private) so the asynchronous compiler
  // (async::AsyncCircuitBuilder) can lower the same dataflow graph with a
  // different synchronization discipline.
  enum class OpKind : std::uint8_t {
    kInput,
    kRead,
    kAdd,
    kFanout,
    kScale,
    kMin,
  };

  struct Op {
    OpKind kind;
    std::vector<std::uint32_t> operands;  // signal indices
    std::vector<std::uint32_t> results;   // signal indices
    std::uint32_t reg = UINT32_MAX;       // for kRead
    std::string name;                     // for kInput
    std::uint32_t scale_numerator = 1;    // for kScale
    std::uint32_t scale_halvings = 0;     // for kScale
  };

  enum class SinkKind : std::uint8_t { kRegister, kOutput, kDiscard };
  struct Sink {
    SinkKind kind;
    std::uint32_t signal;
    std::uint32_t reg = UINT32_MAX;  // for kRegister
    std::string name;                // for kOutput
  };

  struct RegisterDecl {
    std::string name;
    double initial = 0.0;
    bool read_done = false;
    bool write_done = false;
    std::source_location declared_at;
    std::source_location read_at;
    std::source_location written_at;
  };

  /// Where a signal was produced and (once) consumed; powers the
  /// definition-site / use-site diagnostics.
  struct SigSite {
    std::source_location defined_at;
    std::source_location consumed_at;
    const char* consumed_by = nullptr;  // null until consumed
  };

  Sig new_sig(const std::source_location& loc);
  void mark_consumed(Sig sig, const char* by,
                     const std::source_location& loc);

  std::vector<Op> ops_;
  std::vector<Sink> sinks_;
  std::vector<RegisterDecl> registers_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> register_annihilations_;
  std::vector<std::pair<std::string, std::string>> output_annihilations_;
  std::vector<bool> sig_consumed_;
  std::vector<SigSite> sig_sites_;
  std::uint32_t sig_count_ = 0;
};

}  // namespace mrsc::sync
