// Signed signals via dual-rail encoding.
//
// Concentrations cannot be negative, so a signed value v is carried as a
// *pair* of species (p, n) with v = p - n. This layer wraps CircuitBuilder
// with rail-pair versions of every operation:
//
//   add      — railwise (p1+p2, n1+n2)
//   negate   — swap the rails (zero reactions!)
//   subtract — add the negation
//   scale    — railwise dyadic scaling
//
// Railwise arithmetic grows both rails; *normalization* (cancelling the
// common part min(p, n) from both) happens inside dual-rail registers: the
// two underlying registers' red species annihilate each other (fast), so a
// deposited (p, n) relaxes to (p-n, 0) or (0, n-p) while it waits for the
// next green phase. Outputs are normalized the same way by routing them
// through a register; the harness reads both rails and reports p - n.
#pragma once

#include <string>
#include <vector>

#include "sync/circuit.hpp"

namespace mrsc::sync {

/// A signed dataflow signal: value = pos - neg.
struct DSig {
  Sig pos;
  Sig neg;
};

/// A signed register (a pair of coupled registers).
struct DReg {
  Reg pos;
  Reg neg;
};

/// Builds signed circuits on top of a CircuitBuilder. The base builder's
/// unsigned operations remain usable alongside (e.g. for non-negative
/// inputs); `lift` converts an unsigned signal into a signed one.
class DualRailBuilder {
 public:
  explicit DualRailBuilder(CircuitBuilder& base) : base_(&base) {}

  /// Signed input port: injects into `<name>_p` / `<name>_n`.
  DSig input(const std::string& name);

  /// Lifts an unsigned signal to a signed one (negative rail = 0).
  DSig lift(Sig value);

  /// Signed register with a signed initial value; the rail pair annihilates
  /// (normalizes) while parked in the register.
  DReg add_register(const std::string& name, double initial = 0.0);

  DSig read(DReg reg);
  void write(DReg reg, DSig value);

  /// Signed output ports `<name>_p` / `<name>_n`. The value is routed
  /// through an internal normalizing register first, so the two ports hold
  /// the normalized rails of the *previous* cycle's value: a signed output
  /// adds one cycle of latency.
  void output(const std::string& name, DSig value);

  DSig add(DSig a, DSig b);
  DSig negate(DSig value);
  DSig subtract(DSig a, DSig b);
  DSig scale(DSig value, std::uint32_t numerator, std::uint32_t halvings);
  std::vector<DSig> fanout(DSig value, std::size_t copies);
  void discard(DSig value);

 private:
  CircuitBuilder* base_;
  std::size_t port_counter_ = 0;
};

/// Name of the positive/negative rail port for a signed port `name`.
[[nodiscard]] std::string rail_pos(const std::string& name);
[[nodiscard]] std::string rail_neg(const std::string& name);

}  // namespace mrsc::sync
