#include "sync/dual_rail.hpp"

#include <algorithm>

namespace mrsc::sync {

std::string rail_pos(const std::string& name) { return name + "_p"; }
std::string rail_neg(const std::string& name) { return name + "_n"; }

DSig DualRailBuilder::input(const std::string& name) {
  return DSig{base_->input(rail_pos(name)), base_->input(rail_neg(name))};
}

DSig DualRailBuilder::lift(Sig value) {
  // The negative rail is an always-zero input-like source; model it with an
  // input port that is simply never driven. A dedicated "constant zero"
  // signal would need a species anyway, and an undriven port is exactly
  // that.
  const std::string name =
      "_zero" + std::to_string(port_counter_++);
  return DSig{value, base_->input(name)};
}

DReg DualRailBuilder::add_register(const std::string& name, double initial) {
  DReg reg;
  reg.pos = base_->add_register(rail_pos(name), std::max(initial, 0.0));
  reg.neg = base_->add_register(rail_neg(name), std::max(-initial, 0.0));
  base_->annihilate_registers(reg.pos, reg.neg);
  return reg;
}

DSig DualRailBuilder::read(DReg reg) {
  return DSig{base_->read(reg.pos), base_->read(reg.neg)};
}

void DualRailBuilder::write(DReg reg, DSig value) {
  base_->write(reg.pos, value.pos);
  base_->write(reg.neg, value.neg);
}

void DualRailBuilder::output(const std::string& name, DSig value) {
  base_->output_pair(rail_pos(name), rail_neg(name), value.pos, value.neg);
}

DSig DualRailBuilder::add(DSig a, DSig b) {
  return DSig{base_->add(a.pos, b.pos), base_->add(a.neg, b.neg)};
}

DSig DualRailBuilder::negate(DSig value) {
  return DSig{value.neg, value.pos};
}

DSig DualRailBuilder::subtract(DSig a, DSig b) {
  return add(a, negate(b));
}

DSig DualRailBuilder::scale(DSig value, std::uint32_t numerator,
                            std::uint32_t halvings) {
  return DSig{base_->scale(value.pos, numerator, halvings),
              base_->scale(value.neg, numerator, halvings)};
}

std::vector<DSig> DualRailBuilder::fanout(DSig value, std::size_t copies) {
  const std::vector<Sig> pos = base_->fanout(value.pos, copies);
  const std::vector<Sig> neg = base_->fanout(value.neg, copies);
  std::vector<DSig> out(copies);
  for (std::size_t i = 0; i < copies; ++i) out[i] = DSig{pos[i], neg[i]};
  return out;
}

void DualRailBuilder::discard(DSig value) {
  base_->discard(value.pos);
  base_->discard(value.neg);
}

}  // namespace mrsc::sync
