#include "sync/circuit.hpp"

#include <chrono>
#include <stdexcept>

#include "modules/combinational.hpp"

namespace mrsc::sync {

namespace {

using core::RateCategory;
using core::SpeciesId;
using core::Term;

/// "file.cpp:42" — the directory part of __FILE__ is noise in a diagnostic.
std::string site(const std::source_location& loc) {
  std::string file = loc.file_name();
  const std::size_t slash = file.find_last_of('/');
  if (slash != std::string::npos) file = file.substr(slash + 1);
  return file + ":" + std::to_string(loc.line());
}

}  // namespace

core::SpeciesId CompiledCircuit::input(const std::string& name) const {
  const auto it = inputs.find(name);
  if (it == inputs.end()) {
    throw std::out_of_range("CompiledCircuit: no input port '" + name + "'");
  }
  return it->second;
}

core::SpeciesId CompiledCircuit::output(const std::string& name) const {
  const auto it = outputs.find(name);
  if (it == outputs.end()) {
    throw std::out_of_range("CompiledCircuit: no output port '" + name + "'");
  }
  return it->second;
}

core::SpeciesId CompiledCircuit::state(const std::string& name) const {
  const auto it = register_state.find(name);
  if (it == register_state.end()) {
    throw std::out_of_range("CompiledCircuit: no register '" + name + "'");
  }
  return it->second;
}

Sig CircuitBuilder::new_sig(const std::source_location& loc) {
  sig_consumed_.push_back(false);
  SigSite sites;
  sites.defined_at = loc;
  sig_sites_.push_back(sites);
  return Sig{sig_count_++};
}

void CircuitBuilder::mark_consumed(Sig sig, const char* by,
                                   const std::source_location& loc) {
  if (!sig.valid() || sig.index >= sig_count_) {
    throw std::logic_error(std::string("CircuitBuilder: invalid signal "
                                       "passed to ") +
                           by + " at " + site(loc));
  }
  if (sig_consumed_[sig.index]) {
    const SigSite& sites = sig_sites_[sig.index];
    throw std::logic_error(
        "CircuitBuilder: signal #" + std::to_string(sig.index) +
        " consumed twice (defined at " + site(sites.defined_at) +
        "; first consumed by " + sites.consumed_by + " at " +
        site(sites.consumed_at) + "; second consumer: " + by + " at " +
        site(loc) + "); use fanout() for multiple consumers");
  }
  sig_consumed_[sig.index] = true;
  sig_sites_[sig.index].consumed_by = by;
  sig_sites_[sig.index].consumed_at = loc;
}

Sig CircuitBuilder::input(const std::string& name, std::source_location loc) {
  Op op;
  op.kind = OpKind::kInput;
  op.name = name;
  const Sig result = new_sig(loc);
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

Reg CircuitBuilder::add_register(const std::string& name, double initial,
                                 std::source_location loc) {
  RegisterDecl decl;
  decl.name = name;
  decl.initial = initial;
  decl.declared_at = loc;
  registers_.push_back(std::move(decl));
  return Reg{static_cast<std::uint32_t>(registers_.size() - 1)};
}

Sig CircuitBuilder::read(Reg reg, std::source_location loc) {
  if (reg.index >= registers_.size()) {
    throw std::logic_error("CircuitBuilder::read: invalid register at " +
                           site(loc));
  }
  if (registers_[reg.index].read_done) {
    throw std::logic_error(
        "CircuitBuilder::read: register '" + registers_[reg.index].name +
        "' read twice (declared at " +
        site(registers_[reg.index].declared_at) + "; first read at " +
        site(registers_[reg.index].read_at) + "; second read at " +
        site(loc) + "); use fanout() on the read value");
  }
  registers_[reg.index].read_done = true;
  registers_[reg.index].read_at = loc;
  Op op;
  op.kind = OpKind::kRead;
  op.reg = reg.index;
  const Sig result = new_sig(loc);
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

void CircuitBuilder::write(Reg reg, Sig value, std::source_location loc) {
  if (reg.index >= registers_.size()) {
    throw std::logic_error("CircuitBuilder::write: invalid register at " +
                           site(loc));
  }
  if (registers_[reg.index].write_done) {
    throw std::logic_error(
        "CircuitBuilder::write: register '" + registers_[reg.index].name +
        "' written twice (declared at " +
        site(registers_[reg.index].declared_at) + "; first write at " +
        site(registers_[reg.index].written_at) + "; second write at " +
        site(loc) + ")");
  }
  registers_[reg.index].write_done = true;
  registers_[reg.index].written_at = loc;
  mark_consumed(value, "write", loc);
  sinks_.push_back(Sink{SinkKind::kRegister, value.index, reg.index, {}});
}

void CircuitBuilder::output(const std::string& name, Sig value,
                            std::source_location loc) {
  mark_consumed(value, "output", loc);
  sinks_.push_back(Sink{SinkKind::kOutput, value.index, UINT32_MAX, name});
}

void CircuitBuilder::output_pair(const std::string& pos_name,
                                 const std::string& neg_name, Sig pos,
                                 Sig neg, std::source_location loc) {
  output(pos_name, pos, loc);
  output(neg_name, neg, loc);
  output_annihilations_.emplace_back(pos_name, neg_name);
}

void CircuitBuilder::annihilate_registers(Reg a, Reg b) {
  if (a.index >= registers_.size() || b.index >= registers_.size() ||
      a.index == b.index) {
    throw std::logic_error(
        "CircuitBuilder::annihilate_registers: invalid register pair");
  }
  register_annihilations_.emplace_back(a.index, b.index);
}

Sig CircuitBuilder::add(Sig a, Sig b, std::source_location loc) {
  mark_consumed(a, "add", loc);
  mark_consumed(b, "add", loc);
  Op op;
  op.kind = OpKind::kAdd;
  op.operands = {a.index, b.index};
  const Sig result = new_sig(loc);
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

std::vector<Sig> CircuitBuilder::fanout(Sig value, std::size_t copies,
                                        std::source_location loc) {
  if (copies == 0) {
    throw std::logic_error("CircuitBuilder::fanout: need >= 1 copy");
  }
  mark_consumed(value, "fanout", loc);
  Op op;
  op.kind = OpKind::kFanout;
  op.operands = {value.index};
  std::vector<Sig> results;
  results.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    const Sig sig = new_sig(loc);
    op.results.push_back(sig.index);
    results.push_back(sig);
  }
  ops_.push_back(std::move(op));
  return results;
}

Sig CircuitBuilder::scale(Sig value, std::uint32_t numerator,
                          std::uint32_t halvings, std::source_location loc) {
  if (numerator == 0) {
    throw std::logic_error("CircuitBuilder::scale: numerator must be >= 1");
  }
  mark_consumed(value, "scale", loc);
  Op op;
  op.kind = OpKind::kScale;
  op.operands = {value.index};
  op.scale_numerator = numerator;
  op.scale_halvings = halvings;
  const Sig result = new_sig(loc);
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

Sig CircuitBuilder::min(Sig a, Sig b, std::source_location loc) {
  mark_consumed(a, "min", loc);
  mark_consumed(b, "min", loc);
  Op op;
  op.kind = OpKind::kMin;
  op.operands = {a.index, b.index};
  const Sig result = new_sig(loc);
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

void CircuitBuilder::discard(Sig value, std::source_location loc) {
  mark_consumed(value, "discard", loc);
  sinks_.push_back(Sink{SinkKind::kDiscard, value.index, UINT32_MAX, {}});
}

CompiledCircuit CircuitBuilder::compile(
    core::ReactionNetwork& network, const ClockSpec& clock_spec,
    const std::string& prefix, const compile::CompileOptions& options) const {
  // --- static checks --------------------------------------------------------
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    if (!sig_consumed_[s]) {
      throw std::logic_error("CircuitBuilder::compile: signal #" +
                             std::to_string(s) + " (defined at " +
                             site(sig_sites_[s].defined_at) +
                             ") is never consumed (dangling value would "
                             "accumulate); use discard() if intentional");
    }
  }
  for (const RegisterDecl& reg : registers_) {
    if (!reg.read_done) {
      throw std::logic_error("CircuitBuilder::compile: register '" + reg.name +
                             "' (declared at " + site(reg.declared_at) +
                             ") is never read; its value would accumulate");
    }
    if (!reg.write_done) {
      throw std::logic_error("CircuitBuilder::compile: register '" + reg.name +
                             "' (declared at " + site(reg.declared_at) +
                             ") is never written");
    }
  }
  auto assumed_zero = [&](const std::string& name) {
    for (const std::string& port : options.assume_zero_inputs) {
      if (port == name) return true;
    }
    return false;
  };

  const auto lowering_start = std::chrono::steady_clock::now();
  compile::LoweringContext ctx(network, prefix);

  // --- clock ----------------------------------------------------------------
  ClockSpec spec = clock_spec;
  if (spec.prefix == "clk") spec.prefix = prefix + "_clk";
  CompiledCircuit compiled;
  compiled.clock = build_clock(ctx, spec);

  // --- species --------------------------------------------------------------
  // One wire species per signal.
  std::vector<SpeciesId> wires(sig_count_);
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    wires[s] = ctx.species(prefix + "_w" + std::to_string(s));
  }
  // Register color triples (R_i, G_i, B_i); the initial value sits in R.
  std::vector<compile::ColorTriple> triples(registers_.size());
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    triples[i] = ctx.color_triple(registers_[i].name, registers_[i].initial);
    compiled.register_state.emplace(registers_[i].name, triples[i].red);
    ctx.declare_root(triples[i].red, compile::PortRole::kState);
  }

  // The combinational release runs during the RED phase; the register's two
  // internal hops run during GREEN and BLUE.
  const SpeciesId phase_r = compiled.clock.phase_r;
  const SpeciesId phase_g = compiled.clock.phase_g;
  const SpeciesId phase_b = compiled.clock.phase_b;

  // Register internal hops: R_i -> G_i (green phase), G_i -> B_i (blue).
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const std::string& name = registers_[i].name;
    ctx.gated_transfer(triples[i].red, triples[i].green, phase_g,
                       prefix + ".reg." + name + ".r2g");
    ctx.gated_transfer(triples[i].green, triples[i].blue, phase_b,
                       prefix + ".reg." + name + ".g2b");
  }

  // Dual-rail normalization: the coupled registers' parked red species
  // annihilate (fast) while they wait for the next green phase.
  for (const auto& [a, b] : register_annihilations_) {
    ctx.annihilation(triples[a].red, triples[b].red,
                     prefix + ".normalize." + registers_[a].name + "." +
                         registers_[b].name);
  }

  // --- ops ------------------------------------------------------------------
  modules::EmitOptions fast_op;
  fast_op.category = RateCategory::kFast;
  std::size_t scale_counter = 0;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kInput: {
        const SpeciesId port = ctx.species(prefix + "_in_" + op.name);
        compiled.inputs.emplace(op.name, port);
        if (!assumed_zero(op.name)) {
          ctx.declare_root(port, compile::PortRole::kInput);
        }
        ctx.gated_transfer(port, wires[op.results[0]], phase_r,
                           prefix + ".release.in." + op.name);
        break;
      }
      case OpKind::kRead: {
        ctx.gated_transfer(triples[op.reg].blue, wires[op.results[0]],
                           phase_r,
                           prefix + ".release.reg." + registers_[op.reg].name);
        break;
      }
      case OpKind::kAdd: {
        fast_op.label = prefix + ".op";
        modules::add_into(network, wires[op.operands[0]],
                          wires[op.operands[1]], wires[op.results[0]],
                          fast_op);
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        break;
      }
      case OpKind::kFanout: {
        fast_op.label = prefix + ".op";
        std::vector<SpeciesId> outs;
        outs.reserve(op.results.size());
        for (const std::uint32_t r : op.results) outs.push_back(wires[r]);
        modules::duplicate(network, wires[op.operands[0]], outs, fast_op);
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        break;
      }
      case OpKind::kScale: {
        fast_op.label = prefix + ".op";
        modules::scale_dyadic(network, wires[op.operands[0]],
                              wires[op.results[0]], op.scale_numerator,
                              op.scale_halvings,
                              prefix + "_scale" + std::to_string(scale_counter),
                              fast_op);
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        ++scale_counter;
        break;
      }
      case OpKind::kMin: {
        fast_op.label = prefix + ".op";
        modules::min_into(network, wires[op.operands[0]],
                          wires[op.operands[1]], wires[op.results[0]],
                          fast_op);
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        // Drain the |a-b| leftover of the larger operand during the
        // following green phase (after the red combinational phase ends).
        for (const std::uint32_t operand : op.operands) {
          ctx.gated_drain(phase_g, wires[operand], prefix + ".min.drain");
        }
        break;
      }
    }
  }

  // --- sinks ------------------------------------------------------------------
  // Dataflow paths terminate with fast, un-gated transfers: the wires only
  // carry value during the red phase, and the deposit must complete within
  // it.
  for (const Sink& sink : sinks_) {
    switch (sink.kind) {
      case SinkKind::kRegister: {
        ctx.fast_transfer(wires[sink.signal], triples[sink.reg].red,
                          prefix + ".sink.reg." + registers_[sink.reg].name);
        break;
      }
      case SinkKind::kOutput: {
        const SpeciesId port = ctx.species(prefix + "_out_" + sink.name);
        compiled.outputs.emplace(sink.name, port);
        ctx.declare_root(port, compile::PortRole::kOutput);
        ctx.fast_transfer(wires[sink.signal], port,
                          prefix + ".sink.out." + sink.name);
        break;
      }
      case SinkKind::kDiscard: {
        ctx.gated_drain(phase_g, wires[sink.signal], prefix + ".discard");
        break;
      }
    }
  }

  // Output-pair normalization (after the ports exist).
  for (const auto& [pos_name, neg_name] : output_annihilations_) {
    ctx.annihilation(compiled.output(pos_name), compiled.output(neg_name),
                     prefix + ".normalize.out." + pos_name);
  }

  // --- passes ---------------------------------------------------------------
  const double lowering_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    lowering_start)
          .count();
  const compile::FinalizeResult fin = ctx.finalize(options, lowering_seconds);
  if (fin.optimized) {
    auto remap_ports = [&](std::map<std::string, SpeciesId>& ports) {
      for (auto it = ports.begin(); it != ports.end();) {
        const SpeciesId mapped = fin(it->second);
        if (mapped == SpeciesId::invalid()) {
          it = ports.erase(it);  // the pass pipeline proved the cone dead
        } else {
          it->second = mapped;
          ++it;
        }
      }
    };
    remap_ports(compiled.inputs);
    remap_ports(compiled.outputs);
    remap_ports(compiled.register_state);
    compiled.clock.phase_r = fin(compiled.clock.phase_r);
    compiled.clock.phase_g = fin(compiled.clock.phase_g);
    compiled.clock.phase_b = fin(compiled.clock.phase_b);
    compiled.clock.ind_r = fin(compiled.clock.ind_r);
    compiled.clock.ind_g = fin(compiled.clock.ind_g);
    compiled.clock.ind_b = fin(compiled.clock.ind_b);
  }

  return compiled;
}

}  // namespace mrsc::sync
