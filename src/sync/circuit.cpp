#include "sync/circuit.hpp"

#include <stdexcept>

#include "modules/combinational.hpp"

namespace mrsc::sync {

namespace {
using core::RateCategory;
using core::SpeciesId;
using core::Term;
}  // namespace

core::SpeciesId CompiledCircuit::input(const std::string& name) const {
  const auto it = inputs.find(name);
  if (it == inputs.end()) {
    throw std::out_of_range("CompiledCircuit: no input port '" + name + "'");
  }
  return it->second;
}

core::SpeciesId CompiledCircuit::output(const std::string& name) const {
  const auto it = outputs.find(name);
  if (it == outputs.end()) {
    throw std::out_of_range("CompiledCircuit: no output port '" + name + "'");
  }
  return it->second;
}

core::SpeciesId CompiledCircuit::state(const std::string& name) const {
  const auto it = register_state.find(name);
  if (it == register_state.end()) {
    throw std::out_of_range("CompiledCircuit: no register '" + name + "'");
  }
  return it->second;
}

Sig CircuitBuilder::new_sig() {
  sig_consumed_.push_back(false);
  return Sig{sig_count_++};
}

void CircuitBuilder::mark_consumed(Sig sig, const char* by) {
  if (!sig.valid() || sig.index >= sig_count_) {
    throw std::logic_error(std::string("CircuitBuilder: invalid signal "
                                       "passed to ") +
                           by);
  }
  if (sig_consumed_[sig.index]) {
    throw std::logic_error("CircuitBuilder: signal #" +
                           std::to_string(sig.index) +
                           " consumed twice (second consumer: " + by +
                           "); use fanout() for multiple consumers");
  }
  sig_consumed_[sig.index] = true;
}

Sig CircuitBuilder::input(const std::string& name) {
  Op op;
  op.kind = OpKind::kInput;
  op.name = name;
  const Sig result = new_sig();
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

Reg CircuitBuilder::add_register(const std::string& name, double initial) {
  registers_.push_back(RegisterDecl{name, initial, false, false});
  return Reg{static_cast<std::uint32_t>(registers_.size() - 1)};
}

Sig CircuitBuilder::read(Reg reg) {
  if (reg.index >= registers_.size()) {
    throw std::logic_error("CircuitBuilder::read: invalid register");
  }
  if (registers_[reg.index].read_done) {
    throw std::logic_error("CircuitBuilder::read: register '" +
                           registers_[reg.index].name +
                           "' read twice; use fanout() on the read value");
  }
  registers_[reg.index].read_done = true;
  Op op;
  op.kind = OpKind::kRead;
  op.reg = reg.index;
  const Sig result = new_sig();
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

void CircuitBuilder::write(Reg reg, Sig value) {
  if (reg.index >= registers_.size()) {
    throw std::logic_error("CircuitBuilder::write: invalid register");
  }
  if (registers_[reg.index].write_done) {
    throw std::logic_error("CircuitBuilder::write: register '" +
                           registers_[reg.index].name + "' written twice");
  }
  registers_[reg.index].write_done = true;
  mark_consumed(value, "write");
  sinks_.push_back(Sink{SinkKind::kRegister, value.index, reg.index, {}});
}

void CircuitBuilder::output(const std::string& name, Sig value) {
  mark_consumed(value, "output");
  sinks_.push_back(Sink{SinkKind::kOutput, value.index, UINT32_MAX, name});
}

void CircuitBuilder::output_pair(const std::string& pos_name,
                                 const std::string& neg_name, Sig pos,
                                 Sig neg) {
  output(pos_name, pos);
  output(neg_name, neg);
  output_annihilations_.emplace_back(pos_name, neg_name);
}

void CircuitBuilder::annihilate_registers(Reg a, Reg b) {
  if (a.index >= registers_.size() || b.index >= registers_.size() ||
      a.index == b.index) {
    throw std::logic_error(
        "CircuitBuilder::annihilate_registers: invalid register pair");
  }
  register_annihilations_.emplace_back(a.index, b.index);
}

Sig CircuitBuilder::add(Sig a, Sig b) {
  mark_consumed(a, "add");
  mark_consumed(b, "add");
  Op op;
  op.kind = OpKind::kAdd;
  op.operands = {a.index, b.index};
  const Sig result = new_sig();
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

std::vector<Sig> CircuitBuilder::fanout(Sig value, std::size_t copies) {
  if (copies == 0) {
    throw std::logic_error("CircuitBuilder::fanout: need >= 1 copy");
  }
  mark_consumed(value, "fanout");
  Op op;
  op.kind = OpKind::kFanout;
  op.operands = {value.index};
  std::vector<Sig> results;
  results.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    const Sig sig = new_sig();
    op.results.push_back(sig.index);
    results.push_back(sig);
  }
  ops_.push_back(std::move(op));
  return results;
}

Sig CircuitBuilder::scale(Sig value, std::uint32_t numerator,
                          std::uint32_t halvings) {
  if (numerator == 0) {
    throw std::logic_error("CircuitBuilder::scale: numerator must be >= 1");
  }
  mark_consumed(value, "scale");
  Op op;
  op.kind = OpKind::kScale;
  op.operands = {value.index};
  op.scale_numerator = numerator;
  op.scale_halvings = halvings;
  const Sig result = new_sig();
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

Sig CircuitBuilder::min(Sig a, Sig b) {
  mark_consumed(a, "min");
  mark_consumed(b, "min");
  Op op;
  op.kind = OpKind::kMin;
  op.operands = {a.index, b.index};
  const Sig result = new_sig();
  op.results = {result.index};
  ops_.push_back(std::move(op));
  return result;
}

void CircuitBuilder::discard(Sig value) {
  mark_consumed(value, "discard");
  sinks_.push_back(Sink{SinkKind::kDiscard, value.index, UINT32_MAX, {}});
}

CompiledCircuit CircuitBuilder::compile(core::ReactionNetwork& network,
                                        const ClockSpec& clock_spec,
                                        const std::string& prefix) const {
  // --- static checks --------------------------------------------------------
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    if (!sig_consumed_[s]) {
      throw std::logic_error("CircuitBuilder::compile: signal #" +
                             std::to_string(s) +
                             " is never consumed (dangling value would "
                             "accumulate); use discard() if intentional");
    }
  }
  for (const RegisterDecl& reg : registers_) {
    if (!reg.read_done) {
      throw std::logic_error("CircuitBuilder::compile: register '" + reg.name +
                             "' is never read; its value would accumulate");
    }
    if (!reg.write_done) {
      throw std::logic_error("CircuitBuilder::compile: register '" + reg.name +
                             "' is never written");
    }
  }

  // --- clock ----------------------------------------------------------------
  ClockSpec spec = clock_spec;
  if (spec.prefix == "clk") spec.prefix = prefix + "_clk";
  CompiledCircuit compiled;
  compiled.clock = build_clock(network, spec);

  // --- species --------------------------------------------------------------
  // One wire species per signal.
  std::vector<SpeciesId> wires(sig_count_);
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    wires[s] = network.add_species(prefix + "_w" + std::to_string(s));
  }
  // Register color triples (R_i, G_i, B_i); the initial value sits in R.
  std::vector<SpeciesId> reg_r(registers_.size());
  std::vector<SpeciesId> reg_g(registers_.size());
  std::vector<SpeciesId> reg_b(registers_.size());
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const std::string& name = registers_[i].name;
    reg_r[i] =
        network.add_species(prefix + "_R_" + name, registers_[i].initial);
    reg_g[i] = network.add_species(prefix + "_G_" + name);
    reg_b[i] = network.add_species(prefix + "_B_" + name);
    compiled.register_state.emplace(name, reg_r[i]);
  }

  // Gated emit helpers (see the header comment for the discipline). The
  // combinational release runs during the RED phase; the register's two
  // internal hops run during GREEN and BLUE.
  modules::EmitOptions release;
  release.category = RateCategory::kSlow;
  release.catalyst = compiled.clock.phase_r;
  modules::EmitOptions hop_g;
  hop_g.category = RateCategory::kSlow;
  hop_g.catalyst = compiled.clock.phase_g;
  modules::EmitOptions hop_b;
  hop_b.category = RateCategory::kSlow;
  hop_b.catalyst = compiled.clock.phase_b;
  modules::EmitOptions fast_op;
  fast_op.category = RateCategory::kFast;

  // Register internal hops: R_i -> G_i (green phase), G_i -> B_i (blue).
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const std::string& name = registers_[i].name;
    hop_g.label = prefix + ".reg." + name + ".r2g";
    modules::transfer(network, reg_r[i], reg_g[i], hop_g);
    hop_b.label = prefix + ".reg." + name + ".g2b";
    modules::transfer(network, reg_g[i], reg_b[i], hop_b);
  }

  // Dual-rail normalization: the coupled registers' parked red species
  // annihilate (fast) while they wait for the next green phase.
  for (const auto& [a, b] : register_annihilations_) {
    network.add({{reg_r[a], 1}, {reg_r[b], 1}}, {}, RateCategory::kFast, 0.0,
                prefix + ".normalize." + registers_[a].name + "." +
                    registers_[b].name);
  }

  // --- ops ------------------------------------------------------------------
  std::size_t scale_counter = 0;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kInput: {
        const SpeciesId port = network.add_species(prefix + "_in_" + op.name);
        compiled.inputs.emplace(op.name, port);
        release.label = prefix + ".release.in." + op.name;
        modules::transfer(network, port, wires[op.results[0]], release);
        break;
      }
      case OpKind::kRead: {
        release.label = prefix + ".release.reg." + registers_[op.reg].name;
        modules::transfer(network, reg_b[op.reg], wires[op.results[0]],
                          release);
        break;
      }
      case OpKind::kAdd: {
        fast_op.label = prefix + ".op";
        modules::add_into(network, wires[op.operands[0]],
                          wires[op.operands[1]], wires[op.results[0]],
                          fast_op);
        break;
      }
      case OpKind::kFanout: {
        fast_op.label = prefix + ".op";
        std::vector<SpeciesId> outs;
        outs.reserve(op.results.size());
        for (const std::uint32_t r : op.results) outs.push_back(wires[r]);
        modules::duplicate(network, wires[op.operands[0]], outs, fast_op);
        break;
      }
      case OpKind::kScale: {
        fast_op.label = prefix + ".op";
        modules::scale_dyadic(network, wires[op.operands[0]],
                              wires[op.results[0]], op.scale_numerator,
                              op.scale_halvings,
                              prefix + "_scale" + std::to_string(scale_counter),
                              fast_op);
        ++scale_counter;
        break;
      }
      case OpKind::kMin: {
        fast_op.label = prefix + ".op";
        modules::min_into(network, wires[op.operands[0]],
                          wires[op.operands[1]], wires[op.results[0]],
                          fast_op);
        // Drain the |a-b| leftover of the larger operand during the
        // following green phase (after the red combinational phase ends).
        for (const std::uint32_t operand : op.operands) {
          network.add({{compiled.clock.phase_g, 1}, {wires[operand], 1}},
                      {{compiled.clock.phase_g, 1}}, RateCategory::kSlow, 0.0,
                      prefix + ".min.drain");
        }
        break;
      }
    }
  }

  // --- sinks ------------------------------------------------------------------
  // Dataflow paths terminate with fast, un-gated transfers: the wires only
  // carry value during the red phase, and the deposit must complete within
  // it.
  for (const Sink& sink : sinks_) {
    switch (sink.kind) {
      case SinkKind::kRegister: {
        fast_op.label = prefix + ".sink.reg." + registers_[sink.reg].name;
        modules::transfer(network, wires[sink.signal], reg_r[sink.reg],
                          fast_op);
        break;
      }
      case SinkKind::kOutput: {
        const SpeciesId port =
            network.add_species(prefix + "_out_" + sink.name);
        compiled.outputs.emplace(sink.name, port);
        fast_op.label = prefix + ".sink.out." + sink.name;
        modules::transfer(network, wires[sink.signal], port, fast_op);
        break;
      }
      case SinkKind::kDiscard: {
        network.add({{compiled.clock.phase_g, 1}, {wires[sink.signal], 1}},
                    {{compiled.clock.phase_g, 1}}, RateCategory::kSlow, 0.0,
                    prefix + ".discard");
        break;
      }
    }
  }

  // Output-pair normalization (after the ports exist).
  for (const auto& [pos_name, neg_name] : output_annihilations_) {
    network.add({{compiled.output(pos_name), 1},
                 {compiled.output(neg_name), 1}},
                {}, RateCategory::kFast, 0.0,
                prefix + ".normalize.out." + pos_name);
  }

  return compiled;
}

}  // namespace mrsc::sync
