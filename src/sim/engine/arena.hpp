// Monotonic arena for per-run simulator temporaries.
//
// The integrator and SSA hot loops need a handful of scratch arrays (RK
// stage derivatives, per-reaction scaled rates) whose sizes are known at run
// start. Allocating them individually per run scatters them across the heap;
// the arena carves them out of one block so a run's working set is
// contiguous and a reset costs nothing. Allocation is bump-pointer only —
// there is no per-span free — and restricted to trivially-destructible types.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace mrsc::sim {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 4096)
      : block_bytes_(initial_bytes < kMinBlock ? kMinBlock : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a value-initialized span of `count` elements of `T`, aligned for
  /// `T`. The span stays valid for the arena's lifetime (spans are never
  /// individually freed, and blocks are never reallocated).
  template <class T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena only holds trivially-destructible types");
    if (count == 0) return {};
    const std::size_t bytes = count * sizeof(T);
    void* p = raw_alloc(bytes, alignof(T));
    T* typed = static_cast<T*>(p);
    for (std::size_t i = 0; i < count; ++i) new (typed + i) T();
    return {typed, count};
  }

  /// Total bytes handed out (diagnostics only).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }

 private:
  static constexpr std::size_t kMinBlock = 256;

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || offset + bytes > blocks_.back().size()) {
      std::size_t need = bytes + align;
      while (block_bytes_ < need) block_bytes_ *= 2;
      blocks_.emplace_back(block_bytes_);
      block_bytes_ *= 2;  // grow geometrically so many small runs stay cheap
      cursor_ = 0;
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    std::byte* base = blocks_.back().data();
    cursor_ = offset + bytes;
    allocated_ += bytes;
    // data() of a vector<byte> is suitably aligned for max_align_t; offset
    // keeps the requested alignment because block starts are max-aligned.
    return base + offset;
  }

  std::vector<std::vector<std::byte>> blocks_;
  std::size_t block_bytes_;
  std::size_t cursor_ = 0;
  std::size_t allocated_ = 0;
};

}  // namespace mrsc::sim
