// Compiled sparse simulation engine.
//
// `CompiledSystem` is the flat, read-only form of a reaction network that the
// fast simulation paths run against:
//  * CSR (compressed-sparse-row) reactant and net-change tables in parallel
//    structure-of-arrays layout, so derivative and propensity evaluation are
//    tight loops over contiguous index/coefficient arrays;
//  * a CSR next-reaction dependency graph and species->reaction incidence,
//    shared read-only across every replicate of an ensemble instead of being
//    re-derived per job;
//  * a per-reaction kernel tag specializing the dominant shapes the lowering
//    context emits (unimolecular gated transfer, bimolecular drain, dimeric
//    indicator feedback) with a generic mass-action fallback;
//  * hoisted propensity scale factors: `scaled_rates` precomputes
//    k_j * omega^(1-order_j) once per run, removing the per-event std::pow
//    calls of the legacy path.
//
// Determinism contract: every evaluation here performs the same floating-
// point operations in the same order as `MassActionSystem`, so results are
// bitwise identical to the legacy engine — not merely close. The kernel
// specializations are algebraic rewrites only where the operation sequence is
// provably unchanged (left-associated products over species-sorted reactant
// lists; early-exit zeros preserved). `test_engine.cpp` and the
// `engine_equivalence` fuzz oracle hold this line.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/network.hpp"
#include "sim/mass_action.hpp"
#include "util/matrix.hpp"

namespace mrsc::sim {

/// Specialized evaluation shape of one reaction, chosen from its merged,
/// species-sorted reactant list.
enum class ReactionKernel : std::uint8_t {
  kUnimolecular,  ///< A -> ...      (gated transfer, decay, phase advance)
  kBimolecular,   ///< A + B -> ...  (drain pairs, clock absorbs)
  kDimer,         ///< 2A -> ...     (indicator feedback)
  kGeneric,       ///< anything else, incl. source reactions (0 -> ...)
};

[[nodiscard]] constexpr const char* to_string(ReactionKernel kernel) {
  switch (kernel) {
    case ReactionKernel::kUnimolecular:
      return "unimolecular";
    case ReactionKernel::kBimolecular:
      return "bimolecular";
    case ReactionKernel::kDimer:
      return "dimer";
    case ReactionKernel::kGeneric:
      return "generic";
  }
  return "unknown";
}

class CompiledSystem {
 public:
  /// Compiles `network` with its current rate policy. Flattens through
  /// `MassActionSystem` so rates, reactant merging, ordering, and the
  /// dependency graph are definitionally identical to the legacy engine.
  explicit CompiledSystem(const core::ReactionNetwork& network);

  /// Flattens an already-compiled legacy system.
  explicit CompiledSystem(const MassActionSystem& system);

  [[nodiscard]] std::size_t species_count() const { return species_count_; }
  [[nodiscard]] std::size_t reaction_count() const { return rates_.size(); }

  [[nodiscard]] double rate(std::size_t j) const { return rates_[j]; }
  [[nodiscard]] std::uint32_t order(std::size_t j) const { return orders_[j]; }
  [[nodiscard]] ReactionKernel kernel(std::size_t j) const {
    return kernels_[j];
  }

  /// Species indices of reaction j's distinct reactants (sorted ascending).
  [[nodiscard]] std::span<const std::uint32_t> reactant_species(
      std::size_t j) const {
    return {reactant_species_.data() + reactant_offsets_[j],
            reactant_offsets_[j + 1] - reactant_offsets_[j]};
  }
  /// Stoichiometric coefficients parallel to `reactant_species(j)`.
  [[nodiscard]] std::span<const std::uint32_t> reactant_stoich(
      std::size_t j) const {
    return {reactant_stoich_.data() + reactant_offsets_[j],
            reactant_offsets_[j + 1] - reactant_offsets_[j]};
  }
  /// Species indices reaction j changes (sorted ascending, deltas nonzero).
  [[nodiscard]] std::span<const std::uint32_t> net_species(
      std::size_t j) const {
    return {net_species_.data() + net_offsets_[j],
            net_offsets_[j + 1] - net_offsets_[j]};
  }
  /// Net count changes parallel to `net_species(j)`.
  [[nodiscard]] std::span<const std::int32_t> net_delta(std::size_t j) const {
    return {net_delta_.data() + net_offsets_[j],
            net_offsets_[j + 1] - net_offsets_[j]};
  }

  /// Sorted reactions (including j) whose propensity can change when j fires.
  [[nodiscard]] std::span<const std::uint32_t> affected_reactions(
      std::size_t j) const {
    return {dep_reactions_.data() + dep_offsets_[j],
            dep_offsets_[j + 1] - dep_offsets_[j]};
  }

  /// Sorted reactions whose propensity reads species i.
  [[nodiscard]] std::span<const std::uint32_t> dependents_of_species(
      std::size_t i) const {
    return {species_dep_reactions_.data() + species_dep_offsets_[i],
            species_dep_offsets_[i + 1] - species_dep_offsets_[i]};
  }

  /// True when firing j changes the count of at least one of j's own
  /// reactants; false means j's propensity is invariant under its own firing
  /// (pure catalysis), so the next-reaction method may reuse the stored value.
  [[nodiscard]] bool affects_own_reactants(std::size_t j) const {
    return affects_own_[j] != 0;
  }

  /// Deterministic flux of reaction j at concentrations x (bitwise equal to
  /// MassActionSystem::flux).
  [[nodiscard]] double flux(std::size_t j, std::span<const double> x) const;

  /// dx/dt at x; dxdt.size() must equal species_count(). Bitwise equal to
  /// MassActionSystem::rhs.
  void rhs(std::span<const double> x, std::span<double> dxdt) const;

  /// Analytic Jacobian; jac is resized/overwritten to NxN. Bitwise equal to
  /// MassActionSystem::jacobian.
  void jacobian(std::span<const double> x, util::Matrix& jac) const;

  /// Hoisted propensity scale factor k_j * omega^(1-order_j) for every
  /// reaction; `out.size()` must equal reaction_count(). Computing this once
  /// per run instead of per propensity call is the engine's main SSA win.
  void scaled_rates(double omega, std::span<double> out) const;

  /// Stochastic propensity of reaction j at counts n given its hoisted scale
  /// factor (an element of `scaled_rates` output). Bitwise equal to
  /// MassActionSystem::propensity(j, n, omega).
  [[nodiscard]] double propensity_scaled(std::size_t j,
                                         std::span<const std::int64_t> n,
                                         double scaled) const;

  /// Convenience form matching the legacy signature (recomputes the scale
  /// factor; used by tests and one-shot callers).
  [[nodiscard]] double propensity(std::size_t j,
                                  std::span<const std::int64_t> n,
                                  double omega) const;

  /// Applies one firing of reaction j to integer counts n.
  void apply(std::size_t j, std::span<std::int64_t> n) const;

 private:
  std::size_t species_count_ = 0;

  // Structure-of-arrays reaction data.
  std::vector<double> rates_;
  std::vector<std::uint32_t> orders_;
  std::vector<ReactionKernel> kernels_;
  std::vector<std::uint8_t> affects_own_;

  // CSR reactant table (merged duplicates, sorted by species index).
  std::vector<std::uint32_t> reactant_offsets_;
  std::vector<std::uint32_t> reactant_species_;
  std::vector<std::uint32_t> reactant_stoich_;

  // CSR net-change table (sorted by species index, zero deltas dropped).
  std::vector<std::uint32_t> net_offsets_;
  std::vector<std::uint32_t> net_species_;
  std::vector<std::int32_t> net_delta_;

  // CSR next-reaction dependency graph (sorted, self-edge included).
  std::vector<std::uint32_t> dep_offsets_;
  std::vector<std::uint32_t> dep_reactions_;

  // CSR species -> dependent reactions incidence.
  std::vector<std::uint32_t> species_dep_offsets_;
  std::vector<std::uint32_t> species_dep_reactions_;
};

}  // namespace mrsc::sim
