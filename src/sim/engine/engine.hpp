// Engine selection for the simulation core.
//
// Every simulator entry point that takes a `ReactionNetwork` dispatches on
// `EngineOptions::kind`:
//  * kLegacy   — the original `MassActionSystem` evaluation paths (vector-of-
//                pairs reaction storage, propensity scale factor recomputed
//                per call). Kept as the differential-testing reference.
//  * kCompiled — the CSR/structure-of-arrays `CompiledSystem` engine
//                (src/sim/engine/), with per-shape specialized kernels and
//                hoisted propensity scale factors. Bitwise-identical to the
//                legacy engine by construction; `test_engine.cpp` and the
//                `engine_equivalence` fuzz oracle enforce that contract.
//
// The default is kCompiled: the equivalence suite proves it drop-in safe, so
// all CLIs and the batch runtime get the fast path without opting in.
#pragma once

#include <cstdint>

namespace mrsc::sim {

enum class EngineKind : std::uint8_t {
  kLegacy,
  kCompiled,
};

struct EngineOptions {
  EngineKind kind = EngineKind::kCompiled;
};

[[nodiscard]] constexpr const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kLegacy:
      return "legacy";
    case EngineKind::kCompiled:
      return "compiled";
  }
  return "unknown";
}

}  // namespace mrsc::sim
