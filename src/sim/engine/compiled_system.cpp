#include "sim/engine/compiled_system.hpp"

#include <algorithm>
#include <cmath>

namespace mrsc::sim {

namespace {

ReactionKernel classify(std::span<const std::uint32_t> species,
                        std::span<const std::uint32_t> stoich) {
  if (species.size() == 1) {
    if (stoich[0] == 1) return ReactionKernel::kUnimolecular;
    if (stoich[0] == 2) return ReactionKernel::kDimer;
  } else if (species.size() == 2 && stoich[0] == 1 && stoich[1] == 1) {
    return ReactionKernel::kBimolecular;
  }
  return ReactionKernel::kGeneric;
}

}  // namespace

CompiledSystem::CompiledSystem(const core::ReactionNetwork& network)
    : CompiledSystem(MassActionSystem(network)) {}

CompiledSystem::CompiledSystem(const MassActionSystem& system)
    : species_count_(system.species_count()) {
  const std::size_t m = system.reaction_count();
  rates_.reserve(m);
  orders_.reserve(m);
  kernels_.reserve(m);
  affects_own_.reserve(m);
  reactant_offsets_.reserve(m + 1);
  net_offsets_.reserve(m + 1);
  dep_offsets_.reserve(m + 1);
  reactant_offsets_.push_back(0);
  net_offsets_.push_back(0);
  dep_offsets_.push_back(0);

  for (std::size_t j = 0; j < m; ++j) {
    const CompiledReaction& r = system.compiled_reaction(j);
    rates_.push_back(r.rate);
    orders_.push_back(r.order);

    for (const auto& [idx, stoich] : r.reactants) {
      reactant_species_.push_back(idx);
      reactant_stoich_.push_back(stoich);
    }
    reactant_offsets_.push_back(
        static_cast<std::uint32_t>(reactant_species_.size()));

    bool own = false;
    for (const auto& [idx, delta] : r.net_changes) {
      net_species_.push_back(idx);
      net_delta_.push_back(delta);
      for (const auto& [r_idx, r_stoich] : r.reactants) {
        if (r_idx == idx) own = true;
      }
    }
    net_offsets_.push_back(static_cast<std::uint32_t>(net_species_.size()));
    affects_own_.push_back(own ? 1 : 0);

    kernels_.push_back(classify(reactant_species(j), reactant_stoich(j)));

    for (std::uint32_t dep : system.affected_reactions(j)) {
      dep_reactions_.push_back(dep);
    }
    dep_offsets_.push_back(static_cast<std::uint32_t>(dep_reactions_.size()));
  }

  species_dep_offsets_.reserve(species_count_ + 1);
  species_dep_offsets_.push_back(0);
  for (std::size_t i = 0; i < species_count_; ++i) {
    for (std::uint32_t dep : system.dependents_of_species(i)) {
      species_dep_reactions_.push_back(dep);
    }
    species_dep_offsets_.push_back(
        static_cast<std::uint32_t>(species_dep_reactions_.size()));
  }
}

double CompiledSystem::flux(std::size_t j, std::span<const double> x) const {
  const std::uint32_t begin = reactant_offsets_[j];
  switch (kernels_[j]) {
    case ReactionKernel::kUnimolecular:
      return rates_[j] * x[reactant_species_[begin]];
    case ReactionKernel::kDimer: {
      const double xi = x[reactant_species_[begin]];
      return rates_[j] * xi * xi;
    }
    case ReactionKernel::kBimolecular:
      return rates_[j] * x[reactant_species_[begin]] *
             x[reactant_species_[begin + 1]];
    case ReactionKernel::kGeneric:
      break;
  }
  double f = rates_[j];
  const std::uint32_t end = reactant_offsets_[j + 1];
  for (std::uint32_t k = begin; k < end; ++k) {
    const double xi = x[reactant_species_[k]];
    const std::uint32_t stoich = reactant_stoich_[k];
    for (std::uint32_t s = 0; s < stoich; ++s) f *= xi;
  }
  return f;
}

void CompiledSystem::rhs(std::span<const double> x,
                         std::span<double> dxdt) const {
  std::ranges::fill(dxdt, 0.0);
  const std::size_t m = rates_.size();
  for (std::size_t j = 0; j < m; ++j) {
    const double f = flux(j, x);
    if (f == 0.0) continue;
    const std::uint32_t begin = net_offsets_[j];
    const std::uint32_t end = net_offsets_[j + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      dxdt[net_species_[k]] += static_cast<double>(net_delta_[k]) * f;
    }
  }
}

void CompiledSystem::jacobian(std::span<const double> x,
                              util::Matrix& jac) const {
  if (jac.rows() != species_count_ || jac.cols() != species_count_) {
    jac = util::Matrix(species_count_, species_count_);
  } else {
    jac.fill(0.0);
  }
  const std::size_t m_total = rates_.size();
  for (std::size_t j = 0; j < m_total; ++j) {
    const std::uint32_t begin = reactant_offsets_[j];
    const std::uint32_t end = reactant_offsets_[j + 1];
    // d(flux)/dx_m = k * s_m * x_m^(s_m - 1) * prod_{i != m} x_i^{s_i}
    for (std::uint32_t mk = begin; mk < end; ++mk) {
      const std::uint32_t m_idx = reactant_species_[mk];
      const std::uint32_t m_stoich = reactant_stoich_[mk];
      double dflux = rates_[j] * static_cast<double>(m_stoich);
      for (std::uint32_t s = 0; s + 1 < m_stoich; ++s) dflux *= x[m_idx];
      for (std::uint32_t ik = begin; ik < end; ++ik) {
        if (ik == mk) continue;
        const double xi = x[reactant_species_[ik]];
        const std::uint32_t stoich = reactant_stoich_[ik];
        for (std::uint32_t s = 0; s < stoich; ++s) dflux *= xi;
      }
      if (dflux == 0.0) continue;
      const std::uint32_t nb = net_offsets_[j];
      const std::uint32_t ne = net_offsets_[j + 1];
      for (std::uint32_t k = nb; k < ne; ++k) {
        jac(net_species_[k], m_idx) +=
            static_cast<double>(net_delta_[k]) * dflux;
      }
    }
  }
}

void CompiledSystem::scaled_rates(double omega, std::span<double> out) const {
  for (std::size_t j = 0; j < rates_.size(); ++j) {
    // Identical operands and operation as the legacy per-call computation, so
    // hoisting it out of the event loop cannot change a single bit.
    out[j] =
        rates_[j] * std::pow(omega, 1.0 - static_cast<double>(orders_[j]));
  }
}

double CompiledSystem::propensity_scaled(std::size_t j,
                                         std::span<const std::int64_t> n,
                                         double scaled) const {
  const std::uint32_t begin = reactant_offsets_[j];
  // Each specialization reproduces the legacy falling-factorial loop for its
  // shape: counts multiplied left-to-right in species-sorted order, with the
  // legacy's exact early-out (<= 0 check before each multiply) folded in.
  switch (kernels_[j]) {
    case ReactionKernel::kUnimolecular: {
      const std::int64_t c = n[reactant_species_[begin]];
      return c <= 0 ? 0.0 : scaled * static_cast<double>(c);
    }
    case ReactionKernel::kDimer: {
      const std::int64_t c = n[reactant_species_[begin]];
      if (c <= 1) return 0.0;
      return scaled * static_cast<double>(c) * static_cast<double>(c - 1);
    }
    case ReactionKernel::kBimolecular: {
      const std::int64_t c0 = n[reactant_species_[begin]];
      if (c0 <= 0) return 0.0;
      const std::int64_t c1 = n[reactant_species_[begin + 1]];
      if (c1 <= 0) return 0.0;
      return scaled * static_cast<double>(c0) * static_cast<double>(c1);
    }
    case ReactionKernel::kGeneric:
      break;
  }
  double a = scaled;
  const std::uint32_t end = reactant_offsets_[j + 1];
  for (std::uint32_t k = begin; k < end; ++k) {
    std::int64_t count = n[reactant_species_[k]];
    const std::uint32_t stoich = reactant_stoich_[k];
    for (std::uint32_t s = 0; s < stoich; ++s) {
      if (count <= 0) return 0.0;
      a *= static_cast<double>(count);
      --count;
    }
  }
  return a;
}

double CompiledSystem::propensity(std::size_t j,
                                  std::span<const std::int64_t> n,
                                  double omega) const {
  const double scaled =
      rates_[j] * std::pow(omega, 1.0 - static_cast<double>(orders_[j]));
  return propensity_scaled(j, n, scaled);
}

void CompiledSystem::apply(std::size_t j, std::span<std::int64_t> n) const {
  const std::uint32_t begin = net_offsets_[j];
  const std::uint32_t end = net_offsets_[j + 1];
  for (std::uint32_t k = begin; k < end; ++k) {
    n[net_species_[k]] += net_delta_[k];
  }
}

}  // namespace mrsc::sim
