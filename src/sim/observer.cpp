#include "sim/observer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mrsc::sim {

bool Observer::should_stop(double /*t*/, std::span<const double> /*state*/) {
  return false;
}

EdgeDetector::EdgeDetector(core::SpeciesId species, double low, double high)
    : species_(species), low_(low), high_(high) {
  if (!(low < high)) {
    throw std::invalid_argument("EdgeDetector: low must be < high");
  }
}

void EdgeDetector::on_step(double t, std::span<double> state) {
  const double x = state[species_.index()];
  if (!initialized_) {
    is_high_ = x >= high_;
    initialized_ = true;
    return;
  }
  if (!is_high_ && x >= high_) {
    is_high_ = true;
    rising_.push_back(t);
  } else if (is_high_ && x <= low_) {
    is_high_ = false;
    falling_.push_back(t);
  }
}

ScheduledInjector::ScheduledInjector(std::vector<Event> events)
    : events_(std::move(events)) {
  std::ranges::sort(events_, {}, &Event::time);
}

void ScheduledInjector::on_step(double t, std::span<double> state) {
  while (next_ < events_.size() && events_[next_].time <= t) {
    state[events_[next_].species.index()] += events_[next_].amount;
    ++next_;
  }
}

EdgeTriggeredInjector::EdgeTriggeredInjector(core::SpeciesId clock_species,
                                             double low, double high,
                                             core::SpeciesId target,
                                             std::vector<double> samples,
                                             std::size_t skip_edges)
    : edge_(clock_species, low, high),
      target_(target),
      samples_(std::move(samples)),
      skip_edges_(skip_edges) {}

void EdgeTriggeredInjector::on_step(double t, std::span<double> state) {
  const std::size_t before = edge_.rising_edges().size();
  edge_.on_step(t, state);
  if (edge_.rising_edges().size() == before) return;

  ++edges_seen_;
  if (edges_seen_ <= skip_edges_) return;
  if (next_sample_ >= samples_.size()) return;
  state[target_.index()] += samples_[next_sample_];
  ++next_sample_;
  injection_times_.push_back(t);
}

EdgeTriggeredSampler::EdgeTriggeredSampler(core::SpeciesId clock_species,
                                           double low, double high,
                                           core::SpeciesId target,
                                           bool clear_after_read,
                                           std::size_t skip_edges)
    : edge_(clock_species, low, high),
      target_(target),
      clear_after_read_(clear_after_read),
      skip_edges_(skip_edges) {}

void EdgeTriggeredSampler::on_step(double t, std::span<double> state) {
  const std::size_t before = edge_.rising_edges().size();
  edge_.on_step(t, state);
  if (edge_.rising_edges().size() == before) return;

  ++edges_seen_;
  if (edges_seen_ <= skip_edges_) {
    // Warmup edges: discard (but still clear) whatever the circuit
    // deposited, so warmup-cycle output does not contaminate the first
    // recorded sample.
    if (clear_after_read_) state[target_.index()] = 0.0;
    return;
  }
  samples_.push_back(state[target_.index()]);
  sample_times_.push_back(t);
  if (clear_after_read_) state[target_.index()] = 0.0;
}

SteadyStateDetector::SteadyStateDetector(double tol, double window)
    : tol_(tol), window_(window) {
  if (tol <= 0.0 || window <= 0.0) {
    throw std::invalid_argument(
        "SteadyStateDetector: tol and window must be positive");
  }
}

void SteadyStateDetector::on_step(double t, std::span<double> state) {
  if (reached_) return;
  if (last_time_ < 0.0) {
    last_time_ = t;
    last_state_.assign(state.begin(), state.end());
    return;
  }
  if (t - last_time_ < window_) return;

  double max_rate = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    max_rate = std::max(max_rate,
                        std::abs(state[i] - last_state_[i]) / (t - last_time_));
  }
  if (max_rate < tol_) {
    reached_ = true;
    reached_time_ = t;
  }
  last_time_ = t;
  last_state_.assign(state.begin(), state.end());
}

bool SteadyStateDetector::should_stop(double /*t*/,
                                      std::span<const double> /*state*/) {
  return reached_;
}

}  // namespace mrsc::sim
