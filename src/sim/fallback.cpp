#include "sim/fallback.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

namespace mrsc::sim {

namespace {

const char* ode_method_name(OdeMethod method) {
  switch (method) {
    case OdeMethod::kRk4Fixed:
      return "rk4";
    case OdeMethod::kDormandPrince45:
      return "dp45";
    case OdeMethod::kBackwardEuler:
      return "be";
  }
  return "ode";
}

const char* ssa_method_name(SsaMethod method) {
  switch (method) {
    case SsaMethod::kDirect:
      return "direct";
    case SsaMethod::kNextReaction:
      return "nrm";
    case SsaMethod::kTauLeaping:
      return "tau-leap";
  }
  return "ssa";
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct OdeRung {
  std::string name;
  OdeOptions options;
  bool ssa = false;
};

void default_sleep(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

/// Progressively more conservative version of the same method.
OdeOptions tightened_options(const OdeOptions& base) {
  OdeOptions options = base;
  switch (options.method) {
    case OdeMethod::kDormandPrince45:
      options.rel_tol *= 1e-2;
      options.abs_tol *= 1e-2;
      options.min_step *= 1e-3;
      options.max_step *= 0.25;
      options.dt = std::min(options.dt, 1e-4);
      break;
    case OdeMethod::kRk4Fixed:
      options.dt *= 0.1;
      break;
    case OdeMethod::kBackwardEuler:
      options.dt *= 0.1;
      options.newton_max_iters *= 2;
      break;
  }
  return options;
}

/// L-stable last resort before SSA: backward Euler at a small fixed step.
OdeOptions implicit_fixed_options(const OdeOptions& base) {
  OdeOptions options = base;
  options.method = OdeMethod::kBackwardEuler;
  options.dt = std::min(options.dt, 1e-3);
  options.newton_max_iters = std::max<std::uint32_t>(options.newton_max_iters,
                                                     24);
  return options;
}

const char* to_string(SimFailureKind kind) {
  switch (kind) {
    case SimFailureKind::kNone:
      return "none";
    case SimFailureKind::kStepUnderflow:
      return "step-underflow";
    case SimFailureKind::kNonFiniteState:
      return "non-finite-state";
    case SimFailureKind::kStepLimit:
      return "step-limit";
    case SimFailureKind::kEventLimit:
      return "event-limit";
    case SimFailureKind::kDeadline:
      return "deadline";
    case SimFailureKind::kException:
      return "exception";
  }
  return "unknown";
}

bool is_transient(SimFailureKind kind) {
  return kind == SimFailureKind::kDeadline;
}

SimFailure classify_failure(const OdeResult& result) {
  char detail[128];
  if (result.aborted) {
    std::snprintf(detail, sizeof detail,
                  "aborted after %zu accepted steps at t=%.6g",
                  result.steps_accepted, result.end_time);
    return {SimFailureKind::kDeadline, detail};
  }
  if (result.non_finite) {
    std::snprintf(detail, sizeof detail,
                  "state went non-finite after %zu accepted steps at t=%.6g",
                  result.steps_accepted, result.end_time);
    return {SimFailureKind::kNonFiniteState, detail};
  }
  if (result.hit_step_limit) {
    std::snprintf(detail, sizeof detail,
                  "accepted-step limit reached at t=%.6g", result.end_time);
    return {SimFailureKind::kStepLimit, detail};
  }
  if (result.steps_forced > 0) {
    std::snprintf(detail, sizeof detail,
                  "%zu steps forced at min_step with error estimate > 1",
                  result.steps_forced);
    return {SimFailureKind::kStepUnderflow, detail};
  }
  return {};
}

SimFailure classify_failure(const SsaResult& result) {
  char detail[128];
  if (result.aborted) {
    std::snprintf(detail, sizeof detail,
                  "aborted after %llu events at t=%.6g",
                  static_cast<unsigned long long>(result.events),
                  result.end_time);
    return {SimFailureKind::kDeadline, detail};
  }
  if (result.hit_event_limit) {
    std::snprintf(detail, sizeof detail,
                  "event limit of %llu reached at t=%.6g",
                  static_cast<unsigned long long>(result.events),
                  result.end_time);
    return {SimFailureKind::kEventLimit, detail};
  }
  return {};
}

std::string RecoveryLog::to_string() const {
  std::string out;
  for (const RecoveryAttempt& attempt : attempts) {
    if (!out.empty()) out += " -> ";
    out += attempt.rung;
    out += ':';
    out += sim::to_string(attempt.failure.kind);
  }
  // A trailing ":ok" marks where the ladder succeeded; a failed run ends on
  // its last failed attempt instead.
  const bool succeeded = recovered || attempts.empty();
  if (succeeded) {
    if (!out.empty()) out += " -> ";
    out += final_rung;
    out += ":ok";
  }
  return out;
}

std::string RecoveryLog::to_json() const {
  std::string out = "{\"recovered\":";
  out += recovered ? "true" : "false";
  out += ",\"final_rung\":\"" + json_escape(final_rung) + "\"";
  out += ",\"attempts\":[";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const RecoveryAttempt& attempt = attempts[i];
    if (i > 0) out += ',';
    out += "{\"attempt\":" + std::to_string(attempt.attempt);
    out += ",\"rung\":\"" + json_escape(attempt.rung) + "\"";
    out += ",\"failure\":\"";
    out += sim::to_string(attempt.failure.kind);
    out += "\",\"detail\":\"" + json_escape(attempt.failure.detail) + "\"";
    out += ",\"backoff_seconds\":" + format_double(attempt.backoff_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

FallbackResult simulate_ode_with_fallback(
    const core::ReactionNetwork& network, const OdeOptions& options,
    const FallbackOptions& fallback, std::vector<double> initial,
    std::span<Observer* const> observers) {
  std::vector<OdeRung> rungs;
  rungs.push_back({ode_method_name(options.method), options});
  rungs.push_back({"tightened", tightened_options(options)});
  if (options.method != OdeMethod::kBackwardEuler) {
    rungs.push_back({"implicit-fixed", implicit_fixed_options(options)});
  }
  if (fallback.allow_ssa_fallback && observers.empty()) {
    rungs.push_back({"ssa-nrm", options, /*ssa=*/true});
  }

  FallbackResult out;
  const std::size_t max_attempts = std::max<std::size_t>(1,
                                                         fallback.max_attempts);
  std::size_t rung_index = 0;
  std::size_t transient_retries = 0;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const OdeRung& rung = rungs[rung_index];
    if (attempt > 0 && fallback.reset_observers) fallback.reset_observers();

    SimFailure failure;
    try {
      if (!rung.ssa) {
        OdeOptions ode = rung.options;
        if (fallback.make_abort) ode.abort = fallback.make_abort();
        OdeResult run = simulate_ode(network, ode, initial, observers);
        failure = classify_failure(run);
        out.end_time = run.end_time;
        out.ode_steps = run.steps_accepted;
        out.ssa_events = 0;
        const std::span<const double> final = run.trajectory.final_state();
        out.final_state.assign(final.begin(), final.end());
        out.trajectory = std::move(run.trajectory);
        out.used_ssa = false;
      } else {
        SsaOptions ssa;
        ssa.t_end = rung.options.t_end;
        ssa.method = SsaMethod::kNextReaction;
        ssa.seed = fallback.ssa_seed;
        ssa.omega = fallback.ssa_omega;
        ssa.record_interval = rung.options.record_interval > 0.0
                                  ? rung.options.record_interval
                                  : 0.1;
        ssa.abort = fallback.make_abort ? fallback.make_abort()
                                        : rung.options.abort;
        SsaResult run = simulate_ssa(network, ssa, initial);
        failure = classify_failure(run);
        out.end_time = run.end_time;
        out.ode_steps = 0;
        out.ssa_events = run.events;
        out.final_state.resize(run.final_counts.size());
        for (std::size_t i = 0; i < run.final_counts.size(); ++i) {
          out.final_state[i] =
              static_cast<double>(run.final_counts[i]) / ssa.omega;
        }
        out.trajectory = std::move(run.trajectory);
        out.used_ssa = true;
      }
    } catch (const std::exception& error) {
      failure = {SimFailureKind::kException, error.what()};
    }

    out.log.final_rung = rung.name;
    if (!failure) {
      out.ok = true;
      out.failure = {};
      out.log.recovered = !out.log.attempts.empty();
      return out;
    }

    out.failure = failure;
    const bool last_attempt = attempt + 1 == max_attempts;
    double backoff = 0.0;
    if (is_transient(failure.kind)) {
      ++transient_retries;
      if (!last_attempt) {
        backoff = fallback.backoff_base_seconds *
                  std::pow(2.0, static_cast<double>(transient_retries - 1));
        backoff = std::min(backoff, fallback.backoff_cap_seconds);
      }
    } else {
      transient_retries = 0;
      ++rung_index;
    }
    out.log.attempts.push_back({attempt, rung.name, failure, backoff});
    if (last_attempt || rung_index >= rungs.size()) return out;
    if (backoff > 0.0) {
      (fallback.sleep ? fallback.sleep : default_sleep)(backoff);
    }
  }
  return out;
}

FallbackResult simulate_ssa_with_fallback(
    const core::ReactionNetwork& network, const SsaOptions& options,
    const FallbackOptions& fallback, std::vector<double> initial) {
  struct SsaRung {
    std::string name;
    SsaOptions options;
  };
  std::vector<SsaRung> rungs;
  rungs.push_back({ssa_method_name(options.method), options});
  SsaOptions budget = options;
  budget.max_events = options.max_events > 0
                          ? options.max_events * 16
                          : options.max_events;
  rungs.push_back({"event-budget", budget});
  if (options.method != SsaMethod::kTauLeaping) {
    SsaOptions leap = budget;
    leap.method = SsaMethod::kTauLeaping;
    rungs.push_back({"tau-leap", leap});
  }

  FallbackResult out;
  const std::size_t max_attempts = std::max<std::size_t>(1,
                                                         fallback.max_attempts);
  std::size_t rung_index = 0;
  std::size_t transient_retries = 0;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const SsaRung& rung = rungs[rung_index];

    SimFailure failure;
    try {
      SsaOptions ssa = rung.options;
      if (fallback.make_abort) ssa.abort = fallback.make_abort();
      SsaResult run = simulate_ssa(network, ssa, initial);
      failure = classify_failure(run);
      out.end_time = run.end_time;
      out.ssa_events = run.events;
      out.final_state.resize(run.final_counts.size());
      for (std::size_t i = 0; i < run.final_counts.size(); ++i) {
        out.final_state[i] =
            static_cast<double>(run.final_counts[i]) / ssa.omega;
      }
      out.trajectory = std::move(run.trajectory);
      out.used_ssa = true;
    } catch (const std::exception& error) {
      failure = {SimFailureKind::kException, error.what()};
    }

    out.log.final_rung = rung.name;
    if (!failure) {
      out.ok = true;
      out.failure = {};
      out.log.recovered = !out.log.attempts.empty();
      return out;
    }

    out.failure = failure;
    const bool last_attempt = attempt + 1 == max_attempts;
    double backoff = 0.0;
    if (is_transient(failure.kind)) {
      ++transient_retries;
      if (!last_attempt) {
        backoff = fallback.backoff_base_seconds *
                  std::pow(2.0, static_cast<double>(transient_retries - 1));
        backoff = std::min(backoff, fallback.backoff_cap_seconds);
      }
    } else {
      transient_retries = 0;
      ++rung_index;
    }
    out.log.attempts.push_back({attempt, rung.name, failure, backoff});
    if (last_attempt || rung_index >= rungs.size()) return out;
    if (backoff > 0.0) {
      (fallback.sleep ? fallback.sleep : default_sleep)(backoff);
    }
  }
  return out;
}

}  // namespace mrsc::sim
