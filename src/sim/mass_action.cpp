#include "sim/mass_action.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace mrsc::sim {

MassActionSystem::MassActionSystem(const core::ReactionNetwork& network)
    : species_count_(network.species_count()) {
  reactions_.reserve(network.reaction_count());
  species_dependents_.resize(species_count_);

  for (std::size_t j = 0; j < network.reaction_count(); ++j) {
    const core::Reaction& r = network.reaction(
        core::ReactionId{static_cast<core::ReactionId::underlying_type>(j)});
    CompiledReaction compiled;
    compiled.rate = network.effective_rate(r);
    compiled.order = r.order();

    // Merge duplicate reactant terms (e.g. "G + G" written as two terms).
    std::unordered_map<std::uint32_t, std::uint32_t> reactant_stoich;
    for (const core::Term& t : r.reactants()) {
      reactant_stoich[static_cast<std::uint32_t>(t.species.index())] +=
          t.stoich;
    }
    compiled.reactants.assign(reactant_stoich.begin(), reactant_stoich.end());
    std::ranges::sort(compiled.reactants);

    // Net changes, merged across both sides.
    std::unordered_map<std::uint32_t, std::int32_t> net;
    for (const core::Term& t : r.products()) {
      net[static_cast<std::uint32_t>(t.species.index())] +=
          static_cast<std::int32_t>(t.stoich);
    }
    for (const core::Term& t : r.reactants()) {
      net[static_cast<std::uint32_t>(t.species.index())] -=
          static_cast<std::int32_t>(t.stoich);
    }
    for (const auto& [idx, delta] : net) {
      if (delta != 0) compiled.net_changes.emplace_back(idx, delta);
    }
    std::ranges::sort(compiled.net_changes);

    for (const auto& [idx, stoich] : compiled.reactants) {
      species_dependents_[idx].push_back(static_cast<std::uint32_t>(j));
    }
    bool own = false;
    for (const auto& [idx, delta] : compiled.net_changes) {
      for (const auto& [r_idx, r_stoich] : compiled.reactants) {
        if (r_idx == idx) own = true;
      }
    }
    affects_own_.push_back(own ? 1 : 0);
    reactions_.push_back(std::move(compiled));
  }

  // Next-reaction dependency graph: when j fires it changes some species;
  // any reaction reading one of those species must recompute its propensity.
  reaction_dependents_.resize(reactions_.size());
  for (std::size_t j = 0; j < reactions_.size(); ++j) {
    std::unordered_set<std::uint32_t> affected;
    affected.insert(static_cast<std::uint32_t>(j));  // j itself re-draws
    for (const auto& [idx, delta] : reactions_[j].net_changes) {
      for (std::uint32_t dep : species_dependents_[idx]) {
        affected.insert(dep);
      }
    }
    reaction_dependents_[j].assign(affected.begin(), affected.end());
    std::ranges::sort(reaction_dependents_[j]);
  }
}

double MassActionSystem::flux(std::size_t j, std::span<const double> x) const {
  const CompiledReaction& r = reactions_[j];
  double f = r.rate;
  for (const auto& [idx, stoich] : r.reactants) {
    const double xi = x[idx];
    for (std::uint32_t s = 0; s < stoich; ++s) f *= xi;
  }
  return f;
}

void MassActionSystem::rhs(std::span<const double> x,
                           std::span<double> dxdt) const {
  std::ranges::fill(dxdt, 0.0);
  for (std::size_t j = 0; j < reactions_.size(); ++j) {
    const double f = flux(j, x);
    if (f == 0.0) continue;
    for (const auto& [idx, delta] : reactions_[j].net_changes) {
      dxdt[idx] += static_cast<double>(delta) * f;
    }
  }
}

void MassActionSystem::jacobian(std::span<const double> x,
                                util::Matrix& jac) const {
  if (jac.rows() != species_count_ || jac.cols() != species_count_) {
    jac = util::Matrix(species_count_, species_count_);
  } else {
    jac.fill(0.0);
  }
  for (const CompiledReaction& r : reactions_) {
    // d(flux)/dx_m = k * s_m * x_m^(s_m - 1) * prod_{i != m} x_i^{s_i}
    for (std::size_t m = 0; m < r.reactants.size(); ++m) {
      const auto [m_idx, m_stoich] = r.reactants[m];
      double dflux = r.rate * static_cast<double>(m_stoich);
      for (std::uint32_t s = 0; s + 1 < m_stoich; ++s) dflux *= x[m_idx];
      for (std::size_t i = 0; i < r.reactants.size(); ++i) {
        if (i == m) continue;
        const auto [idx, stoich] = r.reactants[i];
        for (std::uint32_t s = 0; s < stoich; ++s) dflux *= x[idx];
      }
      if (dflux == 0.0) continue;
      for (const auto& [row, delta] : r.net_changes) {
        jac(row, m_idx) += static_cast<double>(delta) * dflux;
      }
    }
  }
}

double MassActionSystem::propensity(std::size_t j,
                                    std::span<const std::int64_t> n,
                                    double omega) const {
  const CompiledReaction& r = reactions_[j];
  // a_j = k_j * omega^(1 - order) * prod_i falling_factorial(n_i, s_i)/s_i! *
  //       s_i!  == k_j * omega^(1-order) * prod_i falling(n_i, s_i).
  // (The s_i! from the combinatorial count C(n,s) cancels against the s_i!
  // in the deterministic<->stochastic rate conversion.)
  double a = r.rate * std::pow(omega, 1.0 - static_cast<double>(r.order));
  for (const auto& [idx, stoich] : r.reactants) {
    std::int64_t count = n[idx];
    for (std::uint32_t s = 0; s < stoich; ++s) {
      if (count <= 0) return 0.0;
      a *= static_cast<double>(count);
      --count;
    }
  }
  return a;
}

void MassActionSystem::apply(std::size_t j, std::span<std::int64_t> n) const {
  for (const auto& [idx, delta] : reactions_[j].net_changes) {
    n[idx] += delta;
  }
}

}  // namespace mrsc::sim
