// Deterministic simulation of mass-action kinetics.
//
// Three integrators are provided:
//  * kRk4Fixed          — classical fixed-step RK4 (simple, predictable cost)
//  * kDormandPrince45   — adaptive embedded RK45 with PI step control; the
//                         default. Handles the k_fast/k_slow stiffness of the
//                         paper's networks up to ratios of ~1e4 efficiently.
//  * kBackwardEuler     — semi-implicit with Newton iteration and the analytic
//                         mass-action Jacobian; for extreme rate separations
//                         (ratios of 1e5 and beyond) in the robustness sweeps.
//
// All integrators clamp tiny negative concentrations (integration noise) back
// to zero, call observers after every accepted step, and record the
// trajectory on a configurable interval.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/network.hpp"
#include "sim/engine/compiled_system.hpp"
#include "sim/engine/engine.hpp"
#include "sim/mass_action.hpp"
#include "sim/observer.hpp"
#include "sim/trajectory.hpp"

namespace mrsc::sim {

enum class OdeMethod : std::uint8_t {
  kRk4Fixed,
  kDormandPrince45,
  kBackwardEuler,
};

struct OdeOptions {
  double t_end = 100.0;
  OdeMethod method = OdeMethod::kDormandPrince45;

  /// Step size for the fixed-step methods; initial step for the adaptive one.
  double dt = 1e-3;

  // Adaptive (Dormand-Prince) controls.
  double rel_tol = 1e-6;
  double abs_tol = 1e-9;
  double max_step = 0.5;
  double min_step = 1e-12;

  /// Trajectory sampling period; 0 records every accepted step.
  double record_interval = 0.05;

  /// Hard cap on accepted steps (guards against runaway stiff runs).
  std::size_t max_steps = 200'000'000;

  // Newton controls for kBackwardEuler.
  std::uint32_t newton_max_iters = 12;
  double newton_tol = 1e-10;

  /// Which simulation engine evaluates the rate law (see engine/engine.hpp).
  /// Both engines produce bitwise-identical trajectories; kCompiled is the
  /// fast default, kLegacy the differential-testing reference.
  EngineOptions engine;

  /// Cooperative cancellation hook, polled after every accepted step. When it
  /// returns true the run stops and the result carries `aborted = true`. The
  /// batch runtime uses this for deadlines and cancel requests; the callback
  /// must be cheap and thread-safe if the options are shared across jobs.
  std::function<bool()> abort;
};

struct OdeResult {
  Trajectory trajectory;
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  /// Adaptive steps accepted *at* min_step with the error estimate still
  /// above 1 (the controller could not shrink further). A nonzero count is
  /// the step-size-underflow failure signature the fallback ladder reacts to.
  std::size_t steps_forced = 0;
  bool stopped_by_observer = false;
  bool hit_step_limit = false;
  /// The state left the finite domain (NaN/Inf). The run stops at the last
  /// finite state; the recorded trajectory never contains non-finite values.
  bool non_finite = false;
  bool aborted = false;  ///< OdeOptions::abort requested an early stop
  double end_time = 0.0;
};

/// Simulates `network` from `initial` (or the network's default initial state
/// if empty). Observers are invoked after every accepted step in order.
/// Dispatches on `options.engine.kind`.
[[nodiscard]] OdeResult simulate_ode(
    const core::ReactionNetwork& network, const OdeOptions& options,
    std::vector<double> initial = {},
    std::span<Observer* const> observers = {});

/// Same, but reuses an already-compiled legacy system (always runs the legacy
/// evaluation path).
[[nodiscard]] OdeResult simulate_ode(
    const MassActionSystem& system, const OdeOptions& options,
    std::vector<double> initial, std::span<Observer* const> observers = {});

/// Same, against the compiled engine. The `CompiledSystem` is read-only here
/// and may be shared across concurrent jobs.
[[nodiscard]] OdeResult simulate_ode(
    const CompiledSystem& system, const OdeOptions& options,
    std::vector<double> initial, std::span<Observer* const> observers = {});

}  // namespace mrsc::sim
