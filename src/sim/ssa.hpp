// Exact stochastic simulation (SSA).
//
// The paper validates its designs with deterministic ODE simulation, which is
// the infinite-population limit of the chemistry. Real molecular systems have
// finite counts; these simulators reproduce that regime exactly:
//  * kDirect       — Gillespie's direct method.
//  * kNextReaction — Gibson & Bruck's next-reaction method with a dependency
//                    graph and an indexed priority queue; asymptotically
//                    faster for networks where each firing touches few
//                    propensities (true of the paper's constructions).
//
// Counts are related to ODE concentrations through the volume factor `omega`
// (molecules per unit concentration): n_i = round(omega * x_i).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/network.hpp"
#include "sim/engine/compiled_system.hpp"
#include "sim/engine/engine.hpp"
#include "sim/mass_action.hpp"
#include "sim/trajectory.hpp"

namespace mrsc::sim {

enum class SsaMethod : std::uint8_t {
  kDirect,
  kNextReaction,
  /// Approximate accelerated method: fires Poisson-distributed batches of
  /// reactions over fixed leaps of length `SsaOptions::tau`. Orders of
  /// magnitude faster on dense populations at the cost of leap-size bias;
  /// each batch is capped by the available reactants so counts never go
  /// negative.
  kTauLeaping,
};

struct SsaOptions {
  double t_end = 100.0;
  SsaMethod method = SsaMethod::kNextReaction;
  std::uint64_t seed = 1;

  /// Volume scale: molecules per concentration unit.
  double omega = 1000.0;

  /// Sampling period of the recorded trajectory (in time units). Recorded
  /// values are counts divided by omega, i.e. concentration units, so SSA
  /// trajectories compare directly against ODE trajectories.
  double record_interval = 0.1;

  /// Hard cap on reaction events.
  std::uint64_t max_events = 500'000'000;

  /// Leap length for kTauLeaping (time units).
  double tau = 0.01;

  /// Which simulation engine evaluates propensities (see engine/engine.hpp).
  /// Both engines produce bitwise-identical trajectories; kCompiled is the
  /// fast default, kLegacy the differential-testing reference.
  EngineOptions engine;

  /// Cooperative cancellation hook. Polled every `abort_check_events` events
  /// (every leap for kTauLeaping), so an abort lands within microseconds
  /// without taxing the per-event hot path. When it returns true the run
  /// stops and the result carries `aborted = true`.
  std::function<bool()> abort;
  std::uint64_t abort_check_events = 1024;
};

struct SsaResult {
  Trajectory trajectory;  ///< concentration units (counts / omega)
  std::uint64_t events = 0;
  bool exhausted = false;  ///< all propensities hit zero before t_end
  bool hit_event_limit = false;
  bool aborted = false;  ///< SsaOptions::abort requested an early stop
  double end_time = 0.0;
  std::vector<std::int64_t> final_counts;
};

/// Runs one stochastic realization starting from counts derived from
/// `initial_concentrations` (or the network defaults if empty). Dispatches on
/// `options.engine.kind`.
[[nodiscard]] SsaResult simulate_ssa(
    const core::ReactionNetwork& network, const SsaOptions& options,
    std::vector<double> initial_concentrations = {});

/// Same, reusing a legacy-compiled system; `initial_counts` are raw molecule
/// counts. Always runs the legacy evaluation path.
[[nodiscard]] SsaResult simulate_ssa(const MassActionSystem& system,
                                     const SsaOptions& options,
                                     std::vector<std::int64_t> initial_counts);

/// Same, against the compiled engine. The `CompiledSystem` is read-only here
/// and may be shared across concurrent replicates (the ensemble runner builds
/// it once per design).
[[nodiscard]] SsaResult simulate_ssa(const CompiledSystem& system,
                                     const SsaOptions& options,
                                     std::vector<std::int64_t> initial_counts);

/// Converts concentrations to integer counts at volume omega.
[[nodiscard]] std::vector<std::int64_t> to_counts(
    std::span<const double> concentrations, double omega);

}  // namespace mrsc::sim
