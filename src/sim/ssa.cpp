#include "sim/ssa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace mrsc::sim {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// True when the cancellation hook requests a stop. Polled on a stride of
/// `abort_check_events` so the per-event hot path stays untaxed.
bool abort_due(const SsaOptions& options, std::uint64_t events) {
  if (!options.abort) return false;
  const std::uint64_t stride = std::max<std::uint64_t>(
      options.abort_check_events, 1);
  return events % stride == 0 && options.abort();
}

/// Indexed binary min-heap over (reaction, absolute firing time); supports
/// decrease/increase-key by reaction index, as the next-reaction method needs.
class IndexedTimeHeap {
 public:
  explicit IndexedTimeHeap(std::span<const double> initial_times)
      : times_(initial_times.begin(), initial_times.end()),
        heap_(initial_times.size()),
        position_(initial_times.size()) {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      heap_[i] = i;
      position_[i] = i;
    }
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t top_reaction() const { return heap_.front(); }
  [[nodiscard]] double top_time() const { return times_[heap_.front()]; }

  void update(std::size_t reaction, double new_time) {
    const double old_time = times_[reaction];
    times_[reaction] = new_time;
    const std::size_t pos = position_[reaction];
    if (new_time < old_time) {
      sift_up(pos);
    } else if (new_time > old_time) {
      sift_down(pos);
    }
  }

 private:
  void sift_up(std::size_t pos) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (times_[heap_[parent]] <= times_[heap_[pos]]) break;
      swap_nodes(parent, pos);
      pos = parent;
    }
  }

  void sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * pos + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = pos;
      if (left < n && times_[heap_[left]] < times_[heap_[smallest]]) {
        smallest = left;
      }
      if (right < n && times_[heap_[right]] < times_[heap_[smallest]]) {
        smallest = right;
      }
      if (smallest == pos) break;
      swap_nodes(smallest, pos);
      pos = smallest;
    }
  }

  void swap_nodes(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    position_[heap_[a]] = a;
    position_[heap_[b]] = b;
  }

  std::vector<double> times_;       // keyed by reaction index
  std::vector<std::size_t> heap_;   // heap of reaction indices
  std::vector<std::size_t> position_;  // reaction -> heap slot
};

/// Shared recording helper: samples counts (as concentrations) on a fixed
/// time grid using zero-order hold between events.
class SsaRecorder {
 public:
  SsaRecorder(const SsaOptions& options, std::size_t species_count)
      : options_(options),
        scratch_(species_count),
        trajectory_(species_count) {}

  void record_initial(std::span<const std::int64_t> counts) {
    sample(0.0, counts);
    next_sample_ = options_.record_interval;
  }

  /// Fills the sampling grid up to (but not including) `t_event` with the
  /// pre-event counts, implementing zero-order hold.
  void before_event(double t_event, std::span<const std::int64_t> counts) {
    while (next_sample_ < t_event && next_sample_ <= options_.t_end) {
      sample(next_sample_, counts);
      next_sample_ += options_.record_interval;
    }
  }

  void finish(double t_final, std::span<const std::int64_t> counts) {
    before_event(t_final, counts);
    sample(t_final, counts);
  }

  [[nodiscard]] Trajectory take() { return std::move(trajectory_); }

 private:
  void sample(double t, std::span<const std::int64_t> counts) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      scratch_[i] = static_cast<double>(counts[i]) / options_.omega;
    }
    trajectory_.append(t, scratch_);
  }

  const SsaOptions& options_;
  std::vector<double> scratch_;
  Trajectory trajectory_;
  double next_sample_ = 0.0;
};

SsaResult run_direct(const MassActionSystem& system, const SsaOptions& options,
                     std::vector<std::int64_t> counts) {
  util::Rng rng(options.seed);
  const std::size_t m = system.reaction_count();
  SsaResult result;
  SsaRecorder recorder(options, system.species_count());
  recorder.record_initial(counts);

  std::vector<double> propensities(m);
  double t = 0.0;
  while (t < options.t_end && result.events < options.max_events) {
    if (abort_due(options, result.events)) {
      result.aborted = true;
      break;
    }
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      propensities[j] = system.propensity(j, counts, options.omega);
      total += propensities[j];
    }
    if (total <= 0.0) {
      result.exhausted = true;
      break;
    }
    const double dt = rng.exponential(total);
    const double t_next = t + dt;
    if (t_next > options.t_end) {
      t = options.t_end;
      break;
    }
    // Select the firing reaction proportionally to its propensity.
    double target = rng.uniform() * total;
    std::size_t chosen = m - 1;
    for (std::size_t j = 0; j < m; ++j) {
      target -= propensities[j];
      if (target <= 0.0) {
        chosen = j;
        break;
      }
    }
    recorder.before_event(t_next, counts);
    system.apply(chosen, counts);
    t = t_next;
    ++result.events;
  }
  result.hit_event_limit =
      result.events >= options.max_events && t < options.t_end;
  result.end_time = std::min(t, options.t_end);
  recorder.finish(result.end_time, counts);
  result.trajectory = recorder.take();
  result.final_counts = std::move(counts);
  return result;
}

SsaResult run_next_reaction(const MassActionSystem& system,
                            const SsaOptions& options,
                            std::vector<std::int64_t> counts) {
  util::Rng rng(options.seed);
  const std::size_t m = system.reaction_count();
  SsaResult result;
  SsaRecorder recorder(options, system.species_count());
  recorder.record_initial(counts);

  std::vector<double> propensities(m);
  std::vector<double> firing_times(m);
  for (std::size_t j = 0; j < m; ++j) {
    propensities[j] = system.propensity(j, counts, options.omega);
    firing_times[j] = propensities[j] > 0.0
                          ? rng.exponential(propensities[j])
                          : kInfinity;
  }
  IndexedTimeHeap heap(firing_times);

  double t = 0.0;
  while (result.events < options.max_events) {
    if (abort_due(options, result.events)) {
      result.aborted = true;
      break;
    }
    const std::size_t fired = heap.top_reaction();
    const double t_next = heap.top_time();
    if (t_next == kInfinity) {
      result.exhausted = true;
      break;
    }
    if (t_next > options.t_end) {
      t = options.t_end;
      break;
    }
    recorder.before_event(t_next, counts);
    system.apply(fired, counts);
    t = t_next;
    ++result.events;

    // Update every dependent reaction's propensity and firing time.
    for (std::uint32_t dep : system.affected_reactions(fired)) {
      const double a_new = system.propensity(dep, counts, options.omega);
      double new_time;
      if (dep == fired) {
        new_time = a_new > 0.0 ? t + rng.exponential(a_new) : kInfinity;
      } else {
        const double a_old = propensities[dep];
        const double old_time = firing_times[dep];
        if (a_new <= 0.0) {
          new_time = kInfinity;
        } else if (a_old <= 0.0 || old_time == kInfinity) {
          new_time = t + rng.exponential(a_new);
        } else {
          // Gibson-Bruck reuse: rescale the residual waiting time.
          new_time = t + (a_old / a_new) * (old_time - t);
        }
      }
      propensities[dep] = a_new;
      firing_times[dep] = new_time;
      heap.update(dep, new_time);
    }
  }
  result.hit_event_limit =
      result.events >= options.max_events && t < options.t_end;
  result.end_time = std::min(t, options.t_end);
  recorder.finish(result.end_time, counts);
  result.trajectory = recorder.take();
  result.final_counts = std::move(counts);
  return result;
}

SsaResult run_tau_leaping(const MassActionSystem& system,
                          const SsaOptions& options,
                          std::vector<std::int64_t> counts) {
  util::Rng rng(options.seed);
  const std::size_t m = system.reaction_count();
  SsaResult result;
  SsaRecorder recorder(options, system.species_count());
  recorder.record_initial(counts);

  double t = 0.0;
  while (t < options.t_end && result.events < options.max_events) {
    if (options.abort && options.abort()) {  // every leap is coarse enough
      result.aborted = true;
      break;
    }
    const double tau = std::min(options.tau, options.t_end - t);
    if (t + tau <= t) break;  // leap below one ulp of t: cannot advance
    bool any_active = false;
    std::uint64_t fired_this_leap = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const double a = system.propensity(j, counts, options.omega);
      if (a <= 0.0) continue;
      any_active = true;
      std::uint64_t firings = rng.poisson(a * tau);
      // Cap the batch by the available reactants: an uncapped overshoot
      // would drive counts negative, and naive clamping *mints* molecules —
      // a fast reversible pair (e.g. the feedback dimers 2G <-> I) then
      // amplifies the surplus into a runaway.
      for (const auto& [idx, stoich] :
           system.compiled_reaction(j).reactants) {
        const std::uint64_t cap =
            static_cast<std::uint64_t>(counts[idx] / stoich);
        firings = std::min(firings, cap);
      }
      for (std::uint64_t f = 0; f < firings; ++f) {
        system.apply(j, counts);
      }
      fired_this_leap += firings;
    }
    if (!any_active) {
      result.exhausted = true;
      break;
    }
    recorder.before_event(t + tau, counts);
    t += tau;
    result.events += fired_this_leap;
  }
  result.hit_event_limit =
      result.events >= options.max_events && t < options.t_end;
  result.end_time = std::min(t, options.t_end);
  recorder.finish(result.end_time, counts);
  result.trajectory = recorder.take();
  result.final_counts = std::move(counts);
  return result;
}

}  // namespace

std::vector<std::int64_t> to_counts(std::span<const double> concentrations,
                                    double omega) {
  std::vector<std::int64_t> counts(concentrations.size());
  for (std::size_t i = 0; i < concentrations.size(); ++i) {
    counts[i] = static_cast<std::int64_t>(
        std::llround(concentrations[i] * omega));
    if (counts[i] < 0) counts[i] = 0;
  }
  return counts;
}

SsaResult simulate_ssa(const core::ReactionNetwork& network,
                       const SsaOptions& options,
                       std::vector<double> initial_concentrations) {
  if (initial_concentrations.empty()) {
    initial_concentrations = network.initial_state();
  }
  const MassActionSystem system(network);
  return simulate_ssa(system, options,
                      to_counts(initial_concentrations, options.omega));
}

SsaResult simulate_ssa(const MassActionSystem& system,
                       const SsaOptions& options,
                       std::vector<std::int64_t> initial_counts) {
  if (initial_counts.size() != system.species_count()) {
    throw std::invalid_argument("simulate_ssa: initial counts size mismatch");
  }
  if (options.t_end <= 0.0 || options.omega <= 0.0 ||
      options.record_interval <= 0.0) {
    throw std::invalid_argument(
        "simulate_ssa: t_end, omega, record_interval must be positive");
  }
  switch (options.method) {
    case SsaMethod::kDirect:
      return run_direct(system, options, std::move(initial_counts));
    case SsaMethod::kNextReaction:
      return run_next_reaction(system, options, std::move(initial_counts));
    case SsaMethod::kTauLeaping:
      if (options.tau <= 0.0) {
        throw std::invalid_argument("simulate_ssa: tau must be positive");
      }
      return run_tau_leaping(system, options, std::move(initial_counts));
  }
  throw std::logic_error("simulate_ssa: unknown method");
}

}  // namespace mrsc::sim
