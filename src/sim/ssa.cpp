#include "sim/ssa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/engine/arena.hpp"
#include "util/rng.hpp"

namespace mrsc::sim {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// True when the cancellation hook requests a stop. Polled on a stride of
/// `abort_check_events` so the per-event hot path stays untaxed.
bool abort_due(const SsaOptions& options, std::uint64_t events) {
  if (!options.abort) return false;
  const std::uint64_t stride = std::max<std::uint64_t>(
      options.abort_check_events, 1);
  return events % stride == 0 && options.abort();
}

/// Indexed binary min-heap over (reaction, absolute firing time); supports
/// decrease/increase-key by reaction index, as the next-reaction method needs.
class IndexedTimeHeap {
 public:
  explicit IndexedTimeHeap(std::span<const double> initial_times)
      : times_(initial_times.begin(), initial_times.end()),
        heap_(initial_times.size()),
        position_(initial_times.size()) {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      heap_[i] = i;
      position_[i] = i;
    }
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t top_reaction() const { return heap_.front(); }
  [[nodiscard]] double top_time() const { return times_[heap_.front()]; }

  void update(std::size_t reaction, double new_time) {
    const double old_time = times_[reaction];
    times_[reaction] = new_time;
    const std::size_t pos = position_[reaction];
    if (new_time < old_time) {
      sift_up(pos);
    } else if (new_time > old_time) {
      sift_down(pos);
    }
  }

 private:
  void sift_up(std::size_t pos) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (times_[heap_[parent]] <= times_[heap_[pos]]) break;
      swap_nodes(parent, pos);
      pos = parent;
    }
  }

  void sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * pos + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = pos;
      if (left < n && times_[heap_[left]] < times_[heap_[smallest]]) {
        smallest = left;
      }
      if (right < n && times_[heap_[right]] < times_[heap_[smallest]]) {
        smallest = right;
      }
      if (smallest == pos) break;
      swap_nodes(smallest, pos);
      pos = smallest;
    }
  }

  void swap_nodes(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    position_[heap_[a]] = a;
    position_[heap_[b]] = b;
  }

  std::vector<double> times_;       // keyed by reaction index
  std::vector<std::size_t> heap_;   // heap of reaction indices
  std::vector<std::size_t> position_;  // reaction -> heap slot
};

/// Shared recording helper: samples counts (as concentrations) on a fixed
/// time grid using zero-order hold between events.
class SsaRecorder {
 public:
  SsaRecorder(const SsaOptions& options, std::size_t species_count)
      : options_(options),
        scratch_(species_count),
        trajectory_(species_count) {}

  void record_initial(std::span<const std::int64_t> counts) {
    sample(0.0, counts);
    next_sample_ = options_.record_interval;
  }

  /// Fills the sampling grid up to (but not including) `t_event` with the
  /// pre-event counts, implementing zero-order hold.
  void before_event(double t_event, std::span<const std::int64_t> counts) {
    while (next_sample_ < t_event && next_sample_ <= options_.t_end) {
      sample(next_sample_, counts);
      next_sample_ += options_.record_interval;
    }
  }

  void finish(double t_final, std::span<const std::int64_t> counts) {
    before_event(t_final, counts);
    sample(t_final, counts);
  }

  [[nodiscard]] Trajectory take() { return std::move(trajectory_); }

 private:
  void sample(double t, std::span<const std::int64_t> counts) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      scratch_[i] = static_cast<double>(counts[i]) / options_.omega;
    }
    trajectory_.append(t, scratch_);
  }

  const SsaOptions& options_;
  std::vector<double> scratch_;
  Trajectory trajectory_;
  double next_sample_ = 0.0;
};

// The three steppers below are templated over an evaluator so the legacy
// (MassActionSystem) and compiled (CompiledSystem) engines share one stepper
// implementation. Both evaluators perform identical floating-point operation
// sequences; the engines differ only in data layout and in where the
// propensity scale factor k * omega^(1-order) is computed (per call vs hoisted
// per run), neither of which can change a bit of the result.

/// Legacy evaluator: forwards to MassActionSystem, recomputing the propensity
/// scale factor on every call exactly as the original code did.
class LegacyEval {
 public:
  LegacyEval(const MassActionSystem& system, double omega)
      : system_(system), omega_(omega) {}

  [[nodiscard]] std::size_t reaction_count() const {
    return system_.reaction_count();
  }
  [[nodiscard]] std::size_t species_count() const {
    return system_.species_count();
  }
  [[nodiscard]] double propensity(std::size_t j,
                                  std::span<const std::int64_t> n) const {
    return system_.propensity(j, n, omega_);
  }
  void apply(std::size_t j, std::span<std::int64_t> n) const {
    system_.apply(j, n);
  }
  [[nodiscard]] std::span<const std::uint32_t> affected(std::size_t j) const {
    return system_.affected_reactions(j);
  }
  [[nodiscard]] bool affects_own_reactants(std::size_t j) const {
    return system_.affects_own_reactants(j);
  }
  template <class F>
  void for_each_reactant(std::size_t j, F&& f) const {
    for (const auto& [idx, stoich] : system_.compiled_reaction(j).reactants) {
      f(idx, stoich);
    }
  }

 private:
  const MassActionSystem& system_;
  double omega_;
};

/// Compiled evaluator: CSR tables plus per-run hoisted scale factors carved
/// from the run arena. The referenced CompiledSystem is strictly read-only,
/// so one instance is safely shared across concurrent replicates.
class CompiledEval {
 public:
  CompiledEval(const CompiledSystem& system, double omega, Arena& arena)
      : system_(system),
        scaled_(arena.alloc<double>(system.reaction_count())) {
    system_.scaled_rates(omega, scaled_);
  }

  [[nodiscard]] std::size_t reaction_count() const {
    return system_.reaction_count();
  }
  [[nodiscard]] std::size_t species_count() const {
    return system_.species_count();
  }
  [[nodiscard]] double propensity(std::size_t j,
                                  std::span<const std::int64_t> n) const {
    return system_.propensity_scaled(j, n, scaled_[j]);
  }
  void apply(std::size_t j, std::span<std::int64_t> n) const {
    system_.apply(j, n);
  }
  [[nodiscard]] std::span<const std::uint32_t> affected(std::size_t j) const {
    return system_.affected_reactions(j);
  }
  [[nodiscard]] bool affects_own_reactants(std::size_t j) const {
    return system_.affects_own_reactants(j);
  }
  template <class F>
  void for_each_reactant(std::size_t j, F&& f) const {
    const auto species = system_.reactant_species(j);
    const auto stoich = system_.reactant_stoich(j);
    for (std::size_t k = 0; k < species.size(); ++k) {
      f(species[k], stoich[k]);
    }
  }

 private:
  const CompiledSystem& system_;
  std::span<double> scaled_;
};

template <class Eval>
SsaResult run_direct(const Eval& eval, const SsaOptions& options,
                     std::vector<std::int64_t> counts) {
  util::Rng rng(options.seed);
  const std::size_t m = eval.reaction_count();
  SsaResult result;
  SsaRecorder recorder(options, eval.species_count());
  recorder.record_initial(counts);

  std::vector<double> propensities(m);
  double t = 0.0;
  while (t < options.t_end && result.events < options.max_events) {
    if (abort_due(options, result.events)) {
      result.aborted = true;
      break;
    }
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      propensities[j] = eval.propensity(j, counts);
      total += propensities[j];
    }
    if (total <= 0.0) {
      result.exhausted = true;
      break;
    }
    const double dt = rng.exponential(total);
    const double t_next = t + dt;
    if (t_next > options.t_end) {
      t = options.t_end;
      break;
    }
    // Select the firing reaction proportionally to its propensity.
    double target = rng.uniform() * total;
    std::size_t chosen = m - 1;
    for (std::size_t j = 0; j < m; ++j) {
      target -= propensities[j];
      if (target <= 0.0) {
        chosen = j;
        break;
      }
    }
    recorder.before_event(t_next, counts);
    eval.apply(chosen, counts);
    t = t_next;
    ++result.events;
  }
  result.hit_event_limit =
      result.events >= options.max_events && t < options.t_end;
  result.end_time = std::min(t, options.t_end);
  recorder.finish(result.end_time, counts);
  result.trajectory = recorder.take();
  result.final_counts = std::move(counts);
  return result;
}

template <class Eval>
SsaResult run_next_reaction(const Eval& eval, const SsaOptions& options,
                            std::vector<std::int64_t> counts) {
  util::Rng rng(options.seed);
  const std::size_t m = eval.reaction_count();
  SsaResult result;
  SsaRecorder recorder(options, eval.species_count());
  recorder.record_initial(counts);

  std::vector<double> propensities(m);
  std::vector<double> firing_times(m);
  for (std::size_t j = 0; j < m; ++j) {
    propensities[j] = eval.propensity(j, counts);
    firing_times[j] = propensities[j] > 0.0
                          ? rng.exponential(propensities[j])
                          : kInfinity;
  }
  IndexedTimeHeap heap(firing_times);

  double t = 0.0;
  while (result.events < options.max_events) {
    if (abort_due(options, result.events)) {
      result.aborted = true;
      break;
    }
    const std::size_t fired = heap.top_reaction();
    const double t_next = heap.top_time();
    if (t_next == kInfinity) {
      result.exhausted = true;
      break;
    }
    if (t_next > options.t_end) {
      t = options.t_end;
      break;
    }
    recorder.before_event(t_next, counts);
    eval.apply(fired, counts);
    t = t_next;
    ++result.events;

    // Update every dependent reaction's propensity and firing time.
    for (std::uint32_t dep : eval.affected(fired)) {
      double a_new;
      if (dep == fired && !eval.affects_own_reactants(fired)) {
        // Pure catalysis: firing left fired's own reactant counts untouched,
        // so its propensity is exactly the stored value — skip the recompute.
        // (It still needs a fresh exponential draw below.)
        a_new = propensities[fired];
      } else {
        a_new = eval.propensity(dep, counts);
      }
      double new_time;
      if (dep == fired) {
        new_time = a_new > 0.0 ? t + rng.exponential(a_new) : kInfinity;
      } else {
        const double a_old = propensities[dep];
        const double old_time = firing_times[dep];
        if (a_new <= 0.0) {
          new_time = kInfinity;
        } else if (a_old <= 0.0 || old_time == kInfinity) {
          new_time = t + rng.exponential(a_new);
        } else {
          // Gibson-Bruck reuse: rescale the residual waiting time.
          new_time = t + (a_old / a_new) * (old_time - t);
        }
      }
      propensities[dep] = a_new;
      firing_times[dep] = new_time;
      heap.update(dep, new_time);
    }
  }
  result.hit_event_limit =
      result.events >= options.max_events && t < options.t_end;
  result.end_time = std::min(t, options.t_end);
  recorder.finish(result.end_time, counts);
  result.trajectory = recorder.take();
  result.final_counts = std::move(counts);
  return result;
}

template <class Eval>
SsaResult run_tau_leaping(const Eval& eval, const SsaOptions& options,
                          std::vector<std::int64_t> counts) {
  util::Rng rng(options.seed);
  const std::size_t m = eval.reaction_count();
  SsaResult result;
  SsaRecorder recorder(options, eval.species_count());
  recorder.record_initial(counts);

  double t = 0.0;
  while (t < options.t_end && result.events < options.max_events) {
    if (options.abort && options.abort()) {  // every leap is coarse enough
      result.aborted = true;
      break;
    }
    const double tau = std::min(options.tau, options.t_end - t);
    if (t + tau <= t) break;  // leap below one ulp of t: cannot advance
    bool any_active = false;
    std::uint64_t fired_this_leap = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const double a = eval.propensity(j, counts);
      if (a <= 0.0) continue;
      any_active = true;
      std::uint64_t firings = rng.poisson(a * tau);
      // Cap the batch by the available reactants: an uncapped overshoot
      // would drive counts negative, and naive clamping *mints* molecules —
      // a fast reversible pair (e.g. the feedback dimers 2G <-> I) then
      // amplifies the surplus into a runaway.
      eval.for_each_reactant(j, [&](std::uint32_t idx, std::uint32_t stoich) {
        const std::uint64_t cap =
            static_cast<std::uint64_t>(counts[idx] / stoich);
        firings = std::min(firings, cap);
      });
      for (std::uint64_t f = 0; f < firings; ++f) {
        eval.apply(j, counts);
      }
      fired_this_leap += firings;
    }
    if (!any_active) {
      result.exhausted = true;
      break;
    }
    recorder.before_event(t + tau, counts);
    t += tau;
    result.events += fired_this_leap;
  }
  result.hit_event_limit =
      result.events >= options.max_events && t < options.t_end;
  result.end_time = std::min(t, options.t_end);
  recorder.finish(result.end_time, counts);
  result.trajectory = recorder.take();
  result.final_counts = std::move(counts);
  return result;
}

void validate_options(std::size_t species_count, const SsaOptions& options,
                      const std::vector<std::int64_t>& initial_counts) {
  if (initial_counts.size() != species_count) {
    throw std::invalid_argument("simulate_ssa: initial counts size mismatch");
  }
  if (options.t_end <= 0.0 || options.omega <= 0.0 ||
      options.record_interval <= 0.0) {
    throw std::invalid_argument(
        "simulate_ssa: t_end, omega, record_interval must be positive");
  }
  if (options.method == SsaMethod::kTauLeaping && options.tau <= 0.0) {
    throw std::invalid_argument("simulate_ssa: tau must be positive");
  }
}

template <class Eval>
SsaResult dispatch_method(const Eval& eval, const SsaOptions& options,
                          std::vector<std::int64_t> counts) {
  switch (options.method) {
    case SsaMethod::kDirect:
      return run_direct(eval, options, std::move(counts));
    case SsaMethod::kNextReaction:
      return run_next_reaction(eval, options, std::move(counts));
    case SsaMethod::kTauLeaping:
      return run_tau_leaping(eval, options, std::move(counts));
  }
  throw std::logic_error("simulate_ssa: unknown method");
}

}  // namespace

std::vector<std::int64_t> to_counts(std::span<const double> concentrations,
                                    double omega) {
  std::vector<std::int64_t> counts(concentrations.size());
  for (std::size_t i = 0; i < concentrations.size(); ++i) {
    counts[i] = static_cast<std::int64_t>(
        std::llround(concentrations[i] * omega));
    if (counts[i] < 0) counts[i] = 0;
  }
  return counts;
}

SsaResult simulate_ssa(const core::ReactionNetwork& network,
                       const SsaOptions& options,
                       std::vector<double> initial_concentrations) {
  if (initial_concentrations.empty()) {
    initial_concentrations = network.initial_state();
  }
  if (options.engine.kind == EngineKind::kCompiled) {
    const CompiledSystem system(network);
    return simulate_ssa(system, options,
                        to_counts(initial_concentrations, options.omega));
  }
  const MassActionSystem system(network);
  return simulate_ssa(system, options,
                      to_counts(initial_concentrations, options.omega));
}

SsaResult simulate_ssa(const MassActionSystem& system,
                       const SsaOptions& options,
                       std::vector<std::int64_t> initial_counts) {
  validate_options(system.species_count(), options, initial_counts);
  const LegacyEval eval(system, options.omega);
  return dispatch_method(eval, options, std::move(initial_counts));
}

SsaResult simulate_ssa(const CompiledSystem& system, const SsaOptions& options,
                       std::vector<std::int64_t> initial_counts) {
  validate_options(system.species_count(), options, initial_counts);
  Arena arena;
  const CompiledEval eval(system, options.omega, arena);
  return dispatch_method(eval, options, std::move(initial_counts));
}

}  // namespace mrsc::sim
