// Failure classification and the solver fallback ladder.
//
// A simulation attempt can fail for reasons that have nothing to do with the
// network being wrong: the adaptive controller underflows its step size on a
// stiff transient, an explicit method blows up to NaN, an SSA run exhausts
// its event budget, or the batch deadline fires mid-run. `classify_failure`
// turns the raw result flags into a structured `SimFailure`, and
// `simulate_*_with_fallback` react to it by walking a ladder of progressively
// more conservative configurations:
//
//   ODE:  as-requested -> "tightened" (smaller tolerances/steps)
//                      -> "implicit-fixed" (backward Euler, small fixed step)
//                      -> "ssa-nrm" (exact stochastic, optional)
//   SSA:  as-requested -> "event-budget" (16x the event cap)
//                      -> "tau-leap" (approximate accelerated method)
//
// Non-transient failures advance one rung; transient ones (deadline) retry
// the same rung after a capped exponential backoff, on the theory that a
// fresh per-attempt deadline may suffice. Every failed attempt is recorded
// in a `RecoveryLog` whose rendering is deterministic — it contains only the
// attempt index, rung name, classified failure, and the *scheduled* backoff,
// never wall-clock measurements — so logs compare equal across thread
// counts and reruns.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"
#include "sim/trajectory.hpp"

namespace mrsc::sim {

enum class SimFailureKind : std::uint8_t {
  kNone,            ///< the attempt succeeded
  kStepUnderflow,   ///< adaptive steps forced through at min_step with err > 1
  kNonFiniteState,  ///< the state left the finite domain (NaN/Inf)
  kStepLimit,       ///< OdeOptions::max_steps exhausted before t_end
  kEventLimit,      ///< SsaOptions::max_events exhausted before t_end
  kDeadline,        ///< the abort hook fired (deadline or cancellation)
  kException,       ///< the stepper threw; detail carries what()
};

[[nodiscard]] const char* to_string(SimFailureKind kind);

/// Transient failures are resource exhaustion that a retry with a fresh
/// budget may clear (currently only kDeadline — a new attempt gets a new
/// per-attempt deadline). Everything else is deterministic: the same rung
/// would fail the same way, so the ladder advances instead.
[[nodiscard]] bool is_transient(SimFailureKind kind);

struct SimFailure {
  SimFailureKind kind = SimFailureKind::kNone;
  std::string detail;  ///< human-readable specifics (counts, what(), ...)

  explicit operator bool() const { return kind != SimFailureKind::kNone; }
};

/// Inspects the result flags of a finished attempt. Precedence (first match
/// wins): deadline, non-finite, step/event limit, step underflow.
[[nodiscard]] SimFailure classify_failure(const OdeResult& result);
[[nodiscard]] SimFailure classify_failure(const SsaResult& result);

/// One failed attempt as recorded by the ladder. Successful attempts are not
/// logged; `RecoveryLog::final_rung` names where the run ended up.
struct RecoveryAttempt {
  std::size_t attempt = 0;  ///< 0-based attempt index
  std::string rung;         ///< ladder rung the attempt ran on
  SimFailure failure;
  /// Scheduled backoff before the next attempt (0 for rung advances). The
  /// *scheduled* value is recorded, not the measured sleep, to keep logs
  /// deterministic.
  double backoff_seconds = 0.0;
};

struct RecoveryLog {
  std::vector<RecoveryAttempt> attempts;  ///< failed attempts, in order
  std::string final_rung;                 ///< rung of the last attempt
  bool recovered = false;  ///< succeeded after at least one failure

  /// "rk4:non-finite-state -> tightened:non-finite-state -> implicit-fixed:ok"
  [[nodiscard]] std::string to_string() const;
  /// Deterministic single-line JSON object.
  [[nodiscard]] std::string to_json() const;
};

/// The "tightened" rung: same method, smaller tolerances/steps. Exposed so
/// callers that own their observer wiring (the stress campaign harness) can
/// walk the ladder themselves.
[[nodiscard]] OdeOptions tightened_options(const OdeOptions& options);

/// The "implicit-fixed" rung: backward Euler at a small fixed step.
[[nodiscard]] OdeOptions implicit_fixed_options(const OdeOptions& options);

struct FallbackOptions {
  /// Total attempts across all rungs (>= 1). 1 disables the ladder: the
  /// first failure is final, matching the plain simulate_* behaviour.
  std::size_t max_attempts = 4;

  /// Backoff before retrying a transient failure: base * 2^(retry-1),
  /// capped. Base 0 disables sleeping but still records the rung retry.
  double backoff_base_seconds = 0.0;
  double backoff_cap_seconds = 2.0;

  /// Whether the ODE ladder may bottom out in an exact SSA run. Skipped
  /// automatically when observers are attached (SSA has no observer hook).
  bool allow_ssa_fallback = true;
  double ssa_omega = 1000.0;
  std::uint64_t ssa_seed = 1;

  /// Injectable sleep for the transient backoff; tests pass a no-op or a
  /// recorder. Null uses std::this_thread::sleep_for.
  std::function<void(double seconds)> sleep;

  /// Called before each attempt to build that attempt's abort hook (so a
  /// deadline retry gets a fresh budget). Null reuses the hook already set
  /// on the simulation options for every attempt.
  std::function<std::function<bool()>()> make_abort;

  /// Called before every attempt after the first. Callers passing stateful
  /// observers (edge detectors, samplers) must reset them here or the retry
  /// will observe stale state.
  std::function<void()> reset_observers;
};

struct FallbackResult {
  bool ok = false;
  SimFailure failure;  ///< final classified failure when !ok
  RecoveryLog log;
  Trajectory trajectory;
  std::vector<double> final_state;
  double end_time = 0.0;
  std::size_t ode_steps = 0;    ///< accepted steps of the last ODE attempt
  std::uint64_t ssa_events = 0;  ///< events of the last SSA attempt
  bool used_ssa = false;  ///< the successful attempt ran on an SSA rung
};

/// Runs `network` down the ODE ladder starting from `options`. Observers are
/// re-invoked on every attempt (see FallbackOptions::reset_observers); when
/// any are attached the SSA rung is skipped.
[[nodiscard]] FallbackResult simulate_ode_with_fallback(
    const core::ReactionNetwork& network, const OdeOptions& options,
    const FallbackOptions& fallback, std::vector<double> initial = {},
    std::span<Observer* const> observers = {});

/// Runs `network` down the SSA ladder starting from `options`.
[[nodiscard]] FallbackResult simulate_ssa_with_fallback(
    const core::ReactionNetwork& network, const SsaOptions& options,
    const FallbackOptions& fallback, std::vector<double> initial = {});

}  // namespace mrsc::sim
