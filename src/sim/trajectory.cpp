#include "sim/trajectory.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mrsc::sim {

void Trajectory::append(double t, std::span<const double> state) {
  if (state.size() != species_count_) {
    throw std::invalid_argument("Trajectory::append: state size mismatch");
  }
  if (!times_.empty() && t < times_.back()) {
    throw std::invalid_argument("Trajectory::append: time went backwards");
  }
  times_.push_back(t);
  values_.insert(values_.end(), state.begin(), state.end());
}

std::span<const double> Trajectory::state(std::size_t k) const {
  return {values_.data() + k * species_count_, species_count_};
}

std::span<const double> Trajectory::final_state() const {
  if (times_.empty()) {
    throw std::logic_error("Trajectory::final_state: empty trajectory");
  }
  return state(times_.size() - 1);
}

double Trajectory::final_value(core::SpeciesId id) const {
  return final_state()[id.index()];
}

double Trajectory::value_at(double t, core::SpeciesId id) const {
  if (times_.empty()) {
    throw std::logic_error("Trajectory::value_at: empty trajectory");
  }
  if (t <= times_.front()) return value(0, id);
  if (t >= times_.back()) return value(times_.size() - 1, id);
  const auto it = std::ranges::lower_bound(times_, t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0.0) return value(hi, id);
  const double w = (t - times_[lo]) / span;
  return (1.0 - w) * value(lo, id) + w * value(hi, id);
}

double Trajectory::max_in_window(core::SpeciesId id, double t_lo,
                                 double t_hi) const {
  double best = -1e300;
  for (std::size_t k = 0; k < times_.size(); ++k) {
    if (times_[k] < t_lo || times_[k] > t_hi) continue;
    best = std::max(best, value(k, id));
  }
  if (best == -1e300) {
    throw std::invalid_argument("max_in_window: no samples in window");
  }
  return best;
}

double Trajectory::min_in_window(core::SpeciesId id, double t_lo,
                                 double t_hi) const {
  double best = 1e300;
  for (std::size_t k = 0; k < times_.size(); ++k) {
    if (times_[k] < t_lo || times_[k] > t_hi) continue;
    best = std::min(best, value(k, id));
  }
  if (best == 1e300) {
    throw std::invalid_argument("min_in_window: no samples in window");
  }
  return best;
}

std::vector<double> Trajectory::series(core::SpeciesId id) const {
  std::vector<double> out(times_.size());
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = value(k, id);
  return out;
}

std::string Trajectory::to_csv(const core::ReactionNetwork& network,
                               std::span<const core::SpeciesId> ids) const {
  std::ostringstream out;
  out << "time";
  for (const core::SpeciesId id : ids) out << "," << network.species_name(id);
  out << "\n";
  for (std::size_t k = 0; k < times_.size(); ++k) {
    out << times_[k];
    for (const core::SpeciesId id : ids) out << "," << value(k, id);
    out << "\n";
  }
  return out.str();
}

}  // namespace mrsc::sim
