// Time-series output of simulations.
//
// A `Trajectory` stores sampled states (all species) against time, plus query
// helpers used throughout the analysis layer: interpolation, extrema over
// windows, final values, and CSV export.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::sim {

class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::size_t species_count)
      : species_count_(species_count) {}

  [[nodiscard]] std::size_t species_count() const { return species_count_; }
  [[nodiscard]] std::size_t sample_count() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }

  /// Appends a sample; `state.size()` must equal `species_count()` and `t`
  /// must be non-decreasing.
  void append(double t, std::span<const double> state);

  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] double time(std::size_t k) const { return times_[k]; }

  /// Value of species `id` in sample `k`.
  [[nodiscard]] double value(std::size_t k, core::SpeciesId id) const {
    return values_[k * species_count_ + id.index()];
  }

  /// Full state of sample `k`.
  [[nodiscard]] std::span<const double> state(std::size_t k) const;

  /// Final state (must be non-empty).
  [[nodiscard]] std::span<const double> final_state() const;
  [[nodiscard]] double final_time() const { return times_.back(); }
  [[nodiscard]] double final_value(core::SpeciesId id) const;

  /// Linear interpolation of species `id` at time `t` (clamped to range).
  [[nodiscard]] double value_at(double t, core::SpeciesId id) const;

  /// Extremum of species `id` over the [t_lo, t_hi] window (sample-based).
  [[nodiscard]] double max_in_window(core::SpeciesId id, double t_lo,
                                     double t_hi) const;
  [[nodiscard]] double min_in_window(core::SpeciesId id, double t_lo,
                                     double t_hi) const;

  /// Full time series of one species.
  [[nodiscard]] std::vector<double> series(core::SpeciesId id) const;

  /// CSV with a time column plus one column per listed species, using the
  /// names from `network` as the header.
  [[nodiscard]] std::string to_csv(const core::ReactionNetwork& network,
                                   std::span<const core::SpeciesId> ids) const;

 private:
  std::size_t species_count_ = 0;
  std::vector<double> times_;
  std::vector<double> values_;  // row-major: sample-major, species-minor
};

}  // namespace mrsc::sim
