// Compiled mass-action kinetics.
//
// `MassActionSystem` flattens a ReactionNetwork into cache-friendly arrays and
// evaluates the deterministic rate law, its analytic Jacobian, and stochastic
// propensities. All simulators share this compiled form; rebuilding it is how
// rate-policy changes (robustness sweeps) take effect.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/network.hpp"
#include "util/matrix.hpp"

namespace mrsc::sim {

/// One reaction in compiled form.
struct CompiledReaction {
  double rate = 0.0;  ///< resolved numeric rate constant
  /// (species index, stoichiometric coefficient) of each distinct reactant.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reactants;
  /// (species index, net change) for every species the reaction changes.
  std::vector<std::pair<std::uint32_t, std::int32_t>> net_changes;
  std::uint32_t order = 0;  ///< total kinetic order
};

class MassActionSystem {
 public:
  /// Compiles `network` using its current rate policy and multipliers. The
  /// network must outlive this object only for `network()` access; the
  /// compiled arrays are self-contained.
  explicit MassActionSystem(const core::ReactionNetwork& network);

  [[nodiscard]] std::size_t species_count() const { return species_count_; }
  [[nodiscard]] std::size_t reaction_count() const {
    return reactions_.size();
  }
  [[nodiscard]] const CompiledReaction& compiled_reaction(
      std::size_t j) const {
    return reactions_[j];
  }

  /// Deterministic flux of reaction `j` at concentrations `x`:
  /// k_j * prod_i x_i^s_ij.
  [[nodiscard]] double flux(std::size_t j, std::span<const double> x) const;

  /// dx/dt at concentrations `x`; `dxdt.size()` must equal species_count().
  void rhs(std::span<const double> x, std::span<double> dxdt) const;

  /// Analytic Jacobian d(dx/dt)/dx; `jac` is resized/overwritten to NxN.
  void jacobian(std::span<const double> x, util::Matrix& jac) const;

  /// Stochastic propensity of reaction `j` at integer counts `n` in volume
  /// `omega` (molecules per concentration unit). Uses the standard
  /// concentration->count conversion: a_j = k_j * omega * prod_i
  /// C(n_i, s_i) * s_i! / omega^{s_i}.
  [[nodiscard]] double propensity(std::size_t j,
                                  std::span<const std::int64_t> n,
                                  double omega) const;

  /// Applies one firing of reaction `j` to integer counts `n`.
  void apply(std::size_t j, std::span<std::int64_t> n) const;

  /// Indices of reactions whose propensity depends on species `i`.
  [[nodiscard]] const std::vector<std::uint32_t>& dependents_of_species(
      std::size_t i) const {
    return species_dependents_[i];
  }

  /// Reaction dependency graph for the next-reaction method: for reaction j,
  /// the sorted list of reactions (including j) whose propensity can change
  /// when j fires.
  [[nodiscard]] const std::vector<std::uint32_t>& affected_reactions(
      std::size_t j) const {
    return reaction_dependents_[j];
  }

  /// True when firing j changes the count of at least one of j's own
  /// reactants; false means j's propensity is invariant under its own firing
  /// (pure catalysis), so the next-reaction method may reuse the stored value
  /// instead of recomputing it.
  [[nodiscard]] bool affects_own_reactants(std::size_t j) const {
    return affects_own_[j] != 0;
  }

 private:
  std::size_t species_count_ = 0;
  std::vector<CompiledReaction> reactions_;
  std::vector<std::uint8_t> affects_own_;
  std::vector<std::vector<std::uint32_t>> species_dependents_;
  std::vector<std::vector<std::uint32_t>> reaction_dependents_;
};

}  // namespace mrsc::sim
