#include "sim/ode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine/arena.hpp"
#include "util/matrix.hpp"

namespace mrsc::sim {

namespace {

void clamp_nonnegative(std::span<double> x) {
  for (double& v : x) {
    if (v < 0.0) v = 0.0;
  }
}

bool has_non_finite(std::span<const double> x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

/// Shared bookkeeping: recording, observers, stop checks.
class RunContext {
 public:
  RunContext(const OdeOptions& options, std::size_t species_count,
             std::span<Observer* const> observers)
      : options_(options),
        observers_(observers),
        trajectory_(species_count) {}

  /// Processes an accepted step; returns false if the run should stop.
  bool accept(double t, std::span<double> state) {
    clamp_nonnegative(state);
    for (Observer* obs : observers_) obs->on_step(t, state);
    clamp_nonnegative(state);  // observers may inject/clear
    if (options_.record_interval <= 0.0 || t >= next_record_) {
      trajectory_.append(t, state);
      if (options_.record_interval > 0.0) {
        // Advance to the first grid point strictly after t.
        next_record_ +=
            options_.record_interval *
            std::floor((t - next_record_) / options_.record_interval + 1.0);
      }
    }
    for (Observer* obs : observers_) {
      if (obs->should_stop(t, state)) {
        stopped_ = true;
        return false;
      }
    }
    if (options_.abort && options_.abort()) {
      aborted_ = true;
      return false;
    }
    return true;
  }

  void record_initial(double t, std::span<const double> state) {
    trajectory_.append(t, state);
    next_record_ = t + options_.record_interval;
  }

  void record_final(double t, std::span<const double> state) {
    if (trajectory_.empty() || trajectory_.final_time() < t) {
      trajectory_.append(t, state);
    }
  }

  [[nodiscard]] bool stopped_by_observer() const { return stopped_; }
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] Trajectory take_trajectory() { return std::move(trajectory_); }

 private:
  const OdeOptions& options_;
  std::span<Observer* const> observers_;
  Trajectory trajectory_;
  double next_record_ = 0.0;
  bool stopped_ = false;
  bool aborted_ = false;
};

// The integrators are templated over the system so the legacy
// (MassActionSystem) and compiled (CompiledSystem) engines share one stepper;
// both provide bitwise-identical rhs/jacobian, so the integrators produce
// bitwise-identical trajectories under either engine. Stage temporaries come
// from a per-run arena so a run's scratch arrays sit in one contiguous block.

template <class System>
OdeResult run_rk4(const System& system, const OdeOptions& options,
                  std::vector<double> x, std::span<Observer* const> observers) {
  const std::size_t n = system.species_count();
  OdeResult result;
  RunContext ctx(options, n, observers);
  ctx.record_initial(0.0, x);

  Arena arena;
  std::span<double> k1 = arena.alloc<double>(n), k2 = arena.alloc<double>(n),
                    k3 = arena.alloc<double>(n), k4 = arena.alloc<double>(n),
                    tmp = arena.alloc<double>(n);
  std::vector<double> x_new(n);
  double t = 0.0;
  while (t < options.t_end && result.steps_accepted < options.max_steps) {
    const double h = std::min(options.dt, options.t_end - t);
    system.rhs(x, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k1[i];
    system.rhs(tmp, k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k2[i];
    system.rhs(tmp, k3);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * k3[i];
    system.rhs(tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      x_new[i] = x[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    if (has_non_finite(x_new)) {
      result.non_finite = true;
      break;  // x still holds the last finite state
    }
    std::swap(x, x_new);
    t += h;
    ++result.steps_accepted;
    if (!ctx.accept(t, x)) break;
  }
  result.hit_step_limit =
      result.steps_accepted >= options.max_steps && t < options.t_end;
  result.stopped_by_observer = ctx.stopped_by_observer();
  result.aborted = ctx.aborted();
  ctx.record_final(t, x);
  result.trajectory = ctx.take_trajectory();
  result.end_time = t;
  return result;
}

// Dormand-Prince RK45 Butcher tableau.
constexpr double kA21 = 1.0 / 5.0;
constexpr double kA31 = 3.0 / 40.0, kA32 = 9.0 / 40.0;
constexpr double kA41 = 44.0 / 45.0, kA42 = -56.0 / 15.0, kA43 = 32.0 / 9.0;
constexpr double kA51 = 19372.0 / 6561.0, kA52 = -25360.0 / 2187.0,
                 kA53 = 64448.0 / 6561.0, kA54 = -212.0 / 729.0;
constexpr double kA61 = 9017.0 / 3168.0, kA62 = -355.0 / 33.0,
                 kA63 = 46732.0 / 5247.0, kA64 = 49.0 / 176.0,
                 kA65 = -5103.0 / 18656.0;
constexpr double kB1 = 35.0 / 384.0, kB3 = 500.0 / 1113.0,
                 kB4 = 125.0 / 192.0, kB5 = -2187.0 / 6784.0,
                 kB6 = 11.0 / 84.0;
constexpr double kE1 = kB1 - 5179.0 / 57600.0, kE3 = kB3 - 7571.0 / 16695.0,
                 kE4 = kB4 - 393.0 / 640.0, kE5 = kB5 + 92097.0 / 339200.0,
                 kE6 = kB6 - 187.0 / 2100.0, kE7 = -1.0 / 40.0;

template <class System>
OdeResult run_dp45(const System& system, const OdeOptions& options,
                   std::vector<double> x,
                   std::span<Observer* const> observers) {
  const std::size_t n = system.species_count();
  OdeResult result;
  RunContext ctx(options, n, observers);
  ctx.record_initial(0.0, x);

  Arena arena;
  std::span<double> k1 = arena.alloc<double>(n), k2 = arena.alloc<double>(n),
                    k3 = arena.alloc<double>(n), k4 = arena.alloc<double>(n),
                    k5 = arena.alloc<double>(n), k6 = arena.alloc<double>(n),
                    k7 = arena.alloc<double>(n), tmp = arena.alloc<double>(n);
  std::vector<double> x_new(n);
  double t = 0.0;
  double h = std::min(options.dt, options.t_end);

  while (t < options.t_end && result.steps_accepted < options.max_steps) {
    h = std::clamp(h, options.min_step, options.max_step);
    h = std::min(h, options.t_end - t);

    system.rhs(x, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * kA21 * k1[i];
    system.rhs(tmp, k2);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + h * (kA31 * k1[i] + kA32 * k2[i]);
    }
    system.rhs(tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + h * (kA41 * k1[i] + kA42 * k2[i] + kA43 * k3[i]);
    }
    system.rhs(tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + h * (kA51 * k1[i] + kA52 * k2[i] + kA53 * k3[i] +
                           kA54 * k4[i]);
    }
    system.rhs(tmp, k5);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + h * (kA61 * k1[i] + kA62 * k2[i] + kA63 * k3[i] +
                           kA64 * k4[i] + kA65 * k5[i]);
    }
    system.rhs(tmp, k6);
    for (std::size_t i = 0; i < n; ++i) {
      x_new[i] = x[i] + h * (kB1 * k1[i] + kB3 * k3[i] + kB4 * k4[i] +
                             kB5 * k5[i] + kB6 * k6[i]);
    }
    if (has_non_finite(x_new)) {
      result.non_finite = true;
      break;  // x still holds the last finite state
    }
    system.rhs(x_new, k7);

    // Weighted RMS error of the embedded 4th/5th order difference.
    double err_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = h * (kE1 * k1[i] + kE3 * k3[i] + kE4 * k4[i] +
                            kE5 * k5[i] + kE6 * k6[i] + kE7 * k7[i]);
      const double scale =
          options.abs_tol +
          options.rel_tol * std::max(std::abs(x[i]), std::abs(x_new[i]));
      const double ratio = e / scale;
      err_sq += ratio * ratio;
    }
    const double err = std::sqrt(err_sq / static_cast<double>(n));

    if (err <= 1.0 || h <= options.min_step) {
      // Accepting at min_step with err > 1 means the controller could not
      // shrink the step far enough: a step-size underflow (stiffness beyond
      // the tolerance budget). Count it so the fallback ladder can react.
      if (err > 1.0) ++result.steps_forced;
      t += h;
      std::swap(x, x_new);
      ++result.steps_accepted;
      if (!ctx.accept(t, x)) break;
    } else {
      ++result.steps_rejected;
    }
    const double factor = !std::isfinite(err) ? 0.2
                          : (err <= 0.0)
                              ? 5.0
                              : std::clamp(0.9 * std::pow(err, -0.2), 0.2, 5.0);
    h *= factor;
  }
  result.hit_step_limit =
      result.steps_accepted >= options.max_steps && t < options.t_end;
  result.stopped_by_observer = ctx.stopped_by_observer();
  result.aborted = ctx.aborted();
  ctx.record_final(t, x);
  result.trajectory = ctx.take_trajectory();
  result.end_time = t;
  return result;
}

template <class System>
OdeResult run_backward_euler(const System& system, const OdeOptions& options,
                             std::vector<double> x,
                             std::span<Observer* const> observers) {
  const std::size_t n = system.species_count();
  OdeResult result;
  RunContext ctx(options, n, observers);
  ctx.record_initial(0.0, x);

  std::vector<double> z(n), f(n), residual(n);
  util::Matrix jac(n, n), newton_matrix(n, n);
  double t = 0.0;

  while (t < options.t_end && result.steps_accepted < options.max_steps) {
    const double h = std::min(options.dt, options.t_end - t);
    // Newton iteration on F(z) = z - x - h f(z) = 0, warm-started at x.
    z = x;
    bool converged = false;
    for (std::uint32_t iter = 0; iter < options.newton_max_iters; ++iter) {
      system.rhs(z, f);
      double residual_norm = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        residual[i] = z[i] - x[i] - h * f[i];
        residual_norm = std::max(residual_norm, std::abs(residual[i]));
      }
      if (residual_norm < options.newton_tol) {
        converged = true;
        break;
      }
      system.jacobian(z, jac);
      newton_matrix.set_identity();
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          newton_matrix(r, c) -= h * jac(r, c);
        }
      }
      const util::LuFactorization lu(newton_matrix);
      lu.solve_in_place(residual);
      for (std::size_t i = 0; i < n; ++i) z[i] -= residual[i];
      clamp_nonnegative(z);
    }
    if (!converged) {
      // Fall back to one explicit Euler step at this size; backward Euler's
      // L-stability is a convenience here, not a correctness requirement.
      system.rhs(x, f);
      for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + h * f[i];
    }
    if (has_non_finite(z)) {
      result.non_finite = true;
      break;  // x still holds the last finite state
    }
    x = z;
    t += h;
    ++result.steps_accepted;
    if (!ctx.accept(t, x)) break;
  }
  result.hit_step_limit =
      result.steps_accepted >= options.max_steps && t < options.t_end;
  result.stopped_by_observer = ctx.stopped_by_observer();
  result.aborted = ctx.aborted();
  ctx.record_final(t, x);
  result.trajectory = ctx.take_trajectory();
  result.end_time = t;
  return result;
}

template <class System>
OdeResult dispatch_method(const System& system, const OdeOptions& options,
                          std::vector<double> initial,
                          std::span<Observer* const> observers) {
  if (initial.size() != system.species_count()) {
    throw std::invalid_argument("simulate_ode: initial state size mismatch");
  }
  if (options.t_end <= 0.0 || options.dt <= 0.0) {
    throw std::invalid_argument("simulate_ode: t_end and dt must be positive");
  }
  switch (options.method) {
    case OdeMethod::kRk4Fixed:
      return run_rk4(system, options, std::move(initial), observers);
    case OdeMethod::kDormandPrince45:
      return run_dp45(system, options, std::move(initial), observers);
    case OdeMethod::kBackwardEuler:
      return run_backward_euler(system, options, std::move(initial),
                                observers);
  }
  throw std::logic_error("simulate_ode: unknown method");
}

}  // namespace

OdeResult simulate_ode(const core::ReactionNetwork& network,
                       const OdeOptions& options, std::vector<double> initial,
                       std::span<Observer* const> observers) {
  if (initial.empty()) initial = network.initial_state();
  if (options.engine.kind == EngineKind::kCompiled) {
    const CompiledSystem system(network);
    return simulate_ode(system, options, std::move(initial), observers);
  }
  const MassActionSystem system(network);
  return simulate_ode(system, options, std::move(initial), observers);
}

OdeResult simulate_ode(const MassActionSystem& system,
                       const OdeOptions& options, std::vector<double> initial,
                       std::span<Observer* const> observers) {
  return dispatch_method(system, options, std::move(initial), observers);
}

OdeResult simulate_ode(const CompiledSystem& system, const OdeOptions& options,
                       std::vector<double> initial,
                       std::span<Observer* const> observers) {
  return dispatch_method(system, options, std::move(initial), observers);
}

}  // namespace mrsc::sim
