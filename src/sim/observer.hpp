// Simulation observers.
//
// Observers hook into the ODE integration loop after every accepted step.
// They can watch the state (edge detection, steady-state tests), modify it
// (input injection — the molecular analogue of driving a circuit's input pins
// each clock cycle), or stop the run early.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/network.hpp"

namespace mrsc::sim {

class Observer {
 public:
  virtual ~Observer() = default;

  /// Called after every accepted integration step. May modify `state`
  /// (e.g. to inject an input sample).
  virtual void on_step(double t, std::span<double> state) = 0;

  /// Return true to terminate the simulation after this step.
  [[nodiscard]] virtual bool should_stop(double t,
                                         std::span<const double> state);
};

/// Detects threshold crossings of one species with hysteresis. A rising edge
/// is recorded when the value goes above `high`; the detector re-arms when it
/// falls below `low`. Used to find clock phase boundaries.
class EdgeDetector : public Observer {
 public:
  EdgeDetector(core::SpeciesId species, double low, double high);

  void on_step(double t, std::span<double> state) override;

  [[nodiscard]] const std::vector<double>& rising_edges() const {
    return rising_;
  }
  [[nodiscard]] const std::vector<double>& falling_edges() const {
    return falling_;
  }

 private:
  core::SpeciesId species_;
  double low_;
  double high_;
  bool is_high_ = false;
  bool initialized_ = false;
  std::vector<double> rising_;
  std::vector<double> falling_;
};

/// Injects scheduled amounts into species at fixed times (adds to the current
/// concentration, modelling a fast injection of molecules).
class ScheduledInjector : public Observer {
 public:
  struct Event {
    double time;
    core::SpeciesId species;
    double amount;
  };

  /// Events need not be pre-sorted.
  explicit ScheduledInjector(std::vector<Event> events);

  void on_step(double t, std::span<double> state) override;

  [[nodiscard]] std::size_t injected_count() const { return next_; }

 private:
  std::vector<Event> events_;
  std::size_t next_ = 0;
};

/// Injects the next value of a sample stream into `target` every time
/// `clock_species` produces a rising edge (with hysteresis), i.e. once per
/// clock cycle — the paper's "an input value is accepted each cycle".
/// Optionally skips the first `skip_edges` edges (reset cycles).
class EdgeTriggeredInjector : public Observer {
 public:
  EdgeTriggeredInjector(core::SpeciesId clock_species, double low, double high,
                        core::SpeciesId target, std::vector<double> samples,
                        std::size_t skip_edges = 0);

  void on_step(double t, std::span<double> state) override;

  /// Times at which each sample was injected.
  [[nodiscard]] const std::vector<double>& injection_times() const {
    return injection_times_;
  }
  [[nodiscard]] std::size_t injected_count() const {
    return injection_times_.size();
  }

 private:
  EdgeDetector edge_;
  core::SpeciesId target_;
  std::vector<double> samples_;
  std::size_t skip_edges_;
  std::size_t edges_seen_ = 0;
  std::size_t next_sample_ = 0;
  std::vector<double> injection_times_;
};

/// Samples (and optionally clears) a species on each rising edge of a clock
/// species: the molecular analogue of reading an output register every cycle.
class EdgeTriggeredSampler : public Observer {
 public:
  EdgeTriggeredSampler(core::SpeciesId clock_species, double low, double high,
                       core::SpeciesId target, bool clear_after_read,
                       std::size_t skip_edges = 0);

  void on_step(double t, std::span<double> state) override;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] const std::vector<double>& sample_times() const {
    return sample_times_;
  }

 private:
  EdgeDetector edge_;
  core::SpeciesId target_;
  bool clear_after_read_;
  std::size_t skip_edges_;
  std::size_t edges_seen_ = 0;
  std::vector<double> samples_;
  std::vector<double> sample_times_;
};

/// Stops the simulation when the infinity norm of dx/dt (supplied by the
/// integrator via a callback set at construction) stays below `tol` — not a
/// derivative estimate of its own; it simply watches successive states.
class SteadyStateDetector : public Observer {
 public:
  /// `tol`: max |x_i(t) - x_i(t - window)| / window to accept steady state.
  SteadyStateDetector(double tol, double window);

  void on_step(double t, std::span<double> state) override;
  [[nodiscard]] bool should_stop(double t,
                                 std::span<const double> state) override;

  [[nodiscard]] bool reached() const { return reached_; }
  [[nodiscard]] double reached_time() const { return reached_time_; }

 private:
  double tol_;
  double window_;
  double last_time_ = -1.0;
  std::vector<double> last_state_;
  bool reached_ = false;
  double reached_time_ = 0.0;
};

/// Adapts a callable into an Observer (for ad-hoc test probes).
class CallbackObserver : public Observer {
 public:
  using Callback = std::function<void(double, std::span<double>)>;
  explicit CallbackObserver(Callback callback)
      : callback_(std::move(callback)) {}

  void on_step(double t, std::span<double> state) override {
    callback_(t, state);
  }

 private:
  Callback callback_;
};

}  // namespace mrsc::sim
