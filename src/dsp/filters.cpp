#include "dsp/filters.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

#include "sync/dual_rail.hpp"

namespace mrsc::dsp {

Design make_delay_line(std::size_t stages, const sync::ClockSpec& clock,
                       const compile::CompileOptions& options) {
  if (stages == 0) {
    throw std::invalid_argument("make_delay_line: need >= 1 stage");
  }
  sync::CircuitBuilder builder;
  sync::Sig value = builder.input("x");
  for (std::size_t i = 0; i < stages; ++i) {
    const sync::Reg reg =
        builder.add_register("d" + std::to_string(i), 0.0);
    const sync::Sig out = builder.read(reg);
    builder.write(reg, value);
    value = out;
  }
  builder.output("y", value);

  Design design;
  design.network = std::make_unique<core::ReactionNetwork>();
  design.circuit = builder.compile(*design.network, clock, "dly", options);
  return design;
}

Design make_moving_average(const sync::ClockSpec& clock,
                           const compile::CompileOptions& options) {
  sync::CircuitBuilder builder;
  const sync::Sig x = builder.input("x");
  const auto copies = builder.fanout(x, 2);
  const sync::Reg delay = builder.add_register("d", 0.0);
  const sync::Sig x_prev = builder.read(delay);
  builder.write(delay, copies[1]);
  const sync::Sig sum = builder.add(copies[0], x_prev);
  const sync::Sig y = builder.scale(sum, 1, 1);  // * 1/2
  builder.output("y", y);

  Design design;
  design.network = std::make_unique<core::ReactionNetwork>();
  design.circuit = builder.compile(*design.network, clock, "ma", options);
  return design;
}

Design make_second_order_iir(const sync::ClockSpec& clock,
                             const compile::CompileOptions& options) {
  sync::CircuitBuilder builder;
  const sync::Sig x = builder.input("x");
  const sync::Reg reg1 = builder.add_register("y1", 0.0);  // y[n-1]
  const sync::Reg reg2 = builder.add_register("y2", 0.0);  // y[n-2]

  const sync::Sig y1 = builder.read(reg1);
  const auto y1_copies = builder.fanout(y1, 2);
  builder.write(reg2, y1_copies[1]);  // y[n-2] <- y[n-1]

  const sync::Sig y2 = builder.read(reg2);
  const sync::Sig f1 = builder.scale(y1_copies[0], 1, 1);  // y1 / 2
  const sync::Sig f2 = builder.scale(y2, 1, 2);            // y2 / 4
  const sync::Sig sum = builder.add(builder.add(x, f1), f2);

  const auto y_copies = builder.fanout(sum, 2);
  builder.write(reg1, y_copies[1]);  // y[n-1] <- y[n]
  builder.output("y", y_copies[0]);

  Design design;
  design.network = std::make_unique<core::ReactionNetwork>();
  design.circuit = builder.compile(*design.network, clock, "iir", options);
  return design;
}

Design make_first_difference(const sync::ClockSpec& clock,
                             const compile::CompileOptions& options) {
  sync::CircuitBuilder base;
  sync::DualRailBuilder builder(base);
  const sync::DSig x = builder.input("x");
  const auto copies = builder.fanout(x, 2);
  const sync::DReg delay = builder.add_register("d", 0.0);
  const sync::DSig x_prev = builder.read(delay);
  builder.write(delay, copies[1]);
  builder.output("y", builder.subtract(copies[0], x_prev));

  Design design;
  design.network = std::make_unique<core::ReactionNetwork>();
  design.circuit = base.compile(*design.network, clock, "fd", options);
  return design;
}

namespace {

/// Shared FIR structure over any "builder" with fanout/read/write/scale/add.
/// The tapped delay line: d0 holds x[n-1], d1 holds x[n-2], ...
template <typename Builder, typename SigT>
SigT build_fir_datapath(Builder& builder, SigT x,
                        std::span<const DyadicTap> taps,
                        const std::function<SigT(SigT, const DyadicTap&)>&
                            apply_tap) {
  const std::size_t order = taps.size();
  // Fan the input out: one copy to tap 0, one into the delay chain.
  SigT tap_input = x;
  SigT acc{};
  bool have_acc = false;
  for (std::size_t k = 0; k < order; ++k) {
    SigT to_tap = tap_input;
    if (k + 1 < order) {
      auto copies = builder.fanout(tap_input, 2);
      to_tap = copies[0];
      // The second copy feeds the next delay register.
      const auto reg =
          builder.add_register("d" + std::to_string(k), 0.0);
      const SigT delayed = builder.read(reg);
      builder.write(reg, copies[1]);
      tap_input = delayed;
    }
    const SigT term = apply_tap(to_tap, taps[k]);
    if (have_acc) {
      acc = builder.add(acc, term);
    } else {
      acc = term;
      have_acc = true;
    }
  }
  return acc;
}

}  // namespace

double tap_value(const DyadicTap& tap) {
  const double magnitude =
      static_cast<double>(tap.numerator) /
      static_cast<double>(std::uint64_t{1} << tap.halvings);
  return tap.negative ? -magnitude : magnitude;
}

Design make_fir(std::span<const DyadicTap> taps,
                const sync::ClockSpec& clock,
                const compile::CompileOptions& options) {
  if (taps.empty()) {
    throw std::invalid_argument("make_fir: need at least one tap");
  }
  const bool any_negative =
      std::any_of(taps.begin(), taps.end(),
                  [](const DyadicTap& t) { return t.negative; });
  Design design;
  design.network = std::make_unique<core::ReactionNetwork>();

  if (!any_negative) {
    sync::CircuitBuilder builder;
    const sync::Sig x = builder.input("x");
    const sync::Sig y = build_fir_datapath<sync::CircuitBuilder, sync::Sig>(
        builder, x, taps, [&](sync::Sig value, const DyadicTap& tap) {
          return builder.scale(value, tap.numerator, tap.halvings);
        });
    builder.output("y", y);
    design.circuit =
        builder.compile(*design.network, clock, "fir", options);
    return design;
  }

  sync::CircuitBuilder base;
  sync::DualRailBuilder builder(base);
  const sync::DSig x = builder.input("x");
  const sync::DSig y =
      build_fir_datapath<sync::DualRailBuilder, sync::DSig>(
          builder, x, taps, [&](sync::DSig value, const DyadicTap& tap) {
            sync::DSig scaled =
                builder.scale(value, tap.numerator, tap.halvings);
            return tap.negative ? builder.negate(scaled) : scaled;
          });
  builder.output("y", y);
  design.circuit = base.compile(*design.network, clock, "fir", options);
  return design;
}

Design make_signed_biquad(const sync::ClockSpec& clock,
                          const compile::CompileOptions& options) {
  sync::CircuitBuilder base;
  sync::DualRailBuilder builder(base);
  const sync::DSig x = builder.input("x");
  const sync::DReg reg1 = builder.add_register("y1", 0.0);
  const sync::DReg reg2 = builder.add_register("y2", 0.0);

  const sync::DSig y1 = builder.read(reg1);
  const auto y1_copies = builder.fanout(y1, 2);
  builder.write(reg2, y1_copies[1]);
  const sync::DSig y2 = builder.read(reg2);

  // y = x - y1/2 - y2/4.
  const sync::DSig f1 = builder.negate(builder.scale(y1_copies[0], 1, 1));
  const sync::DSig f2 = builder.negate(builder.scale(y2, 1, 2));
  const sync::DSig sum = builder.add(builder.add(x, f1), f2);
  const auto y_copies = builder.fanout(sum, 2);
  builder.write(reg1, y_copies[1]);
  builder.output("y", y_copies[0]);

  Design design;
  design.network = std::make_unique<core::ReactionNetwork>();
  design.circuit = base.compile(*design.network, clock, "sbq", options);
  return design;
}

std::vector<double> reference_fir(std::span<const DyadicTap> taps,
                                  std::span<const double> x) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    for (std::size_t k = 0; k < taps.size() && k <= n; ++k) {
      y[n] += tap_value(taps[k]) * x[n - k];
    }
  }
  return y;
}

std::vector<double> reference_signed_biquad(std::span<const double> x) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double y1 = (n >= 1) ? y[n - 1] : 0.0;
    const double y2 = (n >= 2) ? y[n - 2] : 0.0;
    y[n] = x[n] - 0.5 * y1 - 0.25 * y2;
  }
  return y;
}

std::vector<double> reference_delay_line(std::span<const double> x,
                                         std::size_t stages) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    if (n >= stages) y[n] = x[n - stages];
  }
  return y;
}

std::vector<double> reference_moving_average(std::span<const double> x) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double prev = (n == 0) ? 0.0 : x[n - 1];
    y[n] = 0.5 * (x[n] + prev);
  }
  return y;
}

std::vector<double> reference_first_difference(std::span<const double> x) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    y[n] = x[n] - (n == 0 ? 0.0 : x[n - 1]);
  }
  return y;
}

std::vector<double> reference_second_order_iir(std::span<const double> x) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double y1 = (n >= 1) ? y[n - 1] : 0.0;
    const double y2 = (n >= 2) ? y[n - 2] : 0.0;
    y[n] = x[n] + 0.5 * y1 + 0.25 * y2;
  }
  return y;
}

}  // namespace mrsc::dsp
