#include "dsp/counter.hpp"

#include <stdexcept>

namespace mrsc::dsp {

namespace {
using core::RateCategory;
using core::SpeciesId;
using core::Term;
}  // namespace

CounterHandles build_counter(core::ReactionNetwork& network,
                             const CounterSpec& spec) {
  if (spec.bits == 0 || spec.bits > 62) {
    throw std::invalid_argument("build_counter: bits must be in [1, 62]");
  }
  if (spec.initial_value >= (std::uint64_t{1} << spec.bits)) {
    throw std::invalid_argument("build_counter: initial value out of range");
  }
  const std::string& p = spec.prefix;
  sync::ClockSpec clock_spec = spec.clock;
  if (clock_spec.prefix == "clk") clock_spec.prefix = p + "_clk";

  CounterHandles handles;
  handles.clock = sync::build_clock(network, clock_spec);

  // Tokens: c_0 is the increment input; c_i / n_i thread through the stages.
  std::vector<SpeciesId> carry(spec.bits + 1);
  std::vector<SpeciesId> no_carry(spec.bits + 1);
  for (std::size_t i = 0; i <= spec.bits; ++i) {
    carry[i] = network.add_species(p + "_c" + std::to_string(i));
    if (i > 0) {
      no_carry[i] = network.add_species(p + "_n" + std::to_string(i));
    }
  }
  handles.increment = carry[0];

  for (std::size_t i = 0; i < spec.bits; ++i) {
    const bool bit_set = (spec.initial_value >> i) & 1;
    const SpeciesId zero = network.add_species(
        p + "_Z" + std::to_string(i), bit_set ? 0.0 : 1.0);
    const SpeciesId one = network.add_species(
        p + "_O" + std::to_string(i), bit_set ? 1.0 : 0.0);
    const SpeciesId zero_primed =
        network.add_species(p + "_Zp" + std::to_string(i));
    const SpeciesId one_primed =
        network.add_species(p + "_Op" + std::to_string(i));
    handles.zero_rail.push_back(zero);
    handles.one_rail.push_back(one);

    const std::string stage = p + ".bit" + std::to_string(i);
    // Toggle with carry out.
    network.add({{carry[i], 1}, {one, 1}},
                {{zero_primed, 1}, {carry[i + 1], 1}}, RateCategory::kFast,
                0.0, stage + ".toggle10");
    // Toggle without carry out.
    network.add({{carry[i], 1}, {zero, 1}},
                {{one_primed, 1}, {no_carry[i + 1], 1}}, RateCategory::kFast,
                0.0, stage + ".toggle01");
    // Hold (no incoming carry).
    if (i > 0) {
      network.add({{no_carry[i], 1}, {one, 1}},
                  {{one_primed, 1}, {no_carry[i + 1], 1}},
                  RateCategory::kFast, 0.0, stage + ".hold1");
      network.add({{no_carry[i], 1}, {zero, 1}},
                  {{zero_primed, 1}, {no_carry[i + 1], 1}},
                  RateCategory::kFast, 0.0, stage + ".hold0");
    }
    // Write-back (blue phase): primed masters -> slaves.
    network.add({{handles.clock.phase_b, 1}, {zero_primed, 1}},
                {{handles.clock.phase_b, 1}, {zero, 1}}, RateCategory::kSlow,
                0.0, stage + ".writeback0");
    network.add({{handles.clock.phase_b, 1}, {one_primed, 1}},
                {{handles.clock.phase_b, 1}, {one, 1}}, RateCategory::kSlow,
                0.0, stage + ".writeback1");
  }
  // Drain the token after the last stage (dropping the carry wraps the
  // counter modulo 2^bits).
  network.add({{carry[spec.bits], 1}}, {}, RateCategory::kFast, 0.0,
              p + ".drain.carry");
  network.add({{no_carry[spec.bits], 1}}, {}, RateCategory::kFast, 0.0,
              p + ".drain.nocarry");

  return handles;
}

std::uint64_t decode_counter(const CounterHandles& handles,
                             std::span<const double> state) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < handles.one_rail.size(); ++i) {
    const double one = state[handles.one_rail[i].index()];
    const double zero = state[handles.zero_rail[i].index()];
    if (one > zero) value |= (std::uint64_t{1} << i);
  }
  return value;
}

}  // namespace mrsc::dsp
