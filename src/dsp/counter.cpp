#include "dsp/counter.hpp"

#include <chrono>
#include <stdexcept>

#include "compile/context.hpp"

namespace mrsc::dsp {

namespace {
using core::RateCategory;
using core::SpeciesId;
using core::Term;
}  // namespace

CounterHandles build_counter(core::ReactionNetwork& network,
                             const CounterSpec& spec,
                             const compile::CompileOptions& options) {
  if (spec.bits == 0 || spec.bits > 62) {
    throw std::invalid_argument("build_counter: bits must be in [1, 62]");
  }
  if (spec.initial_value >= (std::uint64_t{1} << spec.bits)) {
    throw std::invalid_argument("build_counter: initial value out of range");
  }
  const std::string& p = spec.prefix;
  sync::ClockSpec clock_spec = spec.clock;
  if (clock_spec.prefix == "clk") clock_spec.prefix = p + "_clk";

  const auto lowering_start = std::chrono::steady_clock::now();
  compile::LoweringContext ctx(network, p);

  CounterHandles handles;
  handles.clock = sync::build_clock(ctx, clock_spec);

  // Tokens: c_0 is the increment input; c_i / n_i thread through the stages.
  std::vector<SpeciesId> carry(spec.bits + 1);
  std::vector<SpeciesId> no_carry(spec.bits + 1);
  for (std::size_t i = 0; i <= spec.bits; ++i) {
    carry[i] = ctx.species(p + "_c" + std::to_string(i));
    if (i > 0) {
      no_carry[i] = ctx.species(p + "_n" + std::to_string(i));
    }
  }
  handles.increment = carry[0];
  ctx.declare_root(handles.increment, compile::PortRole::kInput);

  std::vector<SpeciesId> zero_primed(spec.bits);
  std::vector<SpeciesId> one_primed(spec.bits);
  for (std::size_t i = 0; i < spec.bits; ++i) {
    const bool bit_set = (spec.initial_value >> i) & 1;
    const SpeciesId zero =
        ctx.species(p + "_Z" + std::to_string(i), bit_set ? 0.0 : 1.0);
    const SpeciesId one =
        ctx.species(p + "_O" + std::to_string(i), bit_set ? 1.0 : 0.0);
    zero_primed[i] = ctx.species(p + "_Zp" + std::to_string(i));
    one_primed[i] = ctx.species(p + "_Op" + std::to_string(i));
    handles.zero_rail.push_back(zero);
    handles.one_rail.push_back(one);
    // The rail vectors are positional (decode_counter indexes by bit), so
    // every rail is a root regardless of reachability.
    ctx.declare_root(zero, compile::PortRole::kState);
    ctx.declare_root(one, compile::PortRole::kState);
    ctx.declare_root(zero_primed[i], compile::PortRole::kState);
    ctx.declare_root(one_primed[i], compile::PortRole::kState);
  }

  for (std::size_t i = 0; i < spec.bits; ++i) {
    const SpeciesId zero = handles.zero_rail[i];
    const SpeciesId one = handles.one_rail[i];
    const std::string stage = p + ".bit" + std::to_string(i);
    // Toggle with carry out.
    network.add({{carry[i], 1}, {one, 1}},
                {{zero_primed[i], 1}, {carry[i + 1], 1}}, RateCategory::kFast,
                0.0, stage + ".toggle10");
    ctx.tag_pending(compile::ReactionTag::kFastOp);
    // Toggle without carry out.
    network.add({{carry[i], 1}, {zero, 1}},
                {{one_primed[i], 1}, {no_carry[i + 1], 1}},
                RateCategory::kFast, 0.0, stage + ".toggle01");
    ctx.tag_pending(compile::ReactionTag::kFastOp);
    // Hold (no incoming carry).
    if (i > 0) {
      network.add({{no_carry[i], 1}, {one, 1}},
                  {{one_primed[i], 1}, {no_carry[i + 1], 1}},
                  RateCategory::kFast, 0.0, stage + ".hold1");
      ctx.tag_pending(compile::ReactionTag::kFastOp);
      network.add({{no_carry[i], 1}, {zero, 1}},
                  {{zero_primed[i], 1}, {no_carry[i + 1], 1}},
                  RateCategory::kFast, 0.0, stage + ".hold0");
      ctx.tag_pending(compile::ReactionTag::kFastOp);
    }
    // Write-back (blue phase): primed masters -> slaves.
    ctx.writeback(handles.clock.phase_b, zero_primed[i], zero,
                  stage + ".writeback0");
    ctx.writeback(handles.clock.phase_b, one_primed[i], one,
                  stage + ".writeback1");
  }
  // Drain the token after the last stage (dropping the carry wraps the
  // counter modulo 2^bits).
  network.add({{carry[spec.bits], 1}}, {}, RateCategory::kFast, 0.0,
              p + ".drain.carry");
  ctx.tag_pending(compile::ReactionTag::kFastOp);
  network.add({{no_carry[spec.bits], 1}}, {}, RateCategory::kFast, 0.0,
              p + ".drain.nocarry");
  ctx.tag_pending(compile::ReactionTag::kFastOp);

  const double lowering_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    lowering_start)
          .count();
  const compile::FinalizeResult fin = ctx.finalize(options, lowering_seconds);
  if (fin.optimized) {
    handles.increment = fin(handles.increment);
    for (SpeciesId& id : handles.zero_rail) id = fin(id);
    for (SpeciesId& id : handles.one_rail) id = fin(id);
    handles.clock.phase_r = fin(handles.clock.phase_r);
    handles.clock.phase_g = fin(handles.clock.phase_g);
    handles.clock.phase_b = fin(handles.clock.phase_b);
    handles.clock.ind_r = fin(handles.clock.ind_r);
    handles.clock.ind_g = fin(handles.clock.ind_g);
    handles.clock.ind_b = fin(handles.clock.ind_b);
  }

  return handles;
}

std::uint64_t decode_counter(const CounterHandles& handles,
                             std::span<const double> state) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < handles.one_rail.size(); ++i) {
    const double one = state[handles.one_rail[i].index()];
    const double zero = state[handles.zero_rail[i].index()];
    if (one > zero) value |= (std::uint64_t{1} << i);
  }
  return value;
}

}  // namespace mrsc::dsp
