// Clocked DSP designs built on the synchronous compiler.
//
// These are the paper family's canonical sequential examples (ICCAD'10 /
// DAC'11 / IEEE D&T'12): a delay line (shift register), the moving-average
// FIR filter y[n] = (x[n] + x[n-1]) / 2, and a second-order all-positive IIR
// filter y[n] = x[n] + y[n-1]/2 + y[n-2]/4. Coefficients are dyadic rationals
// because scaling is implemented with integer fan-out and halving reactions;
// they are all positive because concentrations cannot be negative (signed
// signals would use dual-rail pairs).
//
// Each factory returns the design compiled into a fresh network plus exact
// reference models for verification.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "compile/passes.hpp"
#include "core/network.hpp"
#include "sync/circuit.hpp"

namespace mrsc::dsp {

/// A compiled clocked design. The network is heap-allocated so the handles in
/// `circuit` stay valid as the struct moves around.
struct Design {
  std::unique_ptr<core::ReactionNetwork> network;
  sync::CompiledCircuit circuit;
};

/// y[n] = x[n - stages]. All factories forward `options` to
/// sync::CircuitBuilder::compile, so callers pick the optimization level and
/// per-pass reporting of the shared lowering pipeline.
[[nodiscard]] Design make_delay_line(
    std::size_t stages, const sync::ClockSpec& clock = {},
    const compile::CompileOptions& options = {});

/// y[n] = (x[n] + x[n-1]) / 2.
[[nodiscard]] Design make_moving_average(
    const sync::ClockSpec& clock = {},
    const compile::CompileOptions& options = {});

/// y[n] = x[n] + y[n-1]/2 + y[n-2]/4  (stable: poles at ~0.809 and ~-0.309).
[[nodiscard]] Design make_second_order_iir(
    const sync::ClockSpec& clock = {},
    const compile::CompileOptions& options = {});

/// y[n] = x[n] - x[n-1] (first difference; a *negative* coefficient). The
/// output is signed and therefore dual-rail: read ports "y_p" / "y_n" via
/// `analysis::run_clocked_circuit_multi` + `analysis::signed_series`. The
/// unused negative rail of the input exists as port "x_n" (leave undriven
/// for non-negative input streams).
[[nodiscard]] Design make_first_difference(
    const sync::ClockSpec& clock = {},
    const compile::CompileOptions& options = {});

/// A dyadic-rational FIR coefficient: value = numerator / 2^halvings,
/// negated when `negative` is set.
struct DyadicTap {
  std::uint32_t numerator = 1;
  std::uint32_t halvings = 0;
  bool negative = false;
};

/// General FIR filter y[n] = sum_k tap[k] * x[n-k] with dyadic-rational
/// (possibly negative) taps. Compiles dual-rail (ports "x_p"/"x_n",
/// "y_p"/"y_n") whenever any tap is negative, plain single-rail (ports
/// "x"/"y") otherwise; `Design::circuit.outputs` tells which.
[[nodiscard]] Design make_fir(std::span<const DyadicTap> taps,
                              const sync::ClockSpec& clock = {},
                              const compile::CompileOptions& options = {});

/// True biquad with signed feedback, y[n] = x[n] - y[n-1]/2 - y[n-2]/4
/// (poles at magnitude 1/2: a genuinely oscillatory impulse response).
/// Dual-rail ports as in make_first_difference.
[[nodiscard]] Design make_signed_biquad(
    const sync::ClockSpec& clock = {},
    const compile::CompileOptions& options = {});

// --- exact reference models (golden) ---------------------------------------

[[nodiscard]] std::vector<double> reference_delay_line(
    std::span<const double> x, std::size_t stages);

[[nodiscard]] std::vector<double> reference_moving_average(
    std::span<const double> x);

[[nodiscard]] std::vector<double> reference_second_order_iir(
    std::span<const double> x);

[[nodiscard]] std::vector<double> reference_first_difference(
    std::span<const double> x);

[[nodiscard]] std::vector<double> reference_fir(std::span<const DyadicTap> taps,
                                                std::span<const double> x);

[[nodiscard]] std::vector<double> reference_signed_biquad(
    std::span<const double> x);

/// Numeric value of a tap.
[[nodiscard]] double tap_value(const DyadicTap& tap);

}  // namespace mrsc::dsp
