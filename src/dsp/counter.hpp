// Dual-rail ripple-carry binary counter.
//
// A sequential design that exercises *logic* (not just linear signal flow) on
// the synchronous machinery. Each bit i is a complementary dual-rail pair
// (Z_i, O_i) with conserved total 1: Z_i = 1 encodes bit value 0, O_i = 1
// encodes bit value 1. Once per clock cycle the harness injects an increment
// token c_0; each stage consumes exactly one incoming token (carry c_i or
// no-carry n_i) and emits exactly one outgoing token, so the ripple is
// race-free without any absence detection:
//
//   c_i + O_i -> Z'_i + c_{i+1}     (bit was 1: toggles to 0, carry out)
//   c_i + Z_i -> O'_i + n_{i+1}     (bit was 0: toggles to 1, no carry)
//   n_i + O_i -> O'_i + n_{i+1}     (no carry: bit unchanged)
//   n_i + Z_i -> Z'_i + n_{i+1}
//   c_N -> 0 ; n_N -> 0             (token drained after the last stage;
//                                    dropping c_N makes the counter wrap)
//
// All stage reactions are fast and un-gated: tokens exist only during the
// compute phase, so the stages are naturally confined to it. The primed
// masters are written back to the slaves during the blue phase, exactly like
// the compiler-generated registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compile/passes.hpp"
#include "core/network.hpp"
#include "sync/clock.hpp"

namespace mrsc::dsp {

struct CounterSpec {
  std::size_t bits = 3;
  std::uint64_t initial_value = 0;
  sync::ClockSpec clock;
  std::string prefix = "ctr";
};

struct CounterHandles {
  sync::ClockHandles clock;
  /// Inject 1.0 of this once per cycle (on the rising edge of C_G) to count.
  core::SpeciesId increment;
  std::vector<core::SpeciesId> zero_rail;  ///< slaves Z_i
  std::vector<core::SpeciesId> one_rail;   ///< slaves O_i
};

/// Emits the counter (clock included) into `network` through the shared
/// lowering context; `options` selects validation and the pass pipeline.
/// Every rail species is a pipeline root, so the vectors in CounterHandles
/// keep their positional meaning at any optimization level.
CounterHandles build_counter(core::ReactionNetwork& network,
                             const CounterSpec& spec,
                             const compile::CompileOptions& options = {});

/// Reads the counter value from a state vector by thresholding each bit's
/// rails at 0.5 (O_i > Z_i decides when both are mid-transfer).
[[nodiscard]] std::uint64_t decode_counter(const CounterHandles& handles,
                                           std::span<const double> state);

}  // namespace mrsc::dsp
