#include "scenario/registry.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/io.hpp"
#include "dsp/filters.hpp"

namespace mrsc::scenario {

namespace {

using compile::PortRole;
using core::SpeciesId;

// Generator argument ranges. The caps keep a mistyped spec from compiling a
// million-species network at admission time (the serve dispatcher validates
// through this registry); they are generous enough for every bench sweep.
constexpr std::uint64_t kMaxCounterBits = 16;
constexpr std::uint64_t kMaxChainElements = 64;
constexpr std::uint64_t kMaxFsmStates = 64;
constexpr std::uint64_t kMinCascadeLayers = 2;
constexpr std::uint64_t kMaxCascadeLayers = 8;

/// The cyclic "wide FSM" family: S states over a 2-symbol alphabet. Input 0
/// advances the cycle, input 1 resets to state 0 and emits the only output
/// symbol — every state is reachable and the output species is live.
fsm::FsmSpec make_wide_fsm(std::size_t states) {
  fsm::FsmSpec spec;
  spec.num_states = states;
  spec.num_inputs = 2;
  spec.num_outputs = 1;
  spec.next_state.assign(states, std::vector<std::size_t>(2, 0));
  spec.output.assign(states,
                     std::vector<std::size_t>(2, fsm::kNoOutput));
  for (std::size_t s = 0; s < states; ++s) {
    spec.next_state[s][0] = (s + 1) % states;
    spec.next_state[s][1] = 0;
    spec.output[s][1] = 0;
  }
  return spec;
}

BuiltDesign build_counter_design(std::size_t bits,
                                 compile::CompileOptions options,
                                 Artifacts& artifacts) {
  BuiltDesign design;
  options.design_info = &design.info;
  design.owned = std::make_unique<core::ReactionNetwork>();
  dsp::CounterSpec spec;
  spec.bits = bits;
  CounterArtifacts built;
  built.spec = spec;
  built.handles = dsp::build_counter(*design.owned, spec, options);
  design.network = design.owned.get();
  artifacts = std::move(built);
  return design;
}

BuiltDesign build_fsm_design(const fsm::FsmSpec& spec,
                             compile::CompileOptions options,
                             Artifacts& artifacts) {
  BuiltDesign design;
  options.design_info = &design.info;
  design.owned = std::make_unique<core::ReactionNetwork>();
  FsmArtifacts built;
  built.spec = spec;
  built.handles = fsm::build_fsm(*design.owned, spec, options);
  design.network = design.owned.get();
  artifacts = std::move(built);
  return design;
}

/// Runs a dsp factory with `design_info` wired to the result's own `info`
/// member (the factory must finish before the result moves, which the call
/// shape guarantees).
template <typename Factory>
BuiltDesign build_circuit_design(Factory&& factory,
                                 compile::CompileOptions options,
                                 Artifacts& artifacts) {
  BuiltDesign design;
  options.design_info = &design.info;
  dsp::Design compiled = factory(options);
  design.owned = std::move(compiled.network);
  design.network = design.owned.get();
  artifacts = CircuitArtifacts{std::move(compiled.circuit)};
  return design;
}

/// The asynchronous delay chain is self-timed: it bypasses the clocked
/// lowering pipeline entirely (no emission tags, no pass pipeline), so the
/// port roster is declared here by hand and `options` is ignored.
BuiltDesign build_chain_design(std::size_t elements, Artifacts& artifacts) {
  BuiltDesign design;
  design.owned = std::make_unique<core::ReactionNetwork>();
  async::ChainSpec spec;
  spec.elements = elements;
  ChainArtifacts built;
  built.spec = spec;
  built.handles = async::build_delay_chain(*design.owned, spec);
  design.network = design.owned.get();
  design.info.roots.emplace_back(built.handles.input, PortRole::kInput);
  design.info.roots.emplace_back(built.handles.output, PortRole::kOutput);
  for (const SpeciesId id : built.handles.red) {
    design.info.roots.emplace_back(id, PortRole::kState);
  }
  for (const SpeciesId id : built.handles.green) {
    design.info.roots.emplace_back(id, PortRole::kState);
  }
  for (const SpeciesId id : built.handles.blue) {
    design.info.roots.emplace_back(id, PortRole::kState);
  }
  // The global absence indicators pace the handshake the way clock phases
  // pace a synchronous design.
  design.info.roots.emplace_back(built.handles.ind_r, PortRole::kClock);
  design.info.roots.emplace_back(built.handles.ind_g, PortRole::kClock);
  design.info.roots.emplace_back(built.handles.ind_b, PortRole::kClock);
  design.info.tags_valid = false;
  artifacts = std::move(built);
  return design;
}

/// L delay-line layers compiled separately, then composed: layer i's output
/// port is wired into layer i+1's input port through a declared fast
/// channel, and the last layer's output is the sampled terminal. L=2 with
/// prefixes "A_"/"B_" is byte-identical to the original two-layer
/// demonstrator.
BuiltDesign build_cascade_design(std::size_t layers,
                                 const compile::CompileOptions& options) {
  compile::CompileOptions layer_options = options;
  layer_options.design_info = nullptr;
  layer_options.report = nullptr;
  std::vector<dsp::Design> built;
  built.reserve(layers);
  for (std::size_t i = 0; i < layers; ++i) {
    built.push_back(dsp::make_delay_line(2, {}, layer_options));
  }

  BuiltDesign design;
  design.owned = std::make_unique<core::ReactionNetwork>();
  design.network = design.owned.get();
  design.owned->set_rate_policy(built.front().network->rate_policy());

  compile::CascadeComposer composer(*design.owned);
  std::vector<std::vector<SpeciesId>> maps(layers);
  for (std::size_t i = 0; i < layers; ++i) {
    const std::string prefix(1, static_cast<char>('A' + i));
    composer.add_layer(*built[i].network, prefix + "_", &maps[i]);
  }
  for (std::size_t i = 0; i + 1 < layers; ++i) {
    composer.wire(maps[i][built[i].circuit.output("y").index()],
                  maps[i + 1][built[i + 1].circuit.input("x").index()],
                  "cascade.link");
  }
  composer.mark_terminal(
      maps.back()[built.back().circuit.output("y").index()]);

  for (std::size_t i = 0; i < layers; ++i) {
    const dsp::Design& layer = built[i];
    const std::vector<SpeciesId>& map = maps[i];
    for (const auto& [name, id] : layer.circuit.inputs) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kInput);
    }
    for (const auto& [name, id] : layer.circuit.outputs) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kOutput);
    }
    for (const auto& [name, id] : layer.circuit.register_state) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kState);
    }
    const sync::ClockHandles& clock = layer.circuit.clock;
    for (const SpeciesId id : {clock.phase_r, clock.phase_g, clock.phase_b,
                               clock.ind_r, clock.ind_g, clock.ind_b}) {
      design.info.roots.emplace_back(map[id.index()], PortRole::kClock);
    }
  }
  // Layer tags do not survive the merge; tag-indexed checks are skipped.
  design.info.tags_valid = false;

  design.composition =
      std::make_unique<compile::Composition>(composer.composition());
  return design;
}

bool looks_like_path(const std::string& argument) {
  if (argument.find('/') != std::string::npos) return true;
  constexpr std::string_view kSuffix = ".mrsc";
  return argument.size() > kSuffix.size() &&
         argument.compare(argument.size() - kSuffix.size(), kSuffix.size(),
                          kSuffix) == 0;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
  fixed_names_ = {"counter", "moving_average",   "iir",    "first_difference",
                  "delay",   "seqdet",           "cascade"};
  fixed_names_csv_ =
      "counter, moving_average, iir, first_difference, delay, seqdet, "
      "cascade";
  generators_ = {
      {"counter", "N", 1, kMaxCounterBits, 2,
       "N-bit dual-rail ripple-carry counter"},
      {"delay_chain", "D", 1, kMaxChainElements, 2,
       "self-timed chain of D asynchronous delay elements"},
      {"fsm_wide", "S", 2, kMaxFsmStates, 4,
       "S-state cyclic machine with reset input (one-hot encoded)"},
      {"cascade", "L", kMinCascadeLayers, kMaxCascadeLayers, 3,
       "L delay-line layers composed through declared interfaces"},
  };
}

const ScenarioRegistry& ScenarioRegistry::global() {
  static const ScenarioRegistry registry;
  return registry;
}

std::vector<std::string> ScenarioRegistry::smoke_catalog() const {
  std::vector<std::string> catalog = fixed_names_;
  for (const GeneratorInfo& generator : generators_) {
    catalog.push_back(generator.name + "(" +
                      std::to_string(generator.smoke_arg) + ")");
  }
  return catalog;
}

const GeneratorInfo* ScenarioRegistry::find_generator(
    const std::string& name) const {
  for (const GeneratorInfo& generator : generators_) {
    if (generator.name == name) return &generator;
  }
  return nullptr;
}

SpecCall ScenarioRegistry::validate(const std::string& spec) const {
  const SpecCall call = parse_spec(spec);
  if (call.args.empty()) {
    for (const std::string& name : fixed_names_) {
      if (name == call.name) return call;
    }
    throw std::invalid_argument(
        "unknown design '" + call.name + "' (try " + fixed_names_csv_ +
        "; parametric: counter(N), delay_chain(D), fsm_wide(S), cascade(L))");
  }
  const GeneratorInfo* generator = find_generator(call.name);
  if (generator == nullptr) {
    throw std::invalid_argument(
        "unknown generator '" + call.name +
        "' (parametric designs: counter(N), delay_chain(D), fsm_wide(S), "
        "cascade(L))");
  }
  if (call.args.size() != 1) {
    throw std::invalid_argument(
        "generator '" + call.name + "' takes exactly one argument, got " +
        std::to_string(call.args.size()));
  }
  if (call.args[0] < generator->min_arg || call.args[0] > generator->max_arg) {
    throw std::invalid_argument(
        "generator '" + call.name + "': argument " +
        std::to_string(call.args[0]) + " is out of range [" +
        std::to_string(generator->min_arg) + ", " +
        std::to_string(generator->max_arg) + "]");
  }
  return call;
}

bool ScenarioRegistry::known(const std::string& spec) const {
  try {
    (void)validate(spec);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string ScenarioRegistry::canonicalize(const std::string& spec) const {
  return validate(spec).canonical();
}

ResolvedScenario ScenarioRegistry::resolve(
    const std::string& spec, const compile::CompileOptions& options) const {
  const SpecCall call = validate(spec);
  ResolvedScenario resolved;
  resolved.scenario.name = call.canonical();
  resolved.scenario.design = resolved.scenario.name;

  if (call.args.empty()) {
    if (call.name == "counter") {
      resolved.design =
          build_counter_design(dsp::CounterSpec{}.bits, options,
                               resolved.artifacts);
      resolved.scenario.stress.design = "counter";
    } else if (call.name == "seqdet") {
      resolved.design = build_fsm_design(fsm::make_sequence_detector("101"),
                                         options, resolved.artifacts);
      resolved.scenario.stress.design = "sequence_detector";
    } else if (call.name == "moving_average") {
      resolved.design = build_circuit_design(
          [](const compile::CompileOptions& o) {
            return dsp::make_moving_average({}, o);
          },
          options, resolved.artifacts);
      resolved.scenario.stress.design = "moving_average";
    } else if (call.name == "iir") {
      resolved.design = build_circuit_design(
          [](const compile::CompileOptions& o) {
            return dsp::make_second_order_iir({}, o);
          },
          options, resolved.artifacts);
    } else if (call.name == "first_difference") {
      resolved.design = build_circuit_design(
          [](const compile::CompileOptions& o) {
            return dsp::make_first_difference({}, o);
          },
          options, resolved.artifacts);
    } else if (call.name == "delay") {
      resolved.design = build_circuit_design(
          [](const compile::CompileOptions& o) {
            return dsp::make_delay_line(3, {}, o);
          },
          options, resolved.artifacts);
    } else {  // "cascade"
      resolved.design = build_cascade_design(2, options);
    }
  } else if (call.name == "counter") {
    resolved.design = build_counter_design(
        static_cast<std::size_t>(call.args[0]), options, resolved.artifacts);
    resolved.scenario.stress.design = "counter";
  } else if (call.name == "delay_chain") {
    resolved.design = build_chain_design(
        static_cast<std::size_t>(call.args[0]), resolved.artifacts);
    resolved.scenario.stress.design = "async_chain";
  } else if (call.name == "fsm_wide") {
    resolved.design =
        build_fsm_design(make_wide_fsm(static_cast<std::size_t>(call.args[0])),
                         options, resolved.artifacts);
    resolved.scenario.stress.design = "sequence_detector";
  } else {  // "cascade"
    resolved.design =
        build_cascade_design(static_cast<std::size_t>(call.args[0]), options);
  }
  return resolved;
}

ResolvedScenario ScenarioRegistry::resolve(
    const Scenario& scenario, const compile::CompileOptions& options) const {
  if (!scenario.design.empty()) {
    ResolvedScenario resolved = resolve(scenario.design, options);
    // The file record wins everywhere except the compiled design: budgets,
    // name, description, and an explicit stress binding all pass through.
    const std::string generated_binding = resolved.scenario.stress.design;
    resolved.scenario = scenario;
    if (resolved.scenario.stress.design.empty()) {
      resolved.scenario.stress.design = generated_binding;
    }
    return resolved;
  }
  ResolvedScenario resolved;
  resolved.scenario = scenario;
  resolved.design.owned = std::make_unique<core::ReactionNetwork>(
      core::parse_network(scenario.network_text));
  resolved.design.network = resolved.design.owned.get();
  for (const std::string& name : scenario.roots) {
    const auto id = resolved.design.network->find_species(name);
    if (!id) {
      throw std::invalid_argument("scenario '" + scenario.name +
                                  "': @roots names no species '" + name +
                                  "'");
    }
    resolved.design.info.roots.emplace_back(*id, PortRole::kInput);
  }
  resolved.design.info.tags_valid = false;
  return resolved;
}

ResolvedScenario resolve_scenario_argument(
    const std::string& argument, const compile::CompileOptions& options) {
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  if (looks_like_path(argument)) {
    return registry.resolve(load_scenario_file(argument), options);
  }
  if (registry.known(argument)) return registry.resolve(argument, options);
  // Not a registry spec: try the scenario search path before reporting the
  // spec error (which carries the catalog listing).
  const char* dir = std::getenv("MRSC_SCENARIO_DIR");
  const std::string candidates[] = {
      dir != nullptr ? std::string(dir) + "/" + argument + ".mrsc" : "",
      "scenarios/" + argument + ".mrsc",
  };
  for (const std::string& candidate : candidates) {
    if (!candidate.empty() && file_exists(candidate)) {
      return registry.resolve(load_scenario_file(candidate), options);
    }
  }
  (void)registry.canonicalize(argument);  // throws the catalog-listing error
  throw std::invalid_argument("unresolvable scenario '" + argument + "'");
}

}  // namespace mrsc::scenario
