// Declarative scenario records and the two text grammars that produce them.
//
// A Scenario names a design (either a registry spec like "counter(4)" or an
// inline reaction network in the io text format) plus the per-tool budgets a
// workload carries with it: how to simulate it, which lint checks gate it,
// how many verification seeds it owes, and which stress-campaign family it
// binds to. Scenarios come from two places:
//
//   * parametric generator specs — "counter(4)", "cascade(3)" — parsed by
//     parse_spec and served by the ScenarioRegistry (registry.hpp);
//   * .mrsc files — a directive format extending the io .crn conventions
//     (@key lines, '#' comments) parsed by parse_scenario_text.
//
// Budgets are std::optional so "not mentioned" stays distinguishable from
// "explicitly the default": a CLI applies a budget only when the scenario
// set it and the user did not override it on the command line.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mrsc::scenario {

/// A parsed design/generator reference: a bare name ("counter") or a call
/// with unsigned-integer arguments ("counter(4)").
struct SpecCall {
  std::string name;
  std::vector<std::uint64_t> args;

  /// The whitespace-free normal form: "name" or "name(a,b)". Two spellings
  /// of the same call canonicalize identically, which is what the serve
  /// cache keys on.
  [[nodiscard]] std::string canonical() const;
};

/// Parses "name" or "name(n, ...)" with optional whitespace. Throws
/// std::invalid_argument on malformed text (empty spec, bad identifier,
/// non-integer argument, unbalanced parentheses, trailing garbage).
[[nodiscard]] SpecCall parse_spec(std::string_view text);

/// Simulation budget (@sim). Unset fields defer to the consuming tool.
struct SimBudget {
  std::optional<std::string> method;  ///< dp45|rk4|be|ssa|nrm|tau
  std::optional<double> t_end;
  std::optional<double> record;
  std::optional<double> omega;
  std::optional<std::uint64_t> seed;
};

/// Static-analysis budget (@lint).
struct LintBudget {
  std::vector<std::string> checks;  ///< empty = every registered check
  bool werror = false;
};

/// Verification budget (@verify): engine-equivalence seeds.
struct VerifyBudget {
  std::optional<std::size_t> seeds;
  std::optional<std::uint64_t> start_seed;
};

/// Stress-campaign binding (@stress). `design` names one of the campaign
/// catalog families (stress::parse_design); empty means the scenario has no
/// stress binding and mrsc_stress --scenario rejects it.
struct StressBinding {
  std::string design;
  std::optional<std::string> fault;
  std::vector<double> intensities;
  std::optional<std::size_t> trials;
};

/// The declarative scenario record.
struct Scenario {
  std::string name;
  std::string description;
  /// Registry spec ("counter(4)"). Empty when the design is inline.
  std::string design;
  /// Inline io-format network text (@network ... @end). Empty when the
  /// design is a registry spec.
  std::string network_text;
  /// Port species for inline networks (lint roots; all treated as inputs).
  std::vector<std::string> roots;
  SimBudget sim;
  LintBudget lint;
  VerifyBudget verify;
  StressBinding stress;
};

/// Parses the .mrsc directive format (grammar in docs/SCENARIOS.md). Throws
/// std::invalid_argument naming the offending line on unknown directives,
/// unknown keys, malformed values, or a missing/duplicate design.
[[nodiscard]] Scenario parse_scenario_text(const std::string& text);

/// Loads and parses a .mrsc file. An unreadable path throws
/// std::runtime_error (a runtime failure, exit 1); malformed content throws
/// std::invalid_argument exactly like parse_scenario_text (usage, exit 2).
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

}  // namespace mrsc::scenario
