#include "scenario/scenario.hpp"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mrsc::scenario {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  throw std::invalid_argument("parse_scenario: line " +
                              std::to_string(line_number) + ": " + message);
}

bool is_identifier(std::string_view text) {
  if (text.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(text.front())) != 0) {
    return false;
  }
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

std::vector<std::string> split_commas(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) {
      if (start < text.size()) {
        out.emplace_back(trim(text.substr(start)));
      }
      break;
    }
    out.emplace_back(trim(text.substr(start, comma - start)));
    start = comma + 1;
  }
  return out;
}

std::uint64_t parse_uint(std::size_t line, const std::string& key,
                         const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t parsed = std::stoull(value, &used);
    if (used != value.size() || value.front() == '-') {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    fail(line, "key '" + key + "': '" + value +
                   "' is not a non-negative integer");
  }
}

double parse_number(std::size_t line, const std::string& key,
                    const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    fail(line, "key '" + key + "': '" + value + "' is not a number");
  }
}

/// One "key=value" or bare-flag token of a budget directive.
struct Token {
  std::string key;
  std::string value;
  bool has_value = false;
};

std::vector<Token> tokenize(std::string_view body) {
  std::vector<Token> tokens;
  std::istringstream stream{std::string(body)};
  std::string word;
  while (stream >> word) {
    Token token;
    const std::size_t eq = word.find('=');
    if (eq == std::string::npos) {
      token.key = word;
    } else {
      token.key = word.substr(0, eq);
      token.value = word.substr(eq + 1);
      token.has_value = true;
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

std::string require_value(std::size_t line, const Token& token) {
  if (!token.has_value || token.value.empty()) {
    fail(line, "key '" + token.key + "' needs a value (key=value)");
  }
  return token.value;
}

void parse_sim(std::size_t line, std::string_view body, SimBudget& sim) {
  for (const Token& token : tokenize(body)) {
    const std::string value = require_value(line, token);
    if (token.key == "method") {
      if (value != "dp45" && value != "rk4" && value != "be" &&
          value != "ssa" && value != "nrm" && value != "tau") {
        fail(line, "key 'method': unknown method '" + value +
                       "' (expected dp45|rk4|be|ssa|nrm|tau)");
      }
      sim.method = value;
    } else if (token.key == "t_end") {
      const double t_end = parse_number(line, token.key, value);
      if (!(t_end > 0.0)) fail(line, "key 't_end' must be > 0");
      sim.t_end = t_end;
    } else if (token.key == "record") {
      const double record = parse_number(line, token.key, value);
      if (record < 0.0) fail(line, "key 'record' must be >= 0");
      sim.record = record;
    } else if (token.key == "omega") {
      const double omega = parse_number(line, token.key, value);
      if (!(omega > 0.0)) fail(line, "key 'omega' must be > 0");
      sim.omega = omega;
    } else if (token.key == "seed") {
      sim.seed = parse_uint(line, token.key, value);
    } else {
      fail(line, "unknown @sim key '" + token.key +
                     "' (expected method|t_end|record|omega|seed)");
    }
  }
}

void parse_lint(std::size_t line, std::string_view body, LintBudget& lint) {
  for (const Token& token : tokenize(body)) {
    if (token.key == "werror") {
      if (token.has_value) fail(line, "key 'werror' takes no value");
      lint.werror = true;
    } else if (token.key == "checks") {
      lint.checks = split_commas(require_value(line, token));
      if (lint.checks.empty()) fail(line, "key 'checks' needs names");
    } else {
      fail(line, "unknown @lint key '" + token.key +
                     "' (expected checks|werror)");
    }
  }
}

void parse_verify(std::size_t line, std::string_view body,
                  VerifyBudget& verify) {
  for (const Token& token : tokenize(body)) {
    const std::string value = require_value(line, token);
    if (token.key == "seeds") {
      const std::uint64_t seeds = parse_uint(line, token.key, value);
      if (seeds == 0) fail(line, "key 'seeds' must be >= 1");
      verify.seeds = static_cast<std::size_t>(seeds);
    } else if (token.key == "start_seed") {
      verify.start_seed = parse_uint(line, token.key, value);
    } else {
      fail(line, "unknown @verify key '" + token.key +
                     "' (expected seeds|start_seed)");
    }
  }
}

void parse_stress(std::size_t line, std::string_view body,
                  StressBinding& stress) {
  for (const Token& token : tokenize(body)) {
    const std::string value = require_value(line, token);
    if (token.key == "design") {
      stress.design = value;
    } else if (token.key == "fault") {
      stress.fault = value;
    } else if (token.key == "trials") {
      const std::uint64_t trials = parse_uint(line, token.key, value);
      if (trials == 0) fail(line, "key 'trials' must be >= 1");
      stress.trials = static_cast<std::size_t>(trials);
    } else if (token.key == "intensities") {
      stress.intensities.clear();
      double previous = 0.0;
      for (const std::string& item : split_commas(value)) {
        const double intensity = parse_number(line, token.key, item);
        if (!(intensity > previous)) {
          fail(line, "key 'intensities' must be positive and ascending");
        }
        previous = intensity;
        stress.intensities.push_back(intensity);
      }
      if (stress.intensities.empty()) {
        fail(line, "key 'intensities' needs at least one value");
      }
    } else {
      fail(line, "unknown @stress key '" + token.key +
                     "' (expected design|fault|intensities|trials)");
    }
  }
}

}  // namespace

std::string SpecCall::canonical() const {
  std::string out = name;
  if (!args.empty()) {
    out += '(';
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(args[i]);
    }
    out += ')';
  }
  return out;
}

SpecCall parse_spec(std::string_view text) {
  const std::string_view spec = trim(text);
  if (spec.empty()) {
    throw std::invalid_argument("scenario spec: empty spec");
  }
  SpecCall call;
  const std::size_t open = spec.find('(');
  if (open == std::string_view::npos) {
    call.name = std::string(spec);
    if (!is_identifier(call.name)) {
      throw std::invalid_argument("scenario spec: '" + call.name +
                                  "' is not a valid design name");
    }
    return call;
  }
  call.name = std::string(trim(spec.substr(0, open)));
  if (!is_identifier(call.name)) {
    throw std::invalid_argument("scenario spec: '" + call.name +
                                "' is not a valid design name");
  }
  if (spec.back() != ')') {
    throw std::invalid_argument("scenario spec: '" + std::string(spec) +
                                "' is missing the closing ')'");
  }
  const std::string_view body =
      trim(spec.substr(open + 1, spec.size() - open - 2));
  if (body.empty()) {
    throw std::invalid_argument("scenario spec: '" + call.name +
                                "()' has no arguments (drop the parentheses "
                                "for the default design)");
  }
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) comma = body.size();
    const std::string item{trim(body.substr(start, comma - start))};
    std::uint64_t value = 0;
    try {
      std::size_t used = 0;
      value = std::stoull(item, &used);
      if (item.empty() || used != item.size() || item.front() == '-') {
        throw std::invalid_argument(item);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("scenario spec: argument '" + item +
                                  "' of '" + call.name +
                                  "' is not a non-negative integer");
    }
    call.args.push_back(value);
    if (comma == body.size()) break;
    start = comma + 1;
  }
  return call;
}

Scenario parse_scenario_text(const std::string& text) {
  Scenario scenario;
  std::istringstream stream(text);
  std::string raw_line;
  std::size_t line_number = 0;
  bool saw_header = false;
  bool in_network = false;
  bool saw_network = false;

  while (std::getline(stream, raw_line)) {
    ++line_number;
    if (in_network) {
      if (trim(raw_line) == "@end") {
        in_network = false;
        continue;
      }
      scenario.network_text += raw_line;
      scenario.network_text += '\n';
      continue;
    }
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() != '@') {
      fail(line_number, "expected a @directive, got '" + std::string(line) +
                            "'");
    }
    const std::size_t space = line.find_first_of(" \t");
    const std::string directive{line.substr(0, space)};
    const std::string_view body =
        space == std::string_view::npos ? std::string_view{}
                                        : trim(line.substr(space + 1));
    if (!saw_header && directive != "@scenario") {
      fail(line_number, "the first directive must be '@scenario NAME'");
    }
    if (directive == "@scenario") {
      if (saw_header) fail(line_number, "duplicate @scenario directive");
      if (!is_identifier(std::string(body))) {
        fail(line_number, "@scenario needs a valid identifier name");
      }
      scenario.name = std::string(body);
      saw_header = true;
    } else if (directive == "@describe") {
      scenario.description = std::string(body);
    } else if (directive == "@design") {
      if (!scenario.design.empty()) {
        fail(line_number, "duplicate @design directive");
      }
      if (saw_network) {
        fail(line_number, "@design and @network are mutually exclusive");
      }
      if (body.empty()) fail(line_number, "@design needs a spec");
      try {
        scenario.design = parse_spec(body).canonical();
      } catch (const std::exception& error) {
        fail(line_number, error.what());
      }
    } else if (directive == "@network") {
      if (saw_network) fail(line_number, "duplicate @network block");
      if (!scenario.design.empty()) {
        fail(line_number, "@design and @network are mutually exclusive");
      }
      in_network = true;
      saw_network = true;
    } else if (directive == "@roots") {
      scenario.roots = split_commas(body);
      if (scenario.roots.empty()) {
        fail(line_number, "@roots needs species names");
      }
    } else if (directive == "@sim") {
      parse_sim(line_number, body, scenario.sim);
    } else if (directive == "@lint") {
      parse_lint(line_number, body, scenario.lint);
    } else if (directive == "@verify") {
      parse_verify(line_number, body, scenario.verify);
    } else if (directive == "@stress") {
      parse_stress(line_number, body, scenario.stress);
    } else {
      fail(line_number,
           "unknown directive '" + directive +
               "' (expected @scenario|@describe|@design|@network|@roots|"
               "@sim|@lint|@verify|@stress)");
    }
  }
  if (in_network) fail(line_number, "@network block is missing its @end");
  if (!saw_header) fail(line_number, "missing '@scenario NAME' directive");
  if (scenario.design.empty() && scenario.network_text.empty()) {
    fail(line_number, "scenario needs a @design spec or a @network block");
  }
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_scenario: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_scenario_text(buffer.str());
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

}  // namespace mrsc::scenario
