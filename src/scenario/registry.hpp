// The scenario registry: one resolver for every design the toolchain runs.
//
// The registry serves
//   * the fixed builtin designs (counter, moving_average, iir,
//     first_difference, delay, seqdet, cascade) — byte-identical to what
//     tools/builtin_designs produced before it became a shim over this
//     registry — and
//   * the parametric generators counter(N), delay_chain(D), fsm_wide(S),
//     cascade(L), which open the scale axis: the same construction at any
//     size, resolvable from a CLI flag, a serve job, or a bench sweep.
//
// resolve() returns the compiled network plus the analyzer-facing metadata
// (DesignInfo roots, the Composition record for cascades) plus the
// construction artifacts (specs + handles) the analysis harness needs, so
// bench fixtures can drive registry designs without private construction
// code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "async/chain.hpp"
#include "compile/compose.hpp"
#include "compile/passes.hpp"
#include "core/network.hpp"
#include "dsp/counter.hpp"
#include "fsm/fsm.hpp"
#include "scenario/scenario.hpp"
#include "sync/circuit.hpp"

namespace mrsc::scenario {

/// A compiled design plus the analyzer-facing metadata. (tools::BuiltDesign
/// is an alias of this struct; the registry is its single producer.)
struct BuiltDesign {
  std::unique_ptr<core::ReactionNetwork> owned;
  core::ReactionNetwork* network = nullptr;
  compile::DesignInfo info;
  /// Non-null only for composed designs (cascade family).
  std::unique_ptr<compile::Composition> composition;
};

// Construction artifacts, per design family: the spec the design was built
// from and the handles the analysis harness drives it through.
struct CounterArtifacts {
  dsp::CounterSpec spec;
  dsp::CounterHandles handles;
};
struct FsmArtifacts {
  fsm::FsmSpec spec;
  fsm::FsmHandles handles;
};
struct ChainArtifacts {
  async::ChainSpec spec;
  async::ChainHandles handles;
};
struct CircuitArtifacts {
  sync::CompiledCircuit circuit;
};
using Artifacts = std::variant<std::monostate, CounterArtifacts, FsmArtifacts,
                               ChainArtifacts, CircuitArtifacts>;

/// A fully resolved scenario: the record (with registry-filled defaults),
/// the compiled design, and the construction artifacts.
struct ResolvedScenario {
  Scenario scenario;
  BuiltDesign design;
  Artifacts artifacts;
};

/// One parametric generator's catalog entry.
struct GeneratorInfo {
  std::string name;
  std::string parameter;     ///< display name of the argument ("N")
  std::uint64_t min_arg = 0;
  std::uint64_t max_arg = 0;
  std::uint64_t smoke_arg = 0;  ///< small size for catalog smoke runs
  std::string summary;
};

class ScenarioRegistry {
 public:
  ScenarioRegistry();

  /// The process-wide registry instance every CLI resolves through.
  [[nodiscard]] static const ScenarioRegistry& global();

  [[nodiscard]] const std::vector<std::string>& fixed_names() const {
    return fixed_names_;
  }
  [[nodiscard]] const std::vector<GeneratorInfo>& generators() const {
    return generators_;
  }
  /// "counter, moving_average, ..." — the fixed designs, for usage strings
  /// that predate the registry (kept byte-identical to the old list).
  [[nodiscard]] const std::string& fixed_names_csv() const {
    return fixed_names_csv_;
  }
  /// Every fixed design plus each generator at its smoke size, in catalog
  /// order: the set a CI smoke step compiles, lints, and simulates.
  [[nodiscard]] std::vector<std::string> smoke_catalog() const;

  /// True when `spec` parses and names a registered design with in-range
  /// arguments; false otherwise (never throws).
  [[nodiscard]] bool known(const std::string& spec) const;

  /// The whitespace-free normal form of a valid spec ("counter( 2 )" ->
  /// "counter(2)"). Throws std::invalid_argument — with a deterministic
  /// message — on malformed specs, unknown names, wrong arity, or
  /// out-of-range arguments. Serve cache keys are built over this.
  [[nodiscard]] std::string canonicalize(const std::string& spec) const;

  /// Builds the design a spec names. Same validation (and exceptions) as
  /// canonicalize. `options.design_info` / `options.report` are managed
  /// internally; the result's `info` member is always filled.
  [[nodiscard]] ResolvedScenario resolve(
      const std::string& spec, const compile::CompileOptions& options = {}) const;

  /// Resolves a parsed file-based scenario record: builds its @design spec
  /// through the registry, or parses its inline @network text. The record's
  /// budgets pass through untouched.
  [[nodiscard]] ResolvedScenario resolve(
      const Scenario& scenario,
      const compile::CompileOptions& options = {}) const;

 private:
  [[nodiscard]] const GeneratorInfo* find_generator(
      const std::string& name) const;
  [[nodiscard]] SpecCall validate(const std::string& spec) const;

  std::vector<std::string> fixed_names_;
  std::string fixed_names_csv_;
  std::vector<GeneratorInfo> generators_;
};

/// Resolves a CLI --scenario argument through the registry or the scenario
/// search path: a registry spec ("counter(4)"), a path to a .mrsc file
/// (anything containing '/' or ending in ".mrsc"), or NAME.mrsc looked up
/// under $MRSC_SCENARIO_DIR then ./scenarios/. Throws std::invalid_argument
/// for unknown/malformed specs (usage, exit 2) and std::runtime_error for
/// unreadable files (runtime, exit 1).
[[nodiscard]] ResolvedScenario resolve_scenario_argument(
    const std::string& argument, const compile::CompileOptions& options = {});

}  // namespace mrsc::scenario
