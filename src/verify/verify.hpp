// Fuzz driver: generate → simulate → oracle-check → shrink.
//
// `run_fuzz` sweeps seeds over the structured generator, runs every
// applicable oracle on each case, and minimizes failing networks with the
// shrinker so a CI fuzz failure arrives as a few-reaction repro plus the
// seed that rebuilds it. `check_case` / `shrink_case` are exposed separately
// so tests can verify the pipeline end to end on deliberately corrupted
// networks (see fault.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sync/clock.hpp"
#include "verify/generator.hpp"
#include "verify/opt_equivalence.hpp"
#include "verify/oracles.hpp"
#include "verify/shrink.hpp"

namespace mrsc::verify {

struct VerifyOptions {
  std::size_t seeds = 50;
  std::uint64_t start_seed = 0;
  /// Case kinds to draw from (round-robin); empty = all five.
  std::vector<CaseKind> kinds;
  GeneratorOptions generator;
  TrajectoryTolerances trajectory;
  /// Circuit-vs-reference tolerances (see docs/VERIFY.md for the rationale).
  SeriesTolerance functional{0.06, 0.06};
  SeriesTolerance functional_dual{0.08, 0.08};
  SeriesTolerance functional_robust{0.12, 0.12};
  /// CLT z and finite-omega bias for the ODE-vs-SSA mean band.
  CltBand clt{6.0, 0.05};
  std::size_t ssa_replicates = 16;
  double omega = 300.0;
  /// Worker threads for the case sweep (cases are independent).
  std::size_t threads = 1;
  /// Run the expensive differential (ensemble) oracles on raw cases.
  bool differential = true;
  /// Prove the kO1 compile pipeline trajectory-preserving on every case
  /// (see opt_equivalence.hpp). Raw closed cases additionally get the SSA
  /// ensemble leg when `differential` is on.
  bool opt_equivalence = true;
  /// Prove the compiled simulation engine bitwise-identical to the legacy
  /// engine on every case (see engine_equivalence.hpp): SSA direct + NRM and
  /// fixed-step RK4 exactly, adaptive DP45 within a band.
  bool engine_equivalence = true;
  /// Re-run clocked circuits under an alternative k_fast/k_slow ratio on a
  /// subset of seeds (every 4th) and require the same logical output.
  bool robustness = true;
  /// Hold the static analyzer (lint/) and the dynamic oracles to each
  /// other on every clocked case: the clean design must lint error-free,
  /// and a stoichiometry-faulted copy must be flagged statically (see
  /// lint_oracle.hpp).
  bool lint_cross = true;
  /// Shrink failing cases to minimal repros.
  bool shrink = true;
  ShrinkOptions shrink_options;
};

struct CaseResult {
  CaseKind kind = CaseKind::kRawNetwork;
  std::uint64_t seed = 0;
  std::vector<Violation> violations;  ///< empty = case passed
  /// Set when shrinking ran and reproduced the failure:
  bool shrunk = false;
  std::size_t original_reactions = 0;
  std::size_t shrunk_reactions = 0;
  std::string repro;  ///< serialized minimal failing network

  [[nodiscard]] bool failed() const { return !violations.empty(); }
};

struct FuzzReport {
  std::vector<CaseResult> cases;  ///< one per seed, in seed order
  std::size_t checked = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
};

/// Runs every applicable oracle on one generated case. Harness/simulator
/// exceptions are reported as a violation with oracle "harness" rather than
/// escaping (a healthy network must be runnable).
[[nodiscard]] std::vector<Violation> check_case(const GeneratedCase& c,
                                                const VerifyOptions& options);

/// Free-running (no harness) trajectory invariants on a network: integrates
/// the ODE for a few clock periods and applies non-negativity, conservation,
/// and — when handles are given — clock-token uniqueness and rail
/// exclusivity. Cheap and exception-free on degenerate networks, which makes
/// it the shrinker's preferred predicate.
[[nodiscard]] std::vector<Violation> check_trajectory_invariants(
    const core::ReactionNetwork& network, const sync::ClockHandles* clock,
    std::span<const std::pair<core::SpeciesId, core::SpeciesId>> rail_pairs,
    const VerifyOptions& options);

/// Minimizes the case's network while a violation of oracle `oracle` keeps
/// reproducing. Returns nullopt when the case kind/oracle combination has no
/// replayable predicate.
[[nodiscard]] std::optional<ShrinkResult> shrink_case(
    const GeneratedCase& c, const std::string& oracle,
    const VerifyOptions& options);

/// The full campaign: seeds [start_seed, start_seed + seeds), kinds assigned
/// round-robin, checks fanned over `options.threads` workers, failures
/// shrunk serially afterwards.
[[nodiscard]] FuzzReport run_fuzz(const VerifyOptions& options);

/// One-line-per-violation human-readable rendering (used by the CLI and
/// handy in test failure messages).
[[nodiscard]] std::string describe(const CaseResult& result);

}  // namespace mrsc::verify
