#include "verify/lint_oracle.hpp"

#include <string>
#include <utility>

#include "lint/lint.hpp"

namespace mrsc::verify {

namespace {

using compile::PortRole;
using core::ReactionNetwork;
using core::SpeciesId;

void add_clock_roots(lint::LintInput& input, const sync::ClockHandles& clock) {
  for (const SpeciesId id : {clock.phase_r, clock.phase_g, clock.phase_b,
                             clock.ind_r, clock.ind_g, clock.ind_b}) {
    input.roots.emplace_back(id, PortRole::kClock);
  }
}

/// Rebuilds the analyzer's input from the case handles. Tags are not
/// carried by generated cases, so tag-indexed checks are skipped — the
/// stoichiometric screening (LINT-RACE-02) is the detector this oracle
/// relies on, and it needs no tags.
lint::LintInput lint_input_for(const GeneratedCase& c,
                               const ReactionNetwork& network) {
  lint::LintInput input;
  input.network = &network;
  input.design = std::string(to_string(c.kind)) + "/seed" +
                 std::to_string(c.seed);
  switch (c.kind) {
    case CaseKind::kSyncCircuit: {
      const auto& circuit = std::get<SyncCase>(c.payload).circuit;
      for (const auto& [name, id] : circuit.inputs) {
        input.roots.emplace_back(id, PortRole::kInput);
      }
      for (const auto& [name, id] : circuit.outputs) {
        input.roots.emplace_back(id, PortRole::kOutput);
      }
      for (const auto& [name, id] : circuit.register_state) {
        input.roots.emplace_back(id, PortRole::kState);
      }
      add_clock_roots(input, circuit.clock);
      break;
    }
    case CaseKind::kDualRailCircuit: {
      const auto& circuit = std::get<DualRailCase>(c.payload).circuit;
      for (const auto& [name, id] : circuit.inputs) {
        input.roots.emplace_back(id, PortRole::kInput);
      }
      for (const auto& [name, id] : circuit.outputs) {
        input.roots.emplace_back(id, PortRole::kOutput);
      }
      for (const auto& [name, id] : circuit.register_state) {
        input.roots.emplace_back(id, PortRole::kState);
      }
      add_clock_roots(input, circuit.clock);
      break;
    }
    case CaseKind::kFsm: {
      const auto& handles = std::get<FsmCase>(c.payload).handles;
      for (const SpeciesId id : handles.input) {
        input.roots.emplace_back(id, PortRole::kInput);
      }
      for (const SpeciesId id : handles.output) {
        input.roots.emplace_back(id, PortRole::kOutput);
      }
      for (const SpeciesId id : handles.state) {
        input.roots.emplace_back(id, PortRole::kState);
      }
      for (const SpeciesId id : handles.state_primed) {
        input.roots.emplace_back(id, PortRole::kState);
      }
      add_clock_roots(input, handles.clock);
      break;
    }
    case CaseKind::kCounter: {
      const auto& handles = std::get<CounterCase>(c.payload).handles;
      input.roots.emplace_back(handles.increment, PortRole::kInput);
      for (const SpeciesId id : handles.zero_rail) {
        input.roots.emplace_back(id, PortRole::kState);
      }
      for (const SpeciesId id : handles.one_rail) {
        input.roots.emplace_back(id, PortRole::kState);
      }
      add_clock_roots(input, handles.clock);
      break;
    }
    case CaseKind::kRawNetwork:
      break;
  }
  return input;
}

/// Local copy of the canonical stoichiometry fault (stress/ links verify/,
/// so verify/ cannot link back): the first product of `target` gains one
/// unit of stoichiometry.
ReactionNetwork duplicate_first_product(const ReactionNetwork& source,
                                        core::ReactionId target) {
  ReactionNetwork out;
  for (std::size_t s = 0; s < source.species_count(); ++s) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(s)};
    out.add_species(source.species_name(id), source.initial(id));
  }
  out.set_rate_policy(source.rate_policy());
  for (std::size_t r = 0; r < source.reaction_count(); ++r) {
    const core::ReactionId id{
        static_cast<core::ReactionId::underlying_type>(r)};
    const core::Reaction& reaction = source.reaction(id);
    std::vector<core::Term> products = reaction.products();
    if (id == target && !products.empty()) products[0].stoich += 1;
    const core::ReactionId added =
        out.add(reaction.reactants(), std::move(products),
                reaction.category(), reaction.custom_rate(), reaction.label());
    out.reaction_mutable(added).set_rate_multiplier(
        reaction.rate_multiplier());
  }
  return out;
}

/// A reaction whose first product is a catalyst (equal stoichiometry on
/// both sides): duplicating that product breaks catalyst balance, which
/// LINT-RACE-02 detects without any metadata. Every clocked design has
/// such reactions (the clock's indicator absorptions at minimum). Rotated
/// by seed so a fuzz campaign covers many sites.
core::ReactionId pick_fault_site(const ReactionNetwork& network,
                                 std::uint64_t seed) {
  std::vector<core::ReactionId> candidates;
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    const core::ReactionId id{
        static_cast<core::ReactionId::underlying_type>(r)};
    const core::Reaction& reaction = network.reaction(id);
    if (reaction.products().empty()) continue;
    const SpeciesId first = reaction.products()[0].species;
    if (reaction.consumes(first) && reaction.net_change(first) == 0) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return core::ReactionId::invalid();
  return candidates[seed % candidates.size()];
}

}  // namespace

std::vector<Violation> check_lint_cross(const GeneratedCase& c) {
  if (c.kind == CaseKind::kRawNetwork) return {};
  std::vector<Violation> out;
  const ReactionNetwork& network = c.network();
  const lint::LintInput input = lint_input_for(c, network);

  const lint::LintReport clean_report = lint::run_lint(input);
  if (clean_report.errors() > 0) {
    std::string detail =
        "static analyzer errors on a dynamically clean design:";
    for (const lint::Diagnostic& d : clean_report.diagnostics) {
      if (d.severity != lint::Severity::kError) continue;
      detail += " [" + d.id + "] " + d.message + ";";
    }
    out.push_back({"lint_cross", detail});
  }

  const core::ReactionId site = pick_fault_site(network, c.seed);
  if (site == core::ReactionId::invalid()) {
    out.push_back({"lint_cross",
                   "no catalytic-first-product fault site in a clocked "
                   "design (the clock indicators should provide one)"});
    return out;
  }
  const ReactionNetwork faulted = duplicate_first_product(network, site);
  lint::LintInput faulted_input = input;
  faulted_input.network = &faulted;
  const lint::LintReport faulted_report = lint::run_lint(faulted_input);
  if (!faulted_report.has("LINT-RACE-02")) {
    out.push_back({"lint_cross",
                   "stoichiometry fault on '" +
                       network.reaction_to_string(site) +
                       "' was not flagged with LINT-RACE-02"});
  }
  return out;
}

}  // namespace mrsc::verify
