// Fault injection for verifying the verifier (test-only hook).
//
// The oracles are only trustworthy if they demonstrably catch broken
// networks. This hook deliberately corrupts one reaction's stoichiometry —
// the molecular analogue of a single-gate hardware defect — so tests can
// assert the fuzzer flags the corrupted network and shrinks it to a minimal
// repro. Not used by any production code path.
#pragma once

#include "core/network.hpp"

namespace mrsc::verify::testing {

/// Returns a copy of `network` with reaction `target`'s first product
/// stoichiometry incremented by one (a product-duplication fault; a reaction
/// with no products gains its first reactant as a product instead, turning a
/// sink into a no-op). Throws `std::out_of_range` on a bad id.
[[nodiscard]] core::ReactionNetwork with_stoichiometry_fault(
    const core::ReactionNetwork& network, core::ReactionId target);

/// Finds a reaction whose label matches `label` exactly; throws
/// `std::invalid_argument` if absent. Convenience for corrupting a specific
/// compiled reaction (e.g. a clock seed reaction) in tests.
[[nodiscard]] core::ReactionId find_reaction_by_label(
    const core::ReactionNetwork& network, const std::string& label);

}  // namespace mrsc::verify::testing
