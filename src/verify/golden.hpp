// Golden-trace regression files.
//
// A golden trace pins the cycle-by-cycle behaviour of a canonical example
// circuit (the same builds and inputs as examples/counter, moving_average,
// sequence_detector) to a checked-in text file with an explicit tolerance.
// `tests/test_golden.cpp` recomputes each trace and compares; regeneration is
// one command:
//
//   mrsc_verify --regen-golden tests/golden
//
// File format (line-oriented, '#' comments allowed):
//
//   golden v1
//   name <trace name>
//   tolerance <per-value absolute tolerance>
//   columns <col1> <col2> ...
//   row <v1> <v2> ...            # one per cycle, %.17g
//   end
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine/engine.hpp"

namespace mrsc::verify {

struct GoldenTrace {
  std::string name;
  /// Per-value absolute comparison tolerance. 0 for exact (integer-valued
  /// traces: counter values, FSM states/outputs).
  double tolerance = 0.0;
  std::vector<std::string> columns;
  /// One row per cycle; row size == columns size.
  std::vector<std::vector<double>> rows;
};

[[nodiscard]] std::string serialize_golden(const GoldenTrace& trace);

/// Throws `std::runtime_error` with a line number on malformed input.
[[nodiscard]] GoldenTrace parse_golden(std::string_view text);

void save_golden(const GoldenTrace& trace, const std::string& path);
[[nodiscard]] GoldenTrace load_golden(const std::string& path);

/// Compares freshly computed rows against a golden trace under its
/// tolerance; returns a description of the first mismatch, or nullopt.
[[nodiscard]] std::optional<std::string> compare_golden(
    const GoldenTrace& golden, const std::vector<std::vector<double>>& rows);

/// Recomputes the canonical example traces (counter, moving_average,
/// sequence_detector) by building and simulating the example circuits.
/// Shared by `mrsc_verify --regen-golden` and test_golden.cpp, so the test
/// and the regeneration command can never drift apart.
///
/// The `engine` overload recomputes the traces under a specific simulation
/// engine; the committed files are regenerated with the default (compiled)
/// engine, and test_golden.cpp replays both engines against the same files
/// to pin the legacy/compiled bitwise-identity contract on real circuits.
[[nodiscard]] std::vector<GoldenTrace> compute_reference_traces(
    sim::EngineKind engine);
[[nodiscard]] std::vector<GoldenTrace> compute_reference_traces();

}  // namespace mrsc::verify
