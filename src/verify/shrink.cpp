#include "verify/shrink.hpp"

#include <algorithm>

namespace mrsc::verify {
namespace {

std::size_t count_kept(const std::vector<bool>& keep) {
  return static_cast<std::size_t>(std::count(keep.begin(), keep.end(), true));
}

}  // namespace

core::ReactionNetwork subnetwork(const core::ReactionNetwork& network,
                                 const std::vector<bool>& keep) {
  core::ReactionNetwork out;
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    const core::SpeciesId id(static_cast<std::uint32_t>(i));
    out.add_species(network.species_name(id), network.initial(id));
  }
  out.set_rate_policy(network.rate_policy());
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    if (!keep[r]) continue;
    out.add_reaction(network.reaction(core::ReactionId(
        static_cast<std::uint32_t>(r))));
  }
  return out;
}

core::ReactionNetwork prune_unreferenced_species(
    const core::ReactionNetwork& network) {
  std::vector<bool> used(network.species_count(), false);
  for (const core::Reaction& reaction : network.reactions()) {
    for (const core::Term& term : reaction.reactants()) {
      used[term.species.index()] = true;
    }
    for (const core::Term& term : reaction.products()) {
      used[term.species.index()] = true;
    }
  }
  core::ReactionNetwork out;
  std::vector<core::SpeciesId> remap(network.species_count());
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    const core::SpeciesId id(static_cast<std::uint32_t>(i));
    // A nonzero initial is observable (it contributes to conservation
    // totals), so only drop species that are both untouched and empty.
    if (!used[i] && network.initial(id) == 0.0) continue;
    remap[i] = out.add_species(network.species_name(id), network.initial(id));
  }
  out.set_rate_policy(network.rate_policy());
  for (const core::Reaction& reaction : network.reactions()) {
    std::vector<core::Term> reactants;
    std::vector<core::Term> products;
    for (const core::Term& term : reaction.reactants()) {
      reactants.push_back({remap[term.species.index()], term.stoich});
    }
    for (const core::Term& term : reaction.products()) {
      products.push_back({remap[term.species.index()], term.stoich});
    }
    core::Reaction rebuilt(std::move(reactants), std::move(products),
                           reaction.category(), reaction.custom_rate(),
                           reaction.label());
    rebuilt.set_rate_multiplier(reaction.rate_multiplier());
    out.add_reaction(std::move(rebuilt));
  }
  return out;
}

ShrinkResult shrink_network(const core::ReactionNetwork& network,
                            const ViolationPredicate& violates,
                            const ShrinkOptions& options) {
  ShrinkResult result;
  result.original_reactions = network.reaction_count();
  std::size_t evaluations = 0;
  auto still_fails = [&](const core::ReactionNetwork& candidate) {
    if (evaluations >= options.max_evaluations) return false;
    ++evaluations;
    try {
      return violates(candidate);
    } catch (...) {
      // A candidate the harness cannot even run is not a repro.
      return false;
    }
  };

  if (!still_fails(network)) {
    result.network = network;
    result.final_reactions = network.reaction_count();
    result.evaluations = evaluations;
    result.reproduced = false;
    return result;
  }
  result.reproduced = true;

  std::vector<bool> keep(network.reaction_count(), true);
  std::size_t live = count_kept(keep);
  std::size_t chunk = std::max<std::size_t>(1, live / 2);
  while (evaluations < options.max_evaluations) {
    bool progress = false;
    // Walk the currently-kept reactions in blocks of `chunk`, trying to drop
    // each block wholesale.
    std::vector<std::size_t> kept_indices;
    kept_indices.reserve(live);
    for (std::size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) kept_indices.push_back(i);
    }
    for (std::size_t start = 0; start < kept_indices.size(); start += chunk) {
      const std::size_t end = std::min(start + chunk, kept_indices.size());
      std::vector<bool> candidate = keep;
      bool any = false;
      for (std::size_t i = start; i < end; ++i) {
        if (candidate[kept_indices[i]]) {
          candidate[kept_indices[i]] = false;
          any = true;
        }
      }
      if (!any) continue;
      if (still_fails(subnetwork(network, candidate))) {
        keep = std::move(candidate);
        progress = true;
      }
    }
    live = count_kept(keep);
    if (!progress) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    } else {
      chunk = std::min(chunk, std::max<std::size_t>(1, live / 2));
    }
  }

  core::ReactionNetwork shrunk = subnetwork(network, keep);
  if (options.prune_species) {
    core::ReactionNetwork pruned = prune_unreferenced_species(shrunk);
    // Pruning remaps species ids; only keep it if the predicate still fires
    // (handle-based predicates will throw or pass, reverting the prune).
    if (pruned.species_count() < shrunk.species_count() &&
        still_fails(pruned)) {
      shrunk = std::move(pruned);
    }
  }
  result.final_reactions = shrunk.reaction_count();
  result.network = std::move(shrunk);
  result.evaluations = evaluations;
  return result;
}

}  // namespace mrsc::verify
