#include "verify/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/conservation.hpp"

namespace mrsc::verify {
namespace {

std::string format(const char* fmt, auto... args) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  return buffer;
}

/// First sample index past the startup transient.
std::size_t warmup_start(const sim::Trajectory& trajectory, double fraction) {
  return static_cast<std::size_t>(
      static_cast<double>(trajectory.sample_count()) * fraction);
}

}  // namespace

MaybeViolation check_non_negative(const core::ReactionNetwork& network,
                                  const sim::Trajectory& trajectory,
                                  const TrajectoryTolerances& tol) {
  for (std::size_t k = 0; k < trajectory.sample_count(); ++k) {
    const auto state = trajectory.state(k);
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i] < -tol.negativity) {
        return Violation{
            "non_negative",
            format("species %s = %.3e at t=%.3f (tolerance -%.0e)",
                   network
                       .species_name(
                           core::SpeciesId(static_cast<std::uint32_t>(i)))
                       .c_str(),
                   state[i],
                   trajectory.time(k), tol.negativity)};
      }
    }
  }
  return std::nullopt;
}

MaybeViolation check_conservation(const core::ReactionNetwork& network,
                                  const sim::Trajectory& trajectory,
                                  const TrajectoryTolerances& tol,
                                  std::span<const core::SpeciesId> driven) {
  if (trajectory.empty()) return std::nullopt;
  std::vector<bool> is_driven(network.species_count(), false);
  for (const core::SpeciesId id : driven) is_driven[id.index()] = true;
  const auto laws = analysis::conservation_laws(network);
  for (std::size_t li = 0; li < laws.size(); ++li) {
    bool touches_driven = false;
    for (std::size_t s = 0; s < laws[li].size(); ++s) {
      if (laws[li][s] != 0.0 && is_driven[s]) {
        touches_driven = true;
        break;
      }
    }
    if (touches_driven) continue;
    const double initial =
        analysis::conserved_quantity(laws[li], trajectory.state(0));
    const double band =
        tol.conservation_rel * std::abs(initial) + tol.conservation_abs;
    for (std::size_t k = 1; k < trajectory.sample_count(); ++k) {
      const double q =
          analysis::conserved_quantity(laws[li], trajectory.state(k));
      if (std::abs(q - initial) > band) {
        return Violation{
            "conservation",
            format("law %zu drifted from %.6f to %.6f at t=%.3f (band %.1e)",
                   li, initial, q, trajectory.time(k), band)};
      }
    }
  }
  return std::nullopt;
}

MaybeViolation check_clock_phase_token(const sync::ClockHandles& clock,
                                       const sim::Trajectory& trajectory,
                                       const TrajectoryTolerances& tol) {
  const double high = tol.phase_high * clock.token;
  const std::size_t start = warmup_start(trajectory, tol.warmup_fraction);
  std::size_t single = 0;
  std::size_t considered = 0;
  const core::SpeciesId phases[3] = {clock.phase_r, clock.phase_g,
                                     clock.phase_b};
  for (std::size_t k = start; k < trajectory.sample_count(); ++k) {
    int n_high = 0;
    for (const core::SpeciesId phase : phases) {
      if (trajectory.value(k, phase) > high) ++n_high;
    }
    if (n_high >= 2) {
      return Violation{
          "clock_phase_token",
          format("%d clock phases above %.2f simultaneously at t=%.3f "
                 "(R=%.3f G=%.3f B=%.3f) — phase token duplicated",
                 n_high, high, trajectory.time(k),
                 trajectory.value(k, clock.phase_r),
                 trajectory.value(k, clock.phase_g),
                 trajectory.value(k, clock.phase_b))};
    }
    single += n_high == 1 ? 1 : 0;
    ++considered;
  }
  if (considered > 0) {
    const double duty =
        static_cast<double>(single) / static_cast<double>(considered);
    if (duty < tol.min_single_phase_duty) {
      return Violation{
          "clock_phase_token",
          format("exactly-one-phase-high duty %.2f below floor %.2f — "
                 "phase token lost or clock stalled",
                 duty, tol.min_single_phase_duty)};
    }
  }
  return std::nullopt;
}

MaybeViolation check_dual_rail_exclusive(
    const core::ReactionNetwork& network, const sim::Trajectory& trajectory,
    std::span<const std::pair<core::SpeciesId, core::SpeciesId>> rail_pairs,
    const TrajectoryTolerances& tol) {
  const std::size_t start = warmup_start(trajectory, tol.warmup_fraction);
  for (const auto& [pos, neg] : rail_pairs) {
    std::size_t overlapping = 0;
    std::size_t considered = 0;
    double worst = 0.0;
    double worst_t = 0.0;
    for (std::size_t k = start; k < trajectory.sample_count(); ++k) {
      const double common =
          std::min(trajectory.value(k, pos), trajectory.value(k, neg));
      if (common > tol.rail_overlap) ++overlapping;
      if (common > worst) {
        worst = common;
        worst_t = trajectory.time(k);
      }
      ++considered;
    }
    if (considered == 0) continue;
    const double duty =
        static_cast<double>(overlapping) / static_cast<double>(considered);
    if (duty > tol.rail_overlap_duty) {
      return Violation{
          "dual_rail_exclusive",
          format("rail pair (%s, %s) unnormalized for %.0f%% of the run "
                 "(worst min(p,n)=%.3f at t=%.3f) — annihilation not winning",
                 network.species_name(pos).c_str(),
                 network.species_name(neg).c_str(), 100.0 * duty, worst,
                 worst_t)};
    }
  }
  return std::nullopt;
}

MaybeViolation check_series_match(const std::string& oracle,
                                  std::span<const double> actual,
                                  std::span<const double> expected,
                                  const SeriesTolerance& tol) {
  if (actual.size() != expected.size()) {
    return Violation{oracle, format("series length %zu != reference %zu",
                                    actual.size(), expected.size())};
  }
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double band = tol.abs + tol.rel * std::abs(expected[i]);
    if (std::abs(actual[i] - expected[i]) > band) {
      return Violation{
          oracle, format("cycle %zu: measured %.4f vs reference %.4f "
                         "(band %.4f)",
                         i, actual[i], expected[i], band)};
    }
  }
  return std::nullopt;
}

MaybeViolation check_mean_in_band(const std::string& oracle,
                                  const runtime::EnsembleResult& ensemble,
                                  std::span<const double> reference,
                                  const CltBand& band) {
  if (ensemble.ok == 0) {
    return Violation{oracle, "no successful replicates in ensemble"};
  }
  const double n = static_cast<double>(ensemble.ok);
  for (std::size_t i = 0;
       i < ensemble.final_stats.size() && i < reference.size(); ++i) {
    const auto& stats = ensemble.final_stats[i];
    const double tol = band.z * stats.stddev / std::sqrt(n) + band.bias;
    if (std::abs(stats.mean - reference[i]) > tol) {
      return Violation{
          oracle,
          format("species %s: ensemble mean %.4f vs reference %.4f "
                 "(band %.4f = %.1f*%.4f/sqrt(%zu)+%.3f)",
                 stats.name.c_str(), stats.mean, reference[i], tol, band.z,
                 stats.stddev, ensemble.ok, band.bias)};
    }
  }
  return std::nullopt;
}

MaybeViolation check_ensembles_agree(const std::string& oracle,
                                     const runtime::EnsembleResult& a,
                                     const runtime::EnsembleResult& b,
                                     const CltBand& band) {
  if (a.ok == 0 || b.ok == 0) {
    return Violation{oracle, "ensemble with no successful replicates"};
  }
  const std::size_t n = std::min(a.final_stats.size(), b.final_stats.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& sa = a.final_stats[i];
    const auto& sb = b.final_stats[i];
    const double sem = std::sqrt(
        sa.stddev * sa.stddev / static_cast<double>(a.ok) +
        sb.stddev * sb.stddev / static_cast<double>(b.ok));
    const double tol = band.z * sem + band.bias;
    if (std::abs(sa.mean - sb.mean) > tol) {
      return Violation{
          oracle, format("species %s: means %.4f vs %.4f differ beyond "
                         "band %.4f",
                         sa.name.c_str(), sa.mean, sb.mean, tol)};
    }
  }
  return std::nullopt;
}

MaybeViolation check_results_bitwise_equal(const std::string& oracle,
                                           const runtime::EnsembleResult& a,
                                           const runtime::EnsembleResult& b) {
  if (a.replicates.size() != b.replicates.size()) {
    return Violation{oracle, format("replicate counts differ: %zu vs %zu",
                                    a.replicates.size(), b.replicates.size())};
  }
  for (std::size_t i = 0; i < a.replicates.size(); ++i) {
    const auto& ra = a.replicates[i];
    const auto& rb = b.replicates[i];
    if (ra.status != rb.status) {
      return Violation{oracle,
                       format("replicate %zu: status differs (%s vs %s)", i,
                              to_string(ra.status), to_string(rb.status))};
    }
    if (ra.final_state.size() != rb.final_state.size()) {
      return Violation{oracle,
                       format("replicate %zu: state sizes differ", i)};
    }
    for (std::size_t s = 0; s < ra.final_state.size(); ++s) {
      // Bitwise: the determinism contract promises identical doubles, not
      // merely close ones.
      if (ra.final_state[s] != rb.final_state[s]) {
        return Violation{
            oracle,
            format("replicate %zu species %zu: %.17g vs %.17g — results "
                   "depend on worker count",
                   i, s, ra.final_state[s], rb.final_state[s])};
      }
    }
  }
  return std::nullopt;
}

}  // namespace mrsc::verify
