// Structured random-case generation for differential verification.
//
// The property tests and the `mrsc_verify` fuzzer need more than raw random
// mass-action soups: the paper's correctness claims are about *synchronous
// circuits* — a molecular clock gating dual-rail registers and combinational
// logic. This generator emits seeded random instances of every construct the
// library can build, each paired with an exact reference model so the
// oracles can check functional correctness, not just structural invariants:
//
//   kRawNetwork      — bounded-order mass-action networks (optionally closed,
//                      i.e. mass-preserving), no reference model; exercised
//                      by the simulator-vs-simulator differential oracles.
//   kSyncCircuit     — a random dataflow DAG (add / min / scale / fanout)
//                      over 1-2 registers, compiled by sync::CircuitBuilder;
//                      the generator replays the same DAG on plain doubles to
//                      produce the expected per-cycle outputs.
//   kDualRailCircuit — a random *signed* dataflow (add / subtract / negate /
//                      scale / fanout) built on DualRailBuilder, with the
//                      normalizing register rail pairs recorded for the
//                      exclusivity oracle.
//   kFsm             — a random Mealy machine plus a random input string;
//                      fsm::evaluate_reference is the golden model.
//   kCounter         — a random-width dual-rail ripple counter; the
//                      gate-level logic::Netlist counter is the golden model.
//
// Everything is a pure function of (kind, seed, options); the same seed
// always reproduces the same case, which is what makes shrunk fuzz failures
// actionable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/network.hpp"
#include "dsp/counter.hpp"
#include "fsm/fsm.hpp"
#include "sync/circuit.hpp"

namespace mrsc::verify {

enum class CaseKind : std::uint8_t {
  kRawNetwork,
  kSyncCircuit,
  kDualRailCircuit,
  kFsm,
  kCounter,
};

/// Short name used by the CLI ("raw", "sync", "dual", "fsm", "counter").
[[nodiscard]] const char* to_string(CaseKind kind);

/// Parses a comma-separated kind list; throws `std::invalid_argument` on an
/// unknown name. An empty string yields all kinds.
[[nodiscard]] std::vector<CaseKind> parse_kinds(const std::string& csv);

struct RawCase {
  core::ReactionNetwork network;
  /// Mass-preserving shapes only (k reactants -> k products): total
  /// concentration is conserved, which tightens the differential bands.
  bool closed = false;
};

struct SyncCase {
  core::ReactionNetwork network;
  sync::CompiledCircuit circuit;
  std::string in_port;   ///< "x"
  std::string out_port;  ///< "y"
  std::vector<double> samples;   ///< one input sample per cycle
  std::vector<double> expected;  ///< reference output per cycle
};

struct DualRailCase {
  core::ReactionNetwork network;
  sync::CompiledCircuit circuit;
  std::vector<double> samples;   ///< signed input samples (port "x")
  std::vector<double> expected;  ///< signed reference outputs (port "y")
  /// Red (state-holding) species of each dual-rail register pair, for the
  /// rail-exclusivity oracle.
  std::vector<std::pair<core::SpeciesId, core::SpeciesId>> rail_pairs;
};

struct FsmCase {
  core::ReactionNetwork network;
  fsm::FsmSpec spec;
  fsm::FsmHandles handles;
  std::vector<std::size_t> inputs;  ///< random input string
};

struct CounterCase {
  core::ReactionNetwork network;
  dsp::CounterSpec spec;
  dsp::CounterHandles handles;
  std::size_t increments = 0;
};

struct GeneratorOptions {
  /// Clocked cases: input samples (= clock cycles) per run. Small values keep
  /// a fuzz campaign cheap; the per-cycle invariants do not need long runs.
  std::size_t cycles = 3;
  /// Sync/dual-rail circuits: upper bound on random combinational ops.
  std::size_t max_ops = 5;
  /// Sync/dual-rail circuits: upper bound on registers (>= 1).
  std::size_t max_registers = 2;
};

struct GeneratedCase {
  CaseKind kind = CaseKind::kRawNetwork;
  std::uint64_t seed = 0;
  std::variant<RawCase, SyncCase, DualRailCase, FsmCase, CounterCase> payload;

  [[nodiscard]] const core::ReactionNetwork& network() const;
};

/// Builds the case for (kind, seed). Deterministic; never reuses RNG state
/// across kinds, so the same seed with different kinds gives unrelated cases.
[[nodiscard]] GeneratedCase generate_case(CaseKind kind, std::uint64_t seed,
                                          const GeneratorOptions& options = {});

}  // namespace mrsc::verify
