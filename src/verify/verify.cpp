#include "verify/verify.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <sstream>

#include "analysis/harness.hpp"
#include "core/io.hpp"
#include "logic/netlist.hpp"
#include "runtime/batch.hpp"
#include "runtime/ensemble.hpp"
#include "sim/ode.hpp"
#include "sync/dual_rail.hpp"
#include "verify/engine_equivalence.hpp"
#include "verify/lint_oracle.hpp"
#include "util/rng.hpp"

namespace mrsc::verify {
namespace {

using core::ReactionNetwork;

std::string format(const char* fmt, auto... args) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  return buffer;
}

void add(std::vector<Violation>& out, MaybeViolation v) {
  if (v) out.push_back(std::move(*v));
}

/// Free-run horizon: a few clock periods is enough for the token invariants,
/// and it's what keeps shrink predicates cheap.
double free_run_t_end(const core::RatePolicy& policy) {
  const double period_guess = 15.0 * sync::ClockSpec{}.phase_stretch /
                              policy.k_slow;
  return 3.5 * period_guess;
}

/// An alternative fast/slow ratio for the rate-robustness oracle, sampled
/// per seed (the default policy is 1000).
double robustness_ratio(std::uint64_t seed) {
  constexpr double kRatios[] = {300.0, 3000.0};
  return kRatios[seed % 2];
}

// --- optimization equivalence ------------------------------------------------

void add_clock_roots(std::vector<core::SpeciesId>& roots,
                     const sync::ClockHandles& clock) {
  roots.insert(roots.end(), {clock.phase_r, clock.phase_g, clock.phase_b,
                             clock.ind_r, clock.ind_g, clock.ind_b});
}

/// Proves the kO1 pipeline trajectory-preserving on this case's network with
/// the given interface pinned as roots.
void check_opt(std::vector<Violation>& out, const ReactionNetwork& network,
               std::span<const core::SpeciesId> roots, std::uint64_t seed,
               const VerifyOptions& o, bool ssa) {
  if (!o.opt_equivalence) return;
  OptEquivalenceOptions eq;
  eq.t_end = ssa ? 2.0 : free_run_t_end(network.rate_policy());
  eq.ssa = ssa;
  eq.omega = o.omega;
  eq.replicates = std::min<std::size_t>(o.ssa_replicates, 8);
  eq.base_seed = util::Rng::stream_seed(seed, 0xEC);
  eq.clt = CltBand{o.clt.z, 0.0};
  const auto found = check_optimization_equivalence(network, roots, eq);
  out.insert(out.end(), found.begin(), found.end());
}

// --- per-kind oracle passes --------------------------------------------------

std::vector<Violation> check_sync(const SyncCase& c, std::uint64_t seed,
                                  const VerifyOptions& o) {
  std::vector<Violation> out;
  analysis::ClockedRunOptions run_options;
  run_options.ode.t_end = analysis::suggest_t_end(
      {}, c.network.rate_policy(), c.samples.size());
  const auto run = analysis::run_clocked_circuit(
      c.network, c.circuit, c.in_port, c.samples, c.out_port, run_options);
  add(out, check_series_match("sync_functional", run.outputs, c.expected,
                              o.functional));
  const core::SpeciesId driven[] = {c.circuit.input(c.in_port),
                                    c.circuit.output(c.out_port)};
  add(out, check_non_negative(c.network, run.ode.trajectory, o.trajectory));
  add(out, check_conservation(c.network, run.ode.trajectory, o.trajectory,
                              driven));
  add(out, check_clock_phase_token(c.circuit.clock, run.ode.trajectory,
                                   o.trajectory));
  if (o.robustness && seed % 4 == 0) {
    ReactionNetwork alt = c.network;
    core::RatePolicy policy = alt.rate_policy();
    policy.k_fast = policy.k_slow * robustness_ratio(seed);
    alt.set_rate_policy(policy);
    const auto rerun = analysis::run_clocked_circuit(
        alt, c.circuit, c.in_port, c.samples, c.out_port, run_options);
    add(out, check_series_match("rate_robustness", rerun.outputs, c.expected,
                                o.functional_robust));
  }
  std::vector<core::SpeciesId> roots;
  for (const auto& [name, id] : c.circuit.inputs) roots.push_back(id);
  for (const auto& [name, id] : c.circuit.outputs) roots.push_back(id);
  add_clock_roots(roots, c.circuit.clock);
  check_opt(out, c.network, roots, seed, o, /*ssa=*/false);
  return out;
}

std::vector<Violation> check_dual(const DualRailCase& c, std::uint64_t seed,
                                  const VerifyOptions& o) {
  std::vector<Violation> out;
  analysis::ClockedRunOptions run_options;
  run_options.ode.t_end = 2.0 * analysis::suggest_t_end(
                                    {}, c.network.rate_policy(),
                                    c.samples.size());
  std::vector<analysis::PortSamples> inputs(2);
  inputs[0].port = sync::rail_pos("x");
  inputs[1].port = sync::rail_neg("x");
  for (const double v : c.samples) {
    inputs[0].samples.push_back(v > 0.0 ? v : 0.0);
    inputs[1].samples.push_back(v < 0.0 ? -v : 0.0);
  }
  const std::vector<std::string> out_ports = {sync::rail_pos("y"),
                                              sync::rail_neg("y")};
  auto drive = [&](const ReactionNetwork& net) {
    return analysis::run_clocked_circuit_multi(net, c.circuit, inputs,
                                               out_ports, run_options);
  };
  const auto run = drive(c.network);
  add(out, check_series_match("dual_functional",
                              analysis::signed_series(run, "y"), c.expected,
                              o.functional_dual));
  const core::SpeciesId driven[] = {c.circuit.input(inputs[0].port),
                                    c.circuit.input(inputs[1].port),
                                    c.circuit.output(out_ports[0]),
                                    c.circuit.output(out_ports[1])};
  add(out, check_non_negative(c.network, run.ode.trajectory, o.trajectory));
  add(out, check_conservation(c.network, run.ode.trajectory, o.trajectory,
                              driven));
  add(out, check_clock_phase_token(c.circuit.clock, run.ode.trajectory,
                                   o.trajectory));
  add(out, check_dual_rail_exclusive(c.network, run.ode.trajectory,
                                     c.rail_pairs, o.trajectory));
  if (o.robustness && seed % 4 == 0) {
    ReactionNetwork alt = c.network;
    core::RatePolicy policy = alt.rate_policy();
    policy.k_fast = policy.k_slow * robustness_ratio(seed);
    alt.set_rate_policy(policy);
    const auto rerun = drive(alt);
    add(out, check_series_match("rate_robustness",
                                analysis::signed_series(rerun, "y"),
                                c.expected, o.functional_robust));
  }
  std::vector<core::SpeciesId> roots;
  for (const auto& [name, id] : c.circuit.inputs) roots.push_back(id);
  for (const auto& [name, id] : c.circuit.outputs) roots.push_back(id);
  add_clock_roots(roots, c.circuit.clock);
  check_opt(out, c.network, roots, seed, o, /*ssa=*/false);
  return out;
}

std::vector<Violation> check_fsm(const FsmCase& c, const VerifyOptions& o) {
  std::vector<Violation> out;
  analysis::ClockedRunOptions run_options;
  run_options.ode.t_end = analysis::suggest_t_end(
      c.spec.clock, c.network.rate_policy(), c.inputs.size());
  const auto run = analysis::run_fsm(c.network, c.handles, c.inputs,
                                     run_options);
  const fsm::FsmTrace reference = fsm::evaluate_reference(c.spec, c.inputs);
  for (std::size_t i = 0; i < c.inputs.size(); ++i) {
    if (run.states[i] != reference.states[i]) {
      out.push_back({"fsm_reference",
                     format("cycle %zu: molecular state %zu vs reference %zu",
                            i, run.states[i], reference.states[i])});
      break;
    }
    if (run.outputs[i] != reference.outputs[i]) {
      out.push_back(
          {"fsm_reference",
           format("cycle %zu: molecular output %zd vs reference %zd", i,
                  static_cast<std::ptrdiff_t>(run.outputs[i]),
                  static_cast<std::ptrdiff_t>(reference.outputs[i]))});
      break;
    }
  }
  // Minimization must preserve behaviour exactly (pure differential, no
  // simulation involved).
  const fsm::MinimizationResult minimized = fsm::minimize(c.spec);
  const fsm::FsmTrace min_trace =
      fsm::evaluate_reference(minimized.spec, c.inputs);
  for (std::size_t i = 0; i < c.inputs.size(); ++i) {
    if (min_trace.outputs[i] != reference.outputs[i]) {
      out.push_back(
          {"fsm_minimize",
           format("cycle %zu: minimized machine output %zd vs original %zd "
                  "(%zu -> %zu states)",
                  i, static_cast<std::ptrdiff_t>(min_trace.outputs[i]),
                  static_cast<std::ptrdiff_t>(reference.outputs[i]),
                  c.spec.num_states, minimized.spec.num_states)});
      break;
    }
  }
  std::vector<core::SpeciesId> driven = c.handles.input;
  driven.insert(driven.end(), c.handles.output.begin(),
                c.handles.output.end());
  add(out, check_non_negative(c.network, run.ode.trajectory, o.trajectory));
  add(out, check_conservation(c.network, run.ode.trajectory, o.trajectory,
                              driven));
  add(out, check_clock_phase_token(c.handles.clock, run.ode.trajectory,
                                   o.trajectory));
  std::vector<core::SpeciesId> roots = c.handles.state;
  roots.insert(roots.end(), c.handles.state_primed.begin(),
               c.handles.state_primed.end());
  roots.insert(roots.end(), c.handles.input.begin(), c.handles.input.end());
  roots.insert(roots.end(), c.handles.output.begin(), c.handles.output.end());
  add_clock_roots(roots, c.handles.clock);
  check_opt(out, c.network, roots, /*seed=*/0, o, /*ssa=*/false);
  return out;
}

std::vector<Violation> check_counter(const CounterCase& c,
                                     const VerifyOptions& o) {
  std::vector<Violation> out;
  analysis::ClockedRunOptions run_options;
  run_options.ode.t_end = analysis::suggest_t_end(
      c.spec.clock, c.network.rate_policy(), c.increments);
  const auto run =
      analysis::run_counter(c.network, c.handles, c.increments, run_options);
  const logic::Netlist golden =
      logic::make_counter_netlist(c.spec.bits, c.spec.initial_value);
  logic::Simulation sim(golden);
  const logic::NetId enable = *golden.find("enable");
  for (std::size_t i = 0; i < c.increments; ++i) {
    sim.set_input(enable, true);
    sim.evaluate();
    sim.clock_edge();
    sim.evaluate();
    if (run.values[i] != sim.output_word()) {
      out.push_back(
          {"counter_reference",
           format("increment %zu: molecular counter %llu vs gate-level %llu",
                  i, static_cast<unsigned long long>(run.values[i]),
                  static_cast<unsigned long long>(sim.output_word()))});
      break;
    }
  }
  const core::SpeciesId driven[] = {c.handles.increment};
  add(out, check_non_negative(c.network, run.ode.trajectory, o.trajectory));
  add(out, check_conservation(c.network, run.ode.trajectory, o.trajectory,
                              driven));
  add(out, check_clock_phase_token(c.handles.clock, run.ode.trajectory,
                                   o.trajectory));
  std::vector<core::SpeciesId> roots = {c.handles.increment};
  roots.insert(roots.end(), c.handles.zero_rail.begin(),
               c.handles.zero_rail.end());
  roots.insert(roots.end(), c.handles.one_rail.begin(),
               c.handles.one_rail.end());
  add_clock_roots(roots, c.handles.clock);
  check_opt(out, c.network, roots, /*seed=*/0, o, /*ssa=*/false);
  return out;
}

std::vector<Violation> check_raw(const RawCase& c, std::uint64_t seed,
                                 const VerifyOptions& o) {
  std::vector<Violation> out;
  constexpr double kTEnd = 2.0;
  sim::OdeOptions ode_options;
  ode_options.t_end = kTEnd;
  const auto ode = sim::simulate_ode(c.network, ode_options);
  add(out, check_non_negative(c.network, ode.trajectory, o.trajectory));
  add(out, check_conservation(c.network, ode.trajectory, o.trajectory));
  // No interface to pin: the pipeline may remove anything provably dead.
  // Closed cases have bounded dynamics, so they also get the SSA leg.
  check_opt(out, c.network, /*roots=*/{}, seed, o,
            /*ssa=*/o.differential && c.closed);

  // The ensemble differentials need bounded dynamics; closed (mass-
  // preserving) networks guarantee that. Open random networks can contain
  // autocatalytic loops whose SSA event counts explode, so they only get the
  // ODE-side checks above.
  if (!o.differential || !c.closed) return out;

  sim::SsaOptions ssa;
  ssa.t_end = kTEnd;
  ssa.omega = o.omega;
  ssa.record_interval = kTEnd;  // final state only
  runtime::EnsembleOptions ensemble_options;
  ensemble_options.replicates = o.ssa_replicates;
  ensemble_options.base_seed = util::Rng::stream_seed(seed, 0xE5);
  ensemble_options.batch.threads = 1;  // outer sweep owns the parallelism

  ssa.method = sim::SsaMethod::kNextReaction;
  const auto nrm = runtime::run_ssa_ensemble(c.network, ssa, ensemble_options);
  ssa.method = sim::SsaMethod::kDirect;
  const auto direct =
      runtime::run_ssa_ensemble(c.network, ssa, ensemble_options);

  add(out, check_mean_in_band("ode_vs_ssa_mean", nrm,
                              ode.trajectory.final_state(), o.clt));
  add(out, check_ensembles_agree("direct_vs_nrm", direct, nrm, o.clt));

  // Worker count must not change results: rerun the next-reaction ensemble
  // on four threads and require bitwise identity.
  runtime::EnsembleOptions parallel_options = ensemble_options;
  parallel_options.batch.threads = 4;
  ssa.method = sim::SsaMethod::kNextReaction;
  const auto nrm_parallel =
      runtime::run_ssa_ensemble(c.network, ssa, parallel_options);
  add(out, check_results_bitwise_equal("serial_vs_parallel", nrm,
                                       nrm_parallel));
  return out;
}

/// Rebuilds the case with `candidate` as its network (species ids are
/// preserved by the shrinker, so circuit/FSM/counter handles stay valid).
GeneratedCase with_network(const GeneratedCase& c, ReactionNetwork candidate) {
  GeneratedCase copy = c;
  std::visit([&](auto& payload) { payload.network = std::move(candidate); },
             copy.payload);
  return copy;
}

const sync::ClockHandles* clock_of(const GeneratedCase& c) {
  switch (c.kind) {
    case CaseKind::kSyncCircuit:
      return &std::get<SyncCase>(c.payload).circuit.clock;
    case CaseKind::kDualRailCircuit:
      return &std::get<DualRailCase>(c.payload).circuit.clock;
    case CaseKind::kFsm:
      return &std::get<FsmCase>(c.payload).handles.clock;
    case CaseKind::kCounter:
      return &std::get<CounterCase>(c.payload).handles.clock;
    case CaseKind::kRawNetwork:
      break;
  }
  return nullptr;
}

std::span<const std::pair<core::SpeciesId, core::SpeciesId>> rails_of(
    const GeneratedCase& c) {
  if (c.kind == CaseKind::kDualRailCircuit) {
    return std::get<DualRailCase>(c.payload).rail_pairs;
  }
  return {};
}

bool is_invariant_oracle(const std::string& oracle) {
  return oracle == "non_negative" || oracle == "conservation" ||
         oracle == "clock_phase_token" || oracle == "dual_rail_exclusive";
}

}  // namespace

std::vector<Violation> check_trajectory_invariants(
    const ReactionNetwork& network, const sync::ClockHandles* clock,
    std::span<const std::pair<core::SpeciesId, core::SpeciesId>> rail_pairs,
    const VerifyOptions& options) {
  std::vector<Violation> out;
  sim::OdeOptions ode_options;
  ode_options.t_end =
      clock != nullptr ? free_run_t_end(network.rate_policy()) : 2.0;
  const auto ode = sim::simulate_ode(network, ode_options);
  add(out, check_non_negative(network, ode.trajectory, options.trajectory));
  add(out, check_conservation(network, ode.trajectory, options.trajectory));
  if (clock != nullptr) {
    add(out, check_clock_phase_token(*clock, ode.trajectory,
                                     options.trajectory));
  }
  if (!rail_pairs.empty()) {
    add(out, check_dual_rail_exclusive(network, ode.trajectory, rail_pairs,
                                       options.trajectory));
  }
  return out;
}

std::vector<Violation> check_case(const GeneratedCase& c,
                                  const VerifyOptions& options) {
  try {
    std::vector<Violation> out;
    switch (c.kind) {
      case CaseKind::kRawNetwork:
        out = check_raw(std::get<RawCase>(c.payload), c.seed, options);
        break;
      case CaseKind::kSyncCircuit:
        out = check_sync(std::get<SyncCase>(c.payload), c.seed, options);
        break;
      case CaseKind::kDualRailCircuit:
        out = check_dual(std::get<DualRailCase>(c.payload), c.seed, options);
        break;
      case CaseKind::kFsm:
        out = check_fsm(std::get<FsmCase>(c.payload), options);
        break;
      case CaseKind::kCounter:
        out = check_counter(std::get<CounterCase>(c.payload), options);
        break;
    }
    if (options.engine_equivalence) {
      // Kind-independent: the engines must agree on *any* network, so the
      // oracle runs on the case's raw reaction system directly.
      EngineEquivalenceOptions eq;
      eq.seed = util::Rng::stream_seed(c.seed, 0xE6);
      const std::vector<Violation> engine_violations =
          check_engine_equivalence(c.network(), eq);
      out.insert(out.end(), engine_violations.begin(),
                 engine_violations.end());
    }
    if (options.lint_cross) {
      const std::vector<Violation> lint_violations = check_lint_cross(c);
      out.insert(out.end(), lint_violations.begin(), lint_violations.end());
    }
    return out;
  } catch (const std::exception& e) {
    // A healthy case must simulate; a throw is itself a finding. Fall back
    // to the harness-free invariant pass so a broken clock is still
    // attributed to the right oracle.
    std::vector<Violation> out = check_trajectory_invariants(
        c.network(), clock_of(c), rails_of(c), options);
    out.push_back({"harness", e.what()});
    return out;
  }
  return {};
}

std::optional<ShrinkResult> shrink_case(const GeneratedCase& c,
                                        const std::string& oracle,
                                        const VerifyOptions& options) {
  // The lint cross-oracle is structural: there is no trajectory predicate
  // to replay while shrinking, and the fault site selection depends on the
  // original reaction numbering.
  if (oracle == "lint_cross") return std::nullopt;
  VerifyOptions replay = options;
  replay.shrink = false;
  replay.lint_cross = false;
  replay.robustness = oracle == "rate_robustness";
  replay.differential = !is_invariant_oracle(oracle);
  replay.opt_equivalence = oracle == "opt_equivalence";
  replay.engine_equivalence = oracle == "engine_equivalence";

  ViolationPredicate violates;
  if (is_invariant_oracle(oracle)) {
    // The cheap, exception-free path: free-run + trajectory oracles.
    violates = [c = c, oracle, replay](const ReactionNetwork& candidate) {
      const auto found = check_trajectory_invariants(
          candidate, clock_of(c), rails_of(c), replay);
      for (const Violation& v : found) {
        if (v.oracle == oracle) return true;
      }
      return false;
    };
  } else {
    // Full replay through the harness (functional/differential oracles).
    violates = [c = c, oracle, replay](const ReactionNetwork& candidate) {
      const auto found = check_case(with_network(c, candidate), replay);
      for (const Violation& v : found) {
        if (v.oracle == oracle) return true;
      }
      return false;
    };
  }
  return shrink_network(c.network(), violates, options.shrink_options);
}

FuzzReport run_fuzz(const VerifyOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  FuzzReport report;
  const std::vector<CaseKind> kinds =
      options.kinds.empty() ? parse_kinds("") : options.kinds;
  report.cases.resize(options.seeds);

  runtime::BatchRunner runner({.threads = options.threads});
  runner.for_each_index(options.seeds, [&](std::size_t i) {
    const std::uint64_t seed = options.start_seed + i;
    const CaseKind kind = kinds[i % kinds.size()];
    CaseResult& result = report.cases[i];
    result.kind = kind;
    result.seed = seed;
    try {
      const GeneratedCase c = generate_case(kind, seed, options.generator);
      result.original_reactions = c.network().reaction_count();
      result.violations = check_case(c, options);
    } catch (const std::exception& e) {
      result.violations.push_back({"generator", e.what()});
    }
  });

  // Shrink failures serially (they are rare by construction; a red CI run
  // only ever has a handful).
  for (CaseResult& result : report.cases) {
    ++report.checked;
    if (!result.failed()) continue;
    ++report.failed;
    if (!options.shrink || result.violations.front().oracle == "generator") {
      continue;
    }
    try {
      const GeneratedCase c =
          generate_case(result.kind, result.seed, options.generator);
      // Replay against the faulted oracle. (The case as regenerated is the
      // unmutated one; shrinking only helps for genuine generator-born
      // failures, which is exactly the CI scenario.)
      const auto shrunk =
          shrink_case(c, result.violations.front().oracle, options);
      if (shrunk && shrunk->reproduced) {
        result.shrunk = true;
        result.original_reactions = shrunk->original_reactions;
        result.shrunk_reactions = shrunk->final_reactions;
        result.repro = core::serialize_network(shrunk->network);
      }
    } catch (const std::exception&) {
      // Shrinking is best-effort; the unshrunk failure is still reported.
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return report;
}

std::string describe(const CaseResult& result) {
  std::ostringstream out;
  out << "seed " << result.seed << " [" << to_string(result.kind) << "]";
  if (!result.failed()) {
    out << ": ok";
    return out.str();
  }
  for (const Violation& v : result.violations) {
    out << "\n  " << v.oracle << ": " << v.detail;
  }
  if (result.shrunk) {
    out << "\n  shrunk " << result.original_reactions << " -> "
        << result.shrunk_reactions << " reactions; minimal repro:\n";
    std::istringstream lines(result.repro);
    std::string line;
    while (std::getline(lines, line)) {
      out << "    " << line << "\n";
    }
    out << "  reproduce: mrsc_verify --kinds " << to_string(result.kind)
        << " --start-seed " << result.seed << " --seeds 1";
  }
  return out.str();
}

}  // namespace mrsc::verify
