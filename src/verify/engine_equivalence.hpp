// Legacy-vs-compiled engine equivalence oracle.
//
// The compiled engine (src/sim/engine/) claims *bitwise* identity with the
// legacy MassActionSystem paths — not statistical agreement, the same bits.
// This oracle holds it to that claim on arbitrary networks:
//
//   1. SSA direct:        same seed, legacy vs compiled — trajectories,
//                         event counts, and final counts must be identical.
//   2. SSA next-reaction: same, through the dependency graph and the
//                         stale-propensity skip.
//   3. Fixed-step RK4:    trajectories identical sample-for-sample.
//   4. Adaptive DP45:     tolerance-banded (the step controller makes this
//                         leg nominally adaptive; in practice the band is
//                         slack — the engines agree bitwise here too, and
//                         the band exists to localize a future divergence
//                         rather than to allow one).
//
// The fuzz driver applies it to every generated case alongside the
// opt-equivalence oracle, making the engine contract a permanent fixture of
// the campaign rather than a one-off migration test.
#pragma once

#include <cstdint>
#include <vector>

#include "core/network.hpp"
#include "verify/oracles.hpp"

namespace mrsc::verify {

struct EngineEquivalenceOptions {
  /// Shared horizon and sampling grid for every leg.
  double t_end = 2.0;
  double record_interval = 0.05;
  /// SSA volume scale and seed (both engines consume the identical stream).
  double omega = 200.0;
  std::uint64_t seed = 1;
  /// Event cap so fuzzed open networks terminate; both engines hit the cap
  /// on the same event, so capped runs still compare exactly.
  std::uint64_t max_events = 200'000;
  /// Run the adaptive DP45 leg.
  bool adaptive = true;
  /// Pointwise band for the adaptive leg (see header comment).
  double adaptive_tol = 1e-9;
};

/// Runs every leg and returns each discrepancy as a violation with oracle
/// "engine_equivalence"; empty means the engines agreed.
[[nodiscard]] std::vector<Violation> check_engine_equivalence(
    const core::ReactionNetwork& network,
    const EngineEquivalenceOptions& options = {});

}  // namespace mrsc::verify
