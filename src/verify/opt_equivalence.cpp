#include "verify/opt_equivalence.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "compile/passes.hpp"
#include "runtime/ensemble.hpp"
#include "sim/ode.hpp"

namespace mrsc::verify {
namespace {

using core::ReactionNetwork;
using core::SpeciesId;

std::string format(const char* fmt, auto... args) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  return buffer;
}

sim::OdeResult fixed_grid_run(const ReactionNetwork& network,
                              const OptEquivalenceOptions& o) {
  sim::OdeOptions ode;
  ode.method = sim::OdeMethod::kRk4Fixed;
  ode.t_end = o.t_end;
  ode.record_interval = o.record_interval;
  return sim::simulate_ode(network, ode);
}

}  // namespace

std::vector<Violation> check_optimization_equivalence(
    const ReactionNetwork& network, std::span<const SpeciesId> roots,
    const OptEquivalenceOptions& options) {
  constexpr const char* kOracle = "opt_equivalence";
  std::vector<Violation> out;

  ReactionNetwork optimized = network;
  compile::OptimizeResult opt;
  try {
    opt = compile::optimize_network(optimized, roots, compile::OptLevel::kO1);
  } catch (const std::exception& e) {
    out.push_back({kOracle, format("pipeline threw: %s", e.what())});
    return out;
  }

  // 1. Structural: the exact passes only ever shrink, and roots survive
  // untouched (same name, same initial concentration).
  if (optimized.species_count() > network.species_count() ||
      optimized.reaction_count() > network.reaction_count()) {
    out.push_back(
        {kOracle,
         format("pipeline grew the network: %zu sp / %zu rx -> %zu sp / "
                "%zu rx",
                network.species_count(), network.reaction_count(),
                optimized.species_count(), optimized.reaction_count())});
    return out;
  }
  for (const SpeciesId root : roots) {
    const SpeciesId mapped = opt.remap[root.index()];
    if (!mapped.valid()) {
      out.push_back({kOracle, format("root species '%s' was eliminated",
                                     network.species_name(root).c_str())});
      return out;
    }
    if (optimized.species_name(mapped) != network.species_name(root)) {
      out.push_back({kOracle,
                     format("root '%s' renamed to '%s'",
                            network.species_name(root).c_str(),
                            optimized.species_name(mapped).c_str())});
      return out;
    }
    if (optimized.initial(mapped) != network.initial(root)) {
      out.push_back({kOracle,
                     format("root '%s' initial changed: %g -> %g",
                            network.species_name(root).c_str(),
                            network.initial(root),
                            optimized.initial(mapped))});
      return out;
    }
  }

  // 2. Deterministic leg: identical fixed-step RK4 grids, pointwise
  // comparison of every surviving species; removed species must never leave
  // zero in the original run.
  const sim::OdeResult original_run = fixed_grid_run(network, options);
  const sim::OdeResult optimized_run = fixed_grid_run(optimized, options);
  for (std::size_t s = 0; s < network.species_count(); ++s) {
    const SpeciesId id(static_cast<std::uint32_t>(s));
    const SpeciesId mapped = opt.remap[s];
    if (!mapped.valid()) {
      for (std::size_t k = 0; k < original_run.trajectory.sample_count();
           ++k) {
        const double v = original_run.trajectory.value(k, id);
        if (std::abs(v) > options.removed_tol) {
          out.push_back(
              {kOracle,
               format("eliminated species '%s' reaches %.3e at t=%.3f in "
                      "the original network (claimed unreachable)",
                      network.species_name(id).c_str(), v,
                      original_run.trajectory.times()[k])});
          break;
        }
      }
      continue;
    }
    double worst = 0.0;
    double worst_t = 0.0;
    for (std::size_t k = 0; k < original_run.trajectory.sample_count(); ++k) {
      const double a = original_run.trajectory.value(k, id);
      const double b = optimized_run.trajectory.value(k, mapped);
      const double gap = std::abs(a - b);
      if (gap > worst) {
        worst = gap;
        worst_t = original_run.trajectory.times()[k];
      }
    }
    if (worst > options.abs_tol) {
      out.push_back(
          {kOracle,
           format("species '%s' diverges by %.3e at t=%.3f between the "
                  "original and kO1 networks (tol %.1e)",
                  network.species_name(id).c_str(), worst, worst_t,
                  options.abs_tol)});
    }
  }
  if (!out.empty() || !options.ssa) return out;

  // 3. Stochastic leg: per-species final means of matched SSA ensembles
  // must agree within the CLT band. The optimized network has a different
  // propensity layout, so the random streams diverge; only the distribution
  // is comparable, hence the band.
  sim::SsaOptions ssa;
  ssa.t_end = options.t_end;
  ssa.omega = options.omega;
  ssa.record_interval = options.t_end;  // final state only
  ssa.method = sim::SsaMethod::kNextReaction;
  runtime::EnsembleOptions ensemble;
  ensemble.replicates = options.replicates;
  ensemble.base_seed = options.base_seed;
  ensemble.batch.threads = 1;  // callers own the outer parallelism
  const auto original_ensemble =
      runtime::run_ssa_ensemble(network, ssa, ensemble);
  const auto optimized_ensemble =
      runtime::run_ssa_ensemble(optimized, ssa, ensemble);
  if (original_ensemble.ok == 0 || optimized_ensemble.ok == 0) {
    out.push_back({kOracle, "SSA ensembles produced no successful replicate"});
    return out;
  }
  std::map<std::string, const runtime::SpeciesStats*> by_name;
  for (const auto& stats : optimized_ensemble.final_stats) {
    by_name[stats.name] = &stats;
  }
  const double n_a = static_cast<double>(original_ensemble.ok);
  const double n_b = static_cast<double>(optimized_ensemble.ok);
  for (const auto& a : original_ensemble.final_stats) {
    const auto it = by_name.find(a.name);
    if (it == by_name.end()) continue;  // eliminated species
    const auto& b = *it->second;
    const double spread = options.clt.z *
                              std::sqrt(a.stddev * a.stddev / n_a +
                                        b.stddev * b.stddev / n_b) +
                          options.clt.bias;
    if (std::abs(a.mean - b.mean) > spread) {
      out.push_back(
          {kOracle,
           format("SSA mean of '%s' shifts %.4f -> %.4f under kO1 "
                  "(band %.4f)",
                  a.name.c_str(), a.mean, b.mean, spread)});
    }
  }
  return out;
}

}  // namespace mrsc::verify
