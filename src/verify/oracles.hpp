// Invariant and differential oracles over simulated trajectories.
//
// An oracle inspects a trajectory (or a pair of results) and either passes or
// returns a `Violation` describing what broke and where. Two families:
//
//   Invariant oracles — properties the paper guarantees for *every* correct
//   network: non-negativity, conservation totals, clock phase-token
//   uniqueness outside transfer windows, absence-indicator exclusivity, and
//   dual-rail rail exclusivity in parked registers.
//
//   Differential oracles — two ways of computing the same thing must agree:
//   a circuit vs its exact reference model, an ODE final state vs an
//   SSA-ensemble mean (within a CLT band), direct vs next-reaction SSA
//   ensembles, and serial vs multi-threaded batch execution (bitwise).
//
// Oracles are pure functions so both the fuzz driver and the shrinker can
// re-run them on candidate networks.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/network.hpp"
#include "runtime/ensemble.hpp"
#include "sim/trajectory.hpp"
#include "sync/clock.hpp"

namespace mrsc::verify {

struct Violation {
  std::string oracle;  ///< short oracle name ("clock_phase_token", ...)
  std::string detail;  ///< human-readable description with numbers
};

using MaybeViolation = std::optional<Violation>;

/// Tolerances for the trajectory-shaped invariant oracles. Rationale for the
/// defaults lives in docs/VERIFY.md.
struct TrajectoryTolerances {
  /// ODE integration may undershoot zero by O(abs_tol); anything beyond this
  /// is a real negativity.
  double negativity = 1e-6;
  /// Conservation drift allowed, relative to the law's initial magnitude
  /// (plus `conservation_abs` absolute slack for laws starting near zero).
  double conservation_rel = 1e-3;
  double conservation_abs = 1e-6;
  /// A clock phase counts as "high" above this fraction of the token.
  double phase_high = 0.6;
  /// Fraction of the trajectory to skip before applying clock/rail checks
  /// (startup transient while the sharpened clock finds its limit cycle).
  double warmup_fraction = 0.15;
  /// Liveness floor: the fraction of post-warmup samples with exactly one
  /// phase high must be at least this (transfer windows are brief).
  double min_single_phase_duty = 0.3;
  /// A parked dual-rail pair is "unnormalized" when min(p, n) exceeds this;
  /// allowed only transiently (see `rail_overlap_duty`).
  double rail_overlap = 0.1;
  /// Max fraction of post-warmup samples where a rail pair may overlap
  /// (values legitimately co-exist mid-cycle before annihilation wins).
  double rail_overlap_duty = 0.6;
};

/// Fails if any species drops below -tolerances.negativity at any sample.
[[nodiscard]] MaybeViolation check_non_negative(
    const core::ReactionNetwork& network, const sim::Trajectory& trajectory,
    const TrajectoryTolerances& tol = {});

/// Recomputes the network's conservation laws and fails if any drifts along
/// the trajectory. This validates the *simulator* (a correct integrator
/// conserves every law of whatever network it was given); it cannot detect
/// stoichiometry faults, because the laws are derived from the same faulty
/// matrix the dynamics obey. `driven` lists species whose concentration the
/// harness sets or clears mid-run (input/output ports, increment tokens);
/// laws with support on a driven species drift by design and are skipped.
[[nodiscard]] MaybeViolation check_conservation(
    const core::ReactionNetwork& network, const sim::Trajectory& trajectory,
    const TrajectoryTolerances& tol = {},
    std::span<const core::SpeciesId> driven = {});

/// The paper's central clock invariant: outside the brief transfer windows,
/// exactly one of C_R / C_G / C_B holds the phase token. Fails if two or
/// more phases are simultaneously high (token duplication — what a
/// stoichiometry fault in the clock produces), or if the one-phase-high duty
/// cycle falls below the liveness floor (token lost / clock dead).
[[nodiscard]] MaybeViolation check_clock_phase_token(
    const sync::ClockHandles& clock, const sim::Trajectory& trajectory,
    const TrajectoryTolerances& tol = {});

/// Dual-rail exclusivity: a register's parked rail pair (p, n) must be
/// normalized — min(p, n) small — for most of the run; the common part is
/// annihilated fast while the value sits in the register.
[[nodiscard]] MaybeViolation check_dual_rail_exclusive(
    const core::ReactionNetwork& network, const sim::Trajectory& trajectory,
    std::span<const std::pair<core::SpeciesId, core::SpeciesId>> rail_pairs,
    const TrajectoryTolerances& tol = {});

/// Per-element tolerance for functional (circuit vs reference) comparison:
/// |a - e| <= abs + rel * |e|.
struct SeriesTolerance {
  double abs = 0.06;
  double rel = 0.06;
};

/// Compares a measured per-cycle series against its reference model.
[[nodiscard]] MaybeViolation check_series_match(const std::string& oracle,
                                                std::span<const double> actual,
                                                std::span<const double> expected,
                                                const SeriesTolerance& tol);

/// CLT tolerance band for ensemble-mean comparisons: the mean of n replicates
/// deviates from the true mean by ~ stddev/sqrt(n), so the band is
/// z * stddev / sqrt(n) + bias, where `bias` absorbs the O(1/omega)
/// systematic gap between the SSA mean and the deterministic ODE limit.
struct CltBand {
  double z = 6.0;
  double bias = 0.0;
};

/// ODE final state vs SSA-ensemble mean, per species, within the CLT band.
[[nodiscard]] MaybeViolation check_mean_in_band(
    const std::string& oracle, const runtime::EnsembleResult& ensemble,
    std::span<const double> reference, const CltBand& band);

/// Two SSA ensembles (e.g. direct vs next-reaction) must have compatible
/// per-species means: |m1 - m2| <= z * sqrt(s1^2/n1 + s2^2/n2) + bias.
[[nodiscard]] MaybeViolation check_ensembles_agree(
    const std::string& oracle, const runtime::EnsembleResult& a,
    const runtime::EnsembleResult& b, const CltBand& band);

/// Bitwise identity of two ensembles' final states (the BatchRunner
/// determinism contract: worker count must not change results).
[[nodiscard]] MaybeViolation check_results_bitwise_equal(
    const std::string& oracle, const runtime::EnsembleResult& a,
    const runtime::EnsembleResult& b);

}  // namespace mrsc::verify
