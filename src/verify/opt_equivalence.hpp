// Optimized-vs-unoptimized equivalence oracle.
//
// The compile pipeline's passes (canonicalize, coalesce-duplicates,
// dead-species elimination) claim to be *exact*: the deterministic
// mass-action trajectory of every surviving species is unchanged, and every
// eliminated species provably never leaves zero. This oracle holds the
// pipeline to that claim on arbitrary networks: it optimizes a copy at kO1,
// then
//
//   1. structurally checks the pipeline only ever shrinks the network and
//      keeps every root alive with its name and initial value,
//   2. integrates both networks with the same fixed-step RK4 grid and
//      compares every surviving species pointwise, and checks every removed
//      species stays at zero in the *original* run, and
//   3. (optionally) runs matched SSA ensembles on both networks and requires
//      per-species final means to agree within a CLT band — the stochastic
//      semantics must be preserved too, not just the ODE limit.
//
// The fuzz driver applies it to every generated case, which is what the
// "optimizations are trajectory-preserving" guarantee in docs/COMPILE.md
// rests on.
#pragma once

#include <span>
#include <vector>

#include "core/network.hpp"
#include "verify/oracles.hpp"

namespace mrsc::verify {

struct OptEquivalenceOptions {
  /// Free-run ODE horizon and sampling grid (both networks use the same).
  double t_end = 2.0;
  double record_interval = 0.05;
  /// Pointwise tolerance for surviving-species trajectories. The networks
  /// are mathematically identical, so only floating-point re-association
  /// from coalesced rate sums separates them.
  double abs_tol = 1e-6;
  /// Eliminated species must stay below this in the original run (they are
  /// provably identically zero; RK4 keeps exact zeros exact).
  double removed_tol = 1e-9;
  /// Run the SSA-ensemble leg (costs 2 * replicates short runs).
  bool ssa = false;
  double omega = 200.0;
  std::size_t replicates = 8;
  std::uint64_t base_seed = 1;
  CltBand clt{6.0, 0.0};
};

/// Optimizes a copy of `network` at kO1 with `roots` pinned and proves the
/// result equivalent as described above. Returns every discrepancy as a
/// violation with oracle "opt_equivalence"; empty means the proof went
/// through.
[[nodiscard]] std::vector<Violation> check_optimization_equivalence(
    const core::ReactionNetwork& network,
    std::span<const core::SpeciesId> roots,
    const OptEquivalenceOptions& options = {});

}  // namespace mrsc::verify
