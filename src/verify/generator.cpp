#include "verify/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "logic/netlist.hpp"
#include "sync/dual_rail.hpp"
#include "util/rng.hpp"

namespace mrsc::verify {
namespace {

using core::RateCategory;
using core::ReactionNetwork;
using core::SpeciesId;
using core::Term;
using util::Rng;

// Distinct RNG sub-streams per kind so the same seed yields unrelated cases.
constexpr std::uint64_t kSaltRaw = 0x7261;
constexpr std::uint64_t kSaltSync = 0x7379;
constexpr std::uint64_t kSaltDual = 0x6472;
constexpr std::uint64_t kSaltFsm = 0x6673;
constexpr std::uint64_t kSaltCounter = 0x6374;

// --- reference-model expression program -------------------------------------
//
// The random DAG is recorded twice: once as CircuitBuilder calls (which lower
// to reactions) and once as this tiny expression program evaluated on plain
// doubles. Keeping the two in lockstep is what makes the functional oracle an
// *exact* reference, not a re-derivation that could share a bug with the
// compiler.

struct Node {
  enum class Kind : std::uint8_t {
    kInput,     // the cycle's input sample
    kRead,      // register value at the start of the cycle
    kAdd,       // a + b
    kSub,       // a - b (dual-rail only)
    kNeg,       // -a   (dual-rail only)
    kMin,       // min(a, b) (unsigned only)
    kScale,     // a * num / 2^halv
  };
  Kind kind = Kind::kInput;
  int a = -1;
  int b = -1;
  int reg = -1;
  std::uint32_t num = 1;
  std::uint32_t halv = 0;
};

class RefProgram {
 public:
  int push(Node node) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  /// Evaluates node `id` for one cycle with input `x` and register values
  /// `state` (values at the start of the cycle).
  [[nodiscard]] double eval(int id, double x,
                            const std::vector<double>& state) const {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    switch (n.kind) {
      case Node::Kind::kInput:
        return x;
      case Node::Kind::kRead:
        return state[static_cast<std::size_t>(n.reg)];
      case Node::Kind::kAdd:
        return eval(n.a, x, state) + eval(n.b, x, state);
      case Node::Kind::kSub:
        return eval(n.a, x, state) - eval(n.b, x, state);
      case Node::Kind::kNeg:
        return -eval(n.a, x, state);
      case Node::Kind::kMin:
        return std::min(eval(n.a, x, state), eval(n.b, x, state));
      case Node::Kind::kScale:
        return eval(n.a, x, state) * static_cast<double>(n.num) /
               static_cast<double>(1u << n.halv);
    }
    return 0.0;
  }

 private:
  std::vector<Node> nodes_;
};

/// Runs the reference model: one warmup cycle on zero input (matching the
/// harness default warmup_edges = 1), then one output per sample.
std::vector<double> evaluate_reference(const RefProgram& prog,
                                       std::vector<double> state,
                                       const std::vector<int>& write_nodes,
                                       int out_node,
                                       const std::vector<double>& samples) {
  auto advance = [&](double x) {
    std::vector<double> next(write_nodes.size());
    for (std::size_t i = 0; i < write_nodes.size(); ++i) {
      next[i] = prog.eval(write_nodes[i], x, state);
    }
    state = std::move(next);
  };
  advance(0.0);  // warmup cycle
  std::vector<double> expected;
  expected.reserve(samples.size());
  for (const double x : samples) {
    expected.push_back(prog.eval(out_node, x, state));
    advance(x);
  }
  return expected;
}

// Safe dyadic scale factors (<= 1.5 so feedback cannot blow up: every
// register write is additionally damped by 1/2 below).
struct ScalePick {
  std::uint32_t num;
  std::uint32_t halv;
};
constexpr ScalePick kScalePicks[] = {{1, 1}, {1, 2}, {3, 2}, {3, 1}};

// --- unsigned synchronous circuits ------------------------------------------

SyncCase make_sync_case(std::uint64_t seed, const GeneratorOptions& opt) {
  Rng rng(Rng::stream_seed(seed, kSaltSync));
  SyncCase c;
  sync::CircuitBuilder b;
  RefProgram prog;

  struct Entry {
    sync::Sig sig;
    int node;
  };
  std::vector<Entry> pool;
  auto take = [&](std::size_t idx) {
    Entry e = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    return e;
  };
  auto take_random = [&] { return take(rng.uniform_below(pool.size())); };

  pool.push_back({b.input("x"), prog.push({.kind = Node::Kind::kInput})});

  const std::size_t n_regs =
      1 + rng.uniform_below(std::max<std::size_t>(opt.max_registers, 1));
  std::vector<sync::Reg> regs;
  std::vector<double> initials;
  for (std::size_t i = 0; i < n_regs; ++i) {
    const double init = rng.uniform(0.0, 1.0);
    regs.push_back(b.add_register("r" + std::to_string(i), init));
    initials.push_back(init);
    pool.push_back(
        {b.read(regs[i]),
         prog.push({.kind = Node::Kind::kRead, .reg = static_cast<int>(i)})});
  }

  const std::size_t n_ops = 1 + rng.uniform_below(std::max<std::size_t>(opt.max_ops, 1));
  for (std::size_t k = 0; k < n_ops; ++k) {
    std::uint64_t choice = rng.uniform_below(4);
    if (pool.size() < 2 && choice <= 1) choice = 3;
    switch (choice) {
      case 0: {  // add
        Entry ea = take_random();
        Entry eb = take_random();
        pool.push_back({b.add(ea.sig, eb.sig),
                        prog.push({.kind = Node::Kind::kAdd, .a = ea.node,
                                   .b = eb.node})});
        break;
      }
      case 1: {  // min
        Entry ea = take_random();
        Entry eb = take_random();
        pool.push_back({b.min(ea.sig, eb.sig),
                        prog.push({.kind = Node::Kind::kMin, .a = ea.node,
                                   .b = eb.node})});
        break;
      }
      case 2: {  // scale
        Entry e = take_random();
        const ScalePick pick = kScalePicks[rng.uniform_below(4)];
        pool.push_back({b.scale(e.sig, pick.num, pick.halv),
                        prog.push({.kind = Node::Kind::kScale, .a = e.node,
                                   .num = pick.num, .halv = pick.halv})});
        break;
      }
      default: {  // fanout (copies share the reference node: same value)
        Entry e = take_random();
        auto copies = b.fanout(e.sig, 2);
        pool.push_back({copies[0], e.node});
        pool.push_back({copies[1], e.node});
        break;
      }
    }
  }

  // Every register gets exactly one write and there is one output; grow the
  // pool by fanout if the ops left it too small.
  while (pool.size() < n_regs + 1) {
    Entry e = take_random();
    auto copies = b.fanout(e.sig, 2);
    pool.push_back({copies[0], e.node});
    pool.push_back({copies[1], e.node});
  }

  // Register writes are damped by 1/2 so feedback loops are contractive and
  // trajectories stay bounded over any number of cycles.
  std::vector<int> write_nodes(n_regs);
  for (std::size_t i = 0; i < n_regs; ++i) {
    Entry e = take_random();
    b.write(regs[i], b.scale(e.sig, 1, 1));
    write_nodes[i] =
        prog.push({.kind = Node::Kind::kScale, .a = e.node, .num = 1, .halv = 1});
  }

  Entry out = take_random();
  b.output("y", out.sig);
  for (const Entry& e : pool) b.discard(e.sig);

  c.circuit = b.compile(c.network, {}, "f");
  c.in_port = "x";
  c.out_port = "y";
  c.samples.resize(opt.cycles);
  for (double& s : c.samples) s = rng.uniform(0.0, 1.2);
  c.expected =
      evaluate_reference(prog, initials, write_nodes, out.node, c.samples);
  return c;
}

// --- dual-rail (signed) circuits --------------------------------------------

DualRailCase make_dual_rail_case(std::uint64_t seed,
                                 const GeneratorOptions& opt) {
  Rng rng(Rng::stream_seed(seed, kSaltDual));
  DualRailCase c;
  sync::CircuitBuilder base;
  sync::DualRailBuilder b(base);
  RefProgram prog;

  struct Entry {
    sync::DSig sig;
    int node;
  };
  std::vector<Entry> pool;
  auto take = [&](std::size_t idx) {
    Entry e = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    return e;
  };
  auto take_random = [&] { return take(rng.uniform_below(pool.size())); };

  pool.push_back({b.input("x"), prog.push({.kind = Node::Kind::kInput})});

  const std::size_t n_regs =
      1 + rng.uniform_below(std::max<std::size_t>(opt.max_registers, 1));
  std::vector<sync::DReg> regs;
  std::vector<std::string> reg_names;
  std::vector<double> initials;
  for (std::size_t i = 0; i < n_regs; ++i) {
    const double init = rng.uniform(-0.8, 0.8);
    const std::string name = "r" + std::to_string(i);
    regs.push_back(b.add_register(name, init));
    reg_names.push_back(name);
    initials.push_back(init);
    pool.push_back(
        {b.read(regs[i]),
         prog.push({.kind = Node::Kind::kRead, .reg = static_cast<int>(i)})});
  }

  const std::size_t n_ops = 1 + rng.uniform_below(std::max<std::size_t>(opt.max_ops, 1));
  for (std::size_t k = 0; k < n_ops; ++k) {
    std::uint64_t choice = rng.uniform_below(5);
    if (pool.size() < 2 && choice <= 1) choice = 2 + rng.uniform_below(3);
    switch (choice) {
      case 0: {  // add
        Entry ea = take_random();
        Entry eb = take_random();
        pool.push_back({b.add(ea.sig, eb.sig),
                        prog.push({.kind = Node::Kind::kAdd, .a = ea.node,
                                   .b = eb.node})});
        break;
      }
      case 1: {  // subtract
        Entry ea = take_random();
        Entry eb = take_random();
        pool.push_back({b.subtract(ea.sig, eb.sig),
                        prog.push({.kind = Node::Kind::kSub, .a = ea.node,
                                   .b = eb.node})});
        break;
      }
      case 2: {  // negate
        Entry e = take_random();
        pool.push_back({b.negate(e.sig),
                        prog.push({.kind = Node::Kind::kNeg, .a = e.node})});
        break;
      }
      case 3: {  // scale
        Entry e = take_random();
        const ScalePick pick = kScalePicks[rng.uniform_below(4)];
        pool.push_back({b.scale(e.sig, pick.num, pick.halv),
                        prog.push({.kind = Node::Kind::kScale, .a = e.node,
                                   .num = pick.num, .halv = pick.halv})});
        break;
      }
      default: {  // fanout
        Entry e = take_random();
        auto copies = b.fanout(e.sig, 2);
        pool.push_back({copies[0], e.node});
        pool.push_back({copies[1], e.node});
        break;
      }
    }
  }

  while (pool.size() < n_regs + 1) {
    Entry e = take_random();
    auto copies = b.fanout(e.sig, 2);
    pool.push_back({copies[0], e.node});
    pool.push_back({copies[1], e.node});
  }

  std::vector<int> write_nodes(n_regs);
  for (std::size_t i = 0; i < n_regs; ++i) {
    Entry e = take_random();
    b.write(regs[i], b.scale(e.sig, 1, 1));
    write_nodes[i] =
        prog.push({.kind = Node::Kind::kScale, .a = e.node, .num = 1, .halv = 1});
  }

  Entry out = take_random();
  b.output("y", out.sig);
  for (const Entry& e : pool) b.discard(e.sig);

  c.circuit = base.compile(c.network, {}, "f");
  for (const std::string& name : reg_names) {
    c.rail_pairs.emplace_back(c.circuit.state(sync::rail_pos(name)),
                              c.circuit.state(sync::rail_neg(name)));
  }
  c.samples.resize(opt.cycles);
  for (double& s : c.samples) s = rng.uniform(-1.0, 1.0);
  c.expected =
      evaluate_reference(prog, initials, write_nodes, out.node, c.samples);
  return c;
}

// --- random FSMs -------------------------------------------------------------

FsmCase make_fsm_case(std::uint64_t seed, const GeneratorOptions& opt) {
  Rng rng(Rng::stream_seed(seed, kSaltFsm));
  FsmCase c;
  fsm::FsmSpec spec;
  spec.num_states = 2 + rng.uniform_below(3);  // 2..4
  spec.num_inputs = 2;
  spec.num_outputs = 2;
  spec.initial_state = rng.uniform_below(spec.num_states);
  spec.next_state.assign(spec.num_states,
                         std::vector<std::size_t>(spec.num_inputs, 0));
  spec.output.assign(spec.num_states,
                     std::vector<std::size_t>(spec.num_inputs, 0));
  for (std::size_t s = 0; s < spec.num_states; ++s) {
    for (std::size_t a = 0; a < spec.num_inputs; ++a) {
      spec.next_state[s][a] = rng.uniform_below(spec.num_states);
      const std::uint64_t out = rng.uniform_below(3);
      spec.output[s][a] = out == 2 ? fsm::kNoOutput : out;
    }
  }
  spec.validate();
  c.spec = spec;
  c.handles = fsm::build_fsm(c.network, spec);
  c.inputs.resize(opt.cycles + 2);
  for (std::size_t& a : c.inputs) a = rng.uniform_below(spec.num_inputs);
  return c;
}

// --- random-width counters ---------------------------------------------------

CounterCase make_counter_case(std::uint64_t seed, const GeneratorOptions& opt) {
  Rng rng(Rng::stream_seed(seed, kSaltCounter));
  CounterCase c;
  c.spec.bits = 2 + rng.uniform_below(3);  // 2..4
  c.spec.initial_value = rng.uniform_below(1ULL << c.spec.bits);
  c.handles = dsp::build_counter(c.network, c.spec);
  c.increments = opt.cycles + 2;
  return c;
}

// --- raw mass-action networks ------------------------------------------------

RawCase make_raw_case(std::uint64_t seed, const GeneratorOptions& /*opt*/) {
  Rng rng(Rng::stream_seed(seed, kSaltRaw));
  RawCase c;
  c.closed = rng.uniform_below(2) == 0;

  const std::size_t n_species = 3 + rng.uniform_below(4);  // 3..6
  std::vector<SpeciesId> ids;
  ids.reserve(n_species);
  for (std::size_t i = 0; i < n_species; ++i) {
    ids.push_back(c.network.add_species("S" + std::to_string(i),
                                        rng.uniform(0.2, 2.0)));
  }
  auto pick = [&] { return ids[rng.uniform_below(ids.size())]; };
  auto pick_distinct = [&](SpeciesId other) {
    SpeciesId s = pick();
    while (s == other && ids.size() > 1) s = pick();
    return s;
  };

  const std::size_t n_reactions = 4 + rng.uniform_below(5);  // 4..8
  for (std::size_t r = 0; r < n_reactions; ++r) {
    const double rate = std::exp(rng.uniform(std::log(0.1), std::log(3.0)));
    // Closed networks only use k -> k shapes with unit stoichiometry, so the
    // total concentration is conserved exactly.
    const std::uint64_t shape =
        c.closed ? rng.uniform_below(2) : rng.uniform_below(4);
    std::vector<Term> reactants;
    std::vector<Term> products;
    switch (shape) {
      case 0: {  // A -> B
        const SpeciesId a = pick();
        reactants = {{a, 1}};
        products = {{pick_distinct(a), 1}};
        break;
      }
      case 1: {  // A + B -> C + D
        const SpeciesId a = pick();
        const SpeciesId b = pick_distinct(a);
        const SpeciesId p = pick();
        reactants = {{a, 1}, {b, 1}};
        products = {{p, 1}, {pick_distinct(p), 1}};
        break;
      }
      case 2: {  // A -> B + C (open only)
        const SpeciesId a = pick();
        const SpeciesId p = pick();
        reactants = {{a, 1}};
        products = {{p, 1}, {pick_distinct(p), 1}};
        break;
      }
      default: {  // A + B -> C (open only)
        const SpeciesId a = pick();
        reactants = {{a, 1}, {pick_distinct(a), 1}};
        products = {{pick(), 1}};
        break;
      }
    }
    c.network.add(std::move(reactants), std::move(products),
                  RateCategory::kCustom, rate);
  }
  return c;
}

}  // namespace

const char* to_string(CaseKind kind) {
  switch (kind) {
    case CaseKind::kRawNetwork:
      return "raw";
    case CaseKind::kSyncCircuit:
      return "sync";
    case CaseKind::kDualRailCircuit:
      return "dual";
    case CaseKind::kFsm:
      return "fsm";
    case CaseKind::kCounter:
      return "counter";
  }
  return "?";
}

std::vector<CaseKind> parse_kinds(const std::string& csv) {
  const std::vector<CaseKind> all = {
      CaseKind::kRawNetwork, CaseKind::kSyncCircuit,
      CaseKind::kDualRailCircuit, CaseKind::kFsm, CaseKind::kCounter};
  if (csv.empty()) return all;
  std::vector<CaseKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string name =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    bool found = false;
    for (const CaseKind kind : all) {
      if (name == to_string(kind)) {
        kinds.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown case kind: '" + name +
                                  "' (expected raw,sync,dual,fsm,counter)");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return kinds;
}

const core::ReactionNetwork& GeneratedCase::network() const {
  return std::visit(
      [](const auto& c) -> const core::ReactionNetwork& { return c.network; },
      payload);
}

GeneratedCase generate_case(CaseKind kind, std::uint64_t seed,
                            const GeneratorOptions& options) {
  GeneratedCase result;
  result.kind = kind;
  result.seed = seed;
  switch (kind) {
    case CaseKind::kRawNetwork:
      result.payload = make_raw_case(seed, options);
      break;
    case CaseKind::kSyncCircuit:
      result.payload = make_sync_case(seed, options);
      break;
    case CaseKind::kDualRailCircuit:
      result.payload = make_dual_rail_case(seed, options);
      break;
    case CaseKind::kFsm:
      result.payload = make_fsm_case(seed, options);
      break;
    case CaseKind::kCounter:
      result.payload = make_counter_case(seed, options);
      break;
  }
  return result;
}

}  // namespace mrsc::verify
