#include "verify/golden.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/harness.hpp"
#include "core/network.hpp"
#include "dsp/counter.hpp"
#include "dsp/filters.hpp"
#include "fsm/fsm.hpp"

namespace mrsc::verify {
namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

GoldenTrace counter_trace(sim::EngineKind engine) {
  // Mirrors examples/counter.cpp: 3-bit counter starting at 2, 14 increments.
  core::ReactionNetwork net;
  dsp::CounterSpec spec;
  spec.bits = 3;
  spec.initial_value = 2;
  const dsp::CounterHandles counter = dsp::build_counter(net, spec);

  constexpr std::size_t kIncrements = 14;
  analysis::ClockedRunOptions options;
  options.ode.engine.kind = engine;
  options.ode.t_end =
      analysis::suggest_t_end(spec.clock, net.rate_policy(), kIncrements);
  const auto run = analysis::run_counter(net, counter, kIncrements, options);

  GoldenTrace trace;
  trace.name = "counter";
  trace.tolerance = 0.0;  // decoded integer values: exact
  trace.columns = {"value"};
  for (const std::uint64_t v : run.values) {
    trace.rows.push_back({static_cast<double>(v)});
  }
  return trace;
}

GoldenTrace moving_average_trace(sim::EngineKind engine) {
  // Mirrors examples/moving_average.cpp: y[n] = (x[n] + x[n-1]) / 2.
  auto design = dsp::make_moving_average();
  const std::vector<double> samples = {1.0, 1.0, 2.0, 0.0, 0.5, 1.5,
                                       1.5, 0.0, 0.0, 1.0, 1.0, 1.0};
  analysis::ClockedRunOptions options;
  options.ode.engine.kind = engine;
  options.ode.t_end = analysis::suggest_t_end(
      {}, design.network->rate_policy(), samples.size());
  const auto run = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", samples, "y", options);

  GoldenTrace trace;
  trace.name = "moving_average";
  // Continuous outputs: 1e-5 is far above the integrator tolerance (rel_tol
  // 1e-6) and cross-platform libm jitter, far below the molecular accuracy
  // (~1e-2) whose regressions this file exists to catch.
  trace.tolerance = 1e-5;
  trace.columns = {"x", "y"};
  for (std::size_t n = 0; n < samples.size(); ++n) {
    trace.rows.push_back({samples[n], run.outputs[n]});
  }
  return trace;
}

GoldenTrace sequence_detector_trace(sim::EngineKind engine) {
  // Mirrors examples/sequence_detector.cpp: the "101" KMP automaton.
  const fsm::FsmSpec spec = fsm::make_sequence_detector("101");
  core::ReactionNetwork net;
  const fsm::FsmHandles machine = fsm::build_fsm(net, spec);
  const std::vector<std::size_t> bits = {1, 0, 1, 0, 1, 1, 0, 1, 1, 0, 1};
  analysis::ClockedRunOptions options;
  options.ode.engine.kind = engine;
  options.ode.t_end =
      analysis::suggest_t_end(spec.clock, net.rate_policy(), bits.size());
  const auto run = analysis::run_fsm(net, machine, bits, options);

  GoldenTrace trace;
  trace.name = "sequence_detector";
  trace.tolerance = 0.0;  // decoded states / output symbols: exact
  trace.columns = {"bit", "state", "output"};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double out = run.outputs[i] == fsm::kNoOutput
                           ? -1.0
                           : static_cast<double>(run.outputs[i]);
    trace.rows.push_back({static_cast<double>(bits[i]),
                          static_cast<double>(run.states[i]), out});
  }
  return trace;
}

}  // namespace

std::string serialize_golden(const GoldenTrace& trace) {
  std::ostringstream out;
  out << "golden v1\n";
  out << "name " << trace.name << "\n";
  out << "tolerance " << format_double(trace.tolerance) << "\n";
  out << "columns";
  for (const std::string& c : trace.columns) out << ' ' << c;
  out << "\n";
  for (const auto& row : trace.rows) {
    out << "row";
    for (const double v : row) out << ' ' << format_double(v);
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

GoldenTrace parse_golden(std::string_view text) {
  GoldenTrace trace;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  auto fail = [&](const std::string& what) {
    throw std::runtime_error("golden parse error at line " +
                             std::to_string(line_no) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (!saw_header) {
      std::string version;
      fields >> version;
      if (tag != "golden" || version != "v1") fail("expected 'golden v1'");
      saw_header = true;
      continue;
    }
    if (tag == "name") {
      fields >> trace.name;
    } else if (tag == "tolerance") {
      if (!(fields >> trace.tolerance)) fail("bad tolerance");
    } else if (tag == "columns") {
      std::string col;
      while (fields >> col) trace.columns.push_back(col);
      if (trace.columns.empty()) fail("no columns");
    } else if (tag == "row") {
      std::vector<double> row;
      double v = 0.0;
      while (fields >> v) row.push_back(v);
      if (row.size() != trace.columns.size()) {
        fail("row has " + std::to_string(row.size()) + " values, expected " +
             std::to_string(trace.columns.size()));
      }
      trace.rows.push_back(std::move(row));
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      fail("unknown tag '" + tag + "'");
    }
  }
  if (!saw_header) fail("missing 'golden v1' header");
  if (!saw_end) fail("missing 'end'");
  if (trace.name.empty()) fail("missing name");
  return trace;
}

void save_golden(const GoldenTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write golden file: " + path);
  }
  out << serialize_golden(trace);
}

GoldenTrace load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read golden file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_golden(text.str());
}

std::optional<std::string> compare_golden(
    const GoldenTrace& golden, const std::vector<std::vector<double>>& rows) {
  if (rows.size() != golden.rows.size()) {
    return "row count " + std::to_string(rows.size()) + " != golden " +
           std::to_string(golden.rows.size());
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != golden.columns.size()) {
      return "row " + std::to_string(r) + " has " +
             std::to_string(rows[r].size()) + " values, expected " +
             std::to_string(golden.columns.size());
    }
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (std::abs(rows[r][c] - golden.rows[r][c]) > golden.tolerance) {
        return golden.name + " row " + std::to_string(r) + " column '" +
               golden.columns[c] + "': " + format_double(rows[r][c]) +
               " vs golden " + format_double(golden.rows[r][c]) +
               " (tolerance " + format_double(golden.tolerance) + ")";
      }
    }
  }
  return std::nullopt;
}

std::vector<GoldenTrace> compute_reference_traces(sim::EngineKind engine) {
  return {counter_trace(engine), moving_average_trace(engine),
          sequence_detector_trace(engine)};
}

std::vector<GoldenTrace> compute_reference_traces() {
  return compute_reference_traces(sim::EngineKind::kCompiled);
}

}  // namespace mrsc::verify
