#include "verify/fault.hpp"

#include <stdexcept>
#include <vector>

namespace mrsc::verify::testing {

core::ReactionNetwork with_stoichiometry_fault(
    const core::ReactionNetwork& network, core::ReactionId target) {
  if (target.index() >= network.reaction_count()) {
    throw std::out_of_range("with_stoichiometry_fault: bad reaction id");
  }
  core::ReactionNetwork out;
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    const core::SpeciesId id(static_cast<std::uint32_t>(i));
    out.add_species(network.species_name(id), network.initial(id));
  }
  out.set_rate_policy(network.rate_policy());
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    const core::Reaction& reaction =
        network.reaction(core::ReactionId(static_cast<std::uint32_t>(r)));
    if (r != target.index()) {
      out.add_reaction(reaction);
      continue;
    }
    std::vector<core::Term> products = reaction.products();
    if (products.empty() && reaction.reactants().empty()) {
      throw std::invalid_argument(
          "with_stoichiometry_fault: reaction has no terms to corrupt");
    }
    if (products.empty()) {
      products.push_back({reaction.reactants().front().species, 1});
    } else {
      products.front().stoich += 1;
    }
    core::Reaction faulty(reaction.reactants(), std::move(products),
                          reaction.category(), reaction.custom_rate(),
                          reaction.label());
    faulty.set_rate_multiplier(reaction.rate_multiplier());
    out.add_reaction(std::move(faulty));
  }
  return out;
}

core::ReactionId find_reaction_by_label(const core::ReactionNetwork& network,
                                        const std::string& label) {
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    const core::ReactionId id(static_cast<std::uint32_t>(r));
    if (network.reaction(id).label() == label) return id;
  }
  throw std::invalid_argument("find_reaction_by_label: no reaction labelled '" +
                              label + "'");
}

}  // namespace mrsc::verify::testing
