// Static-vs-dynamic cross-oracle.
//
// The static analyzer (lint/) and the dynamic oracles (oracles.hpp) claim
// the same territory from opposite sides: one proves structural properties
// of the network, the other observes trajectories. This oracle holds them
// to each other on every clocked generated case:
//
//   clean leg    the generated design — which the dynamic oracles certify
//                elsewhere in check_case — must lint without errors. A lint
//                error on a dynamically clean design is a static false
//                positive, and a finding here.
//   fault leg    a copy corrupted with the canonical stoichiometry fault
//                (first product of a catalytic reaction duplicated, the
//                same defect stress::with_stoichiometry_fault models) must
//                be flagged by the analyzer with LINT-RACE-02 — *before*
//                any simulation. A silent pass is a static false negative.
//
// Raw random networks are exempt: they legitimately contain autocatalytic
// shapes (A -> 2A) that the analyzer rightly rejects for compiled designs.
#pragma once

#include <vector>

#include "verify/generator.hpp"
#include "verify/oracles.hpp"

namespace mrsc::verify {

/// Violations use oracle name "lint_cross". Returns empty for raw cases.
[[nodiscard]] std::vector<Violation> check_lint_cross(const GeneratedCase& c);

}  // namespace mrsc::verify
