// Failing-network minimization (delta debugging over reactions).
//
// When an oracle flags a generated network, the raw repro is dozens of
// reactions of compiled clock + datapath — unreadable. The shrinker removes
// reactions (ddmin-style chunks, then one at a time) while the violation
// keeps reproducing, then drops species no remaining reaction touches. The
// predicate re-runs the *same* simulation + oracle on each candidate, so the
// final network is a minimal repro by construction.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/network.hpp"

namespace mrsc::verify {

/// Returns true when the candidate network still exhibits the violation.
/// Predicates should treat "simulation refuses to run" (thrown exceptions)
/// as NOT violating; `shrink_network` also catches and treats throws as
/// non-reproducing, so removing a load-bearing reaction can never be
/// mistaken for keeping the bug.
using ViolationPredicate =
    std::function<bool(const core::ReactionNetwork&)>;

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (each one is a simulation).
  std::size_t max_evaluations = 200;
  /// Also drop species untouched by any remaining reaction (re-verifying the
  /// predicate; species ids are remapped, so this is skipped automatically
  /// when the predicate relies on fixed species handles and stops failing).
  bool prune_species = true;
};

struct ShrinkResult {
  core::ReactionNetwork network;  ///< the minimized failing network
  std::size_t original_reactions = 0;
  std::size_t final_reactions = 0;
  std::size_t evaluations = 0;  ///< predicate runs spent
  bool reproduced = false;      ///< false: the input never failed (returned
                                ///< unchanged)
};

/// Copies `network` keeping only reactions whose index is flagged in `keep`
/// (species table and ids preserved verbatim).
[[nodiscard]] core::ReactionNetwork subnetwork(
    const core::ReactionNetwork& network, const std::vector<bool>& keep);

/// Copies `network` dropping species that no reaction touches and that have
/// zero initial value. Species ids are compacted (handles into the original
/// network become invalid).
[[nodiscard]] core::ReactionNetwork prune_unreferenced_species(
    const core::ReactionNetwork& network);

/// Minimizes `network` under `violates`.
[[nodiscard]] ShrinkResult shrink_network(const core::ReactionNetwork& network,
                                          const ViolationPredicate& violates,
                                          const ShrinkOptions& options = {});

}  // namespace mrsc::verify
