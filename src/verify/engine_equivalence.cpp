#include "verify/engine_equivalence.hpp"

#include <cmath>
#include <cstdio>
#include <string>

#include "sim/ode.hpp"
#include "sim/ssa.hpp"

namespace mrsc::verify {
namespace {

constexpr const char* kOracle = "engine_equivalence";

std::string format(const char* fmt, auto... args) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  return buffer;
}

/// Exact comparison of two trajectories: same sample times, same values,
/// bit for bit (0.0 == -0.0 is acceptable equality here; the engines do not
/// produce NaNs on the clamped state).
bool trajectories_identical(const sim::Trajectory& a, const sim::Trajectory& b,
                            std::string& detail) {
  if (a.sample_count() != b.sample_count()) {
    detail = format("sample counts differ: %zu vs %zu", a.sample_count(),
                    b.sample_count());
    return false;
  }
  for (std::size_t k = 0; k < a.sample_count(); ++k) {
    if (a.time(k) != b.time(k)) {
      detail = format("sample %zu time differs: %.17g vs %.17g", k, a.time(k),
                      b.time(k));
      return false;
    }
    const auto sa = a.state(k);
    const auto sb = b.state(k);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i] != sb[i]) {
        detail = format("sample %zu species %zu differs: %.17g vs %.17g", k,
                        i, sa[i], sb[i]);
        return false;
      }
    }
  }
  return true;
}

void check_ssa_leg(const core::ReactionNetwork& network,
                   const EngineEquivalenceOptions& options,
                   sim::SsaMethod method, const char* leg,
                   std::vector<Violation>& out) {
  sim::SsaOptions ssa;
  ssa.t_end = options.t_end;
  ssa.record_interval = options.record_interval;
  ssa.omega = options.omega;
  ssa.seed = options.seed;
  ssa.max_events = options.max_events;
  ssa.method = method;

  ssa.engine.kind = sim::EngineKind::kLegacy;
  const sim::SsaResult legacy = sim::simulate_ssa(network, ssa);
  ssa.engine.kind = sim::EngineKind::kCompiled;
  const sim::SsaResult compiled = sim::simulate_ssa(network, ssa);

  if (legacy.events != compiled.events) {
    out.push_back({kOracle, format("%s: event counts diverge: %llu vs %llu",
                                   leg,
                                   static_cast<unsigned long long>(
                                       legacy.events),
                                   static_cast<unsigned long long>(
                                       compiled.events))});
    return;
  }
  if (legacy.end_time != compiled.end_time) {
    out.push_back({kOracle,
                   format("%s: end times diverge: %.17g vs %.17g", leg,
                          legacy.end_time, compiled.end_time)});
    return;
  }
  if (legacy.final_counts != compiled.final_counts) {
    out.push_back({kOracle, format("%s: final counts diverge", leg)});
    return;
  }
  std::string detail;
  if (!trajectories_identical(legacy.trajectory, compiled.trajectory,
                              detail)) {
    out.push_back({kOracle, format("%s: %s", leg, detail.c_str())});
  }
}

void check_rk4_leg(const core::ReactionNetwork& network,
                   const EngineEquivalenceOptions& options,
                   std::vector<Violation>& out) {
  sim::OdeOptions ode;
  ode.method = sim::OdeMethod::kRk4Fixed;
  ode.t_end = options.t_end;
  ode.record_interval = options.record_interval;

  ode.engine.kind = sim::EngineKind::kLegacy;
  const sim::OdeResult legacy = sim::simulate_ode(network, ode);
  ode.engine.kind = sim::EngineKind::kCompiled;
  const sim::OdeResult compiled = sim::simulate_ode(network, ode);

  if (legacy.steps_accepted != compiled.steps_accepted) {
    out.push_back({kOracle,
                   format("rk4: step counts diverge: %zu vs %zu",
                          legacy.steps_accepted, compiled.steps_accepted)});
    return;
  }
  std::string detail;
  if (!trajectories_identical(legacy.trajectory, compiled.trajectory,
                              detail)) {
    out.push_back({kOracle, format("rk4: %s", detail.c_str())});
  }
}

void check_adaptive_leg(const core::ReactionNetwork& network,
                        const EngineEquivalenceOptions& options,
                        std::vector<Violation>& out) {
  sim::OdeOptions ode;
  ode.method = sim::OdeMethod::kDormandPrince45;
  ode.t_end = options.t_end;
  ode.record_interval = options.record_interval;

  ode.engine.kind = sim::EngineKind::kLegacy;
  const sim::OdeResult legacy = sim::simulate_ode(network, ode);
  ode.engine.kind = sim::EngineKind::kCompiled;
  const sim::OdeResult compiled = sim::simulate_ode(network, ode);

  if (legacy.trajectory.sample_count() != compiled.trajectory.sample_count()) {
    out.push_back({kOracle,
                   format("dp45: sample counts diverge: %zu vs %zu "
                          "(step controllers disagreed)",
                          legacy.trajectory.sample_count(),
                          compiled.trajectory.sample_count())});
    return;
  }
  double worst = 0.0;
  double worst_t = 0.0;
  for (std::size_t k = 0; k < legacy.trajectory.sample_count(); ++k) {
    const auto sa = legacy.trajectory.state(k);
    const auto sb = compiled.trajectory.state(k);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      const double gap = std::abs(sa[i] - sb[i]);
      if (gap > worst) {
        worst = gap;
        worst_t = legacy.trajectory.time(k);
      }
    }
  }
  if (worst > options.adaptive_tol) {
    out.push_back({kOracle,
                   format("dp45: engines diverge by %.3e at t=%.3f "
                          "(band %.1e)",
                          worst, worst_t, options.adaptive_tol)});
  }
}

}  // namespace

std::vector<Violation> check_engine_equivalence(
    const core::ReactionNetwork& network,
    const EngineEquivalenceOptions& options) {
  std::vector<Violation> out;
  check_ssa_leg(network, options, sim::SsaMethod::kDirect, "ssa-direct", out);
  check_ssa_leg(network, options, sim::SsaMethod::kNextReaction, "ssa-nrm",
                out);
  check_rk4_leg(network, options, out);
  if (options.adaptive) check_adaptive_leg(network, options, out);
  return out;
}

}  // namespace mrsc::verify
