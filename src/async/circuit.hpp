// Self-timed (clockless) pipelines with computation.
//
// The companion paper's full scope is not just value transfer: "we can use
// delay elements together with computational constructs to implement general
// circuit functions". This compiler is the asynchronous counterpart of
// `sync::CircuitBuilder`: the same dataflow IR (registers, input/output
// ports, combinational ops), but synchronized by the *global absence
// indicators* r/g/b instead of a clock.
//
// Lowering:
//  * Every register i is a color triple (R_i, G_i, B_i), exactly like the
//    chain's delay elements, with the full feedback-sharpened red-to-green
//    and green-to-blue transfers gated by the shared indicators b and r.
//  * The combinational pass happens on the blue-to-red phase: each register
//    B_i (and each input port, a blue-colored species) is released into its
//    wire by a reaction catalyzed by the built-in heartbeat's red species
//    (`hb_R + B_i -> hb_R + wire`); fast un-gated ops propagate values
//    through the dataflow graph; each path terminates in the R_j of the
//    register (or the output species, red-colored) it feeds. The heartbeat
//    — a constant token circulating its own triple, with all three hops
//    feedback-sharpened — turns the indicator handshake into a crisp
//    release pulse, and because its own advance is gated by the same
//    indicators, the pulse stretches while data is still in flight.
//  * COMPLETION DETECTION: every wire is registered as a member of the blue
//    color category (it absorbs the indicator b). The next phase
//    (red-to-green) is gated on the absence of *all* blue species —
//    including in-flight wires — so computation must finish before the
//    pipeline advances. This is the molecular form of asynchronous-logic
//    completion detection, and it is what a clock can never give you: the
//    handshake waits exactly as long as the data needs.
//  * The blue-to-red releases cannot use the plain chain's dimer feedback
//    (it assumes a 1:1 source/destination mapping, which combinational
//    logic breaks); heartbeat catalysis replaces it.
//
// I/O: inputs are injected into blue input-port species and outputs sampled
// from red output species once per handshake cycle; the harness paces itself
// on the rising edge of a register's R species (every register's R fills
// exactly once per cycle).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "sync/circuit.hpp"

namespace mrsc::async {

/// Compiled self-timed circuit handles.
struct CompiledAsyncCircuit {
  /// Input port name -> blue species to inject samples into.
  std::map<std::string, core::SpeciesId> inputs;
  /// Output port name -> red species to sample and clear.
  std::map<std::string, core::SpeciesId> outputs;
  /// Register name -> its red species (fills once per handshake cycle; the
  /// harness uses the first register's R as the pacing signal).
  std::map<std::string, core::SpeciesId> register_red;
  /// The global absence indicators.
  core::SpeciesId ind_r;
  core::SpeciesId ind_g;
  core::SpeciesId ind_b;
  /// The heartbeat register's green species: rises to ~1 exactly once per
  /// handshake cycle regardless of data values. The harness samples (and
  /// clears) outputs on its rising edges — the deposit phase has just ended
  /// and the cleared red output lets the next green-to-blue phase proceed.
  core::SpeciesId pacing;
  /// The heartbeat's blue species: rises once per cycle just before the
  /// release window opens. The harness injects inputs on its rising edges.
  core::SpeciesId pacing_inject;

  [[nodiscard]] core::SpeciesId input(const std::string& name) const;
  [[nodiscard]] core::SpeciesId output(const std::string& name) const;
  [[nodiscard]] core::SpeciesId red_of(const std::string& reg) const;
};

/// Builds self-timed circuits. Reuses the dataflow IR of
/// `sync::CircuitBuilder` (single-use signals, explicit fanout); only
/// `compile_async` differs.
class AsyncCircuitBuilder : public sync::CircuitBuilder {
 public:
  /// Lowers the circuit into `network` using the handshake discipline
  /// described above. The circuit must contain at least one register (the
  /// pipeline paces on it). Lowering goes through the shared
  /// compile::LoweringContext; `options` selects validation and the
  /// optimization level exactly as in sync::CircuitBuilder::compile.
  CompiledAsyncCircuit compile_async(
      core::ReactionNetwork& network, const std::string& prefix = "actk",
      const compile::CompileOptions& options = {}) const;
};

}  // namespace mrsc::async
