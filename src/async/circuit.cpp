#include "async/circuit.hpp"

#include <stdexcept>

namespace mrsc::async {

namespace {
using core::RateCategory;
using core::SpeciesId;
using core::Term;
}  // namespace

core::SpeciesId CompiledAsyncCircuit::input(const std::string& name) const {
  const auto it = inputs.find(name);
  if (it == inputs.end()) {
    throw std::out_of_range("CompiledAsyncCircuit: no input '" + name + "'");
  }
  return it->second;
}

core::SpeciesId CompiledAsyncCircuit::output(const std::string& name) const {
  const auto it = outputs.find(name);
  if (it == outputs.end()) {
    throw std::out_of_range("CompiledAsyncCircuit: no output '" + name +
                            "'");
  }
  return it->second;
}

core::SpeciesId CompiledAsyncCircuit::red_of(const std::string& reg) const {
  const auto it = register_red.find(reg);
  if (it == register_red.end()) {
    throw std::out_of_range("CompiledAsyncCircuit: no register '" + reg +
                            "'");
  }
  return it->second;
}

CompiledAsyncCircuit AsyncCircuitBuilder::compile_async(
    core::ReactionNetwork& network, const std::string& prefix) const {
  // --- static checks (same discipline as the synchronous compiler) ---------
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    if (!sig_consumed_[s]) {
      throw std::logic_error(
          "AsyncCircuitBuilder::compile_async: signal #" + std::to_string(s) +
          " is never consumed; use discard() if intentional");
    }
  }
  for (const RegisterDecl& reg : registers_) {
    if (!reg.read_done || !reg.write_done) {
      throw std::logic_error(
          "AsyncCircuitBuilder::compile_async: register '" + reg.name +
          "' must be read and written exactly once");
    }
  }
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kMin) {
      throw std::logic_error(
          "AsyncCircuitBuilder::compile_async: min() leaves residues in its "
          "operand wires, which would block the completion detection; it is "
          "not supported in self-timed circuits");
    }
  }
  if (!register_annihilations_.empty() || !output_annihilations_.empty()) {
    throw std::logic_error(
        "AsyncCircuitBuilder::compile_async: dual-rail normalization is not "
        "supported in self-timed circuits yet");
  }

  CompiledAsyncCircuit compiled;

  // --- species ----------------------------------------------------------------
  std::vector<SpeciesId> wires(sig_count_);
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    wires[s] = network.add_species(prefix + "_w" + std::to_string(s));
  }
  std::vector<SpeciesId> reg_r(registers_.size());
  std::vector<SpeciesId> reg_g(registers_.size());
  std::vector<SpeciesId> reg_b(registers_.size());
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const std::string& name = registers_[i].name;
    reg_r[i] =
        network.add_species(prefix + "_R_" + name, registers_[i].initial);
    reg_g[i] = network.add_species(prefix + "_G_" + name);
    reg_b[i] = network.add_species(prefix + "_B_" + name);
    compiled.register_red.emplace(name, reg_r[i]);
  }
  // Heartbeat register: a constant 1.0 circulating its own triple, so the
  // harness has a data-independent pacing signal.
  const SpeciesId hb_r = network.add_species(prefix + "_R_hb", 1.0);
  const SpeciesId hb_g = network.add_species(prefix + "_G_hb");
  const SpeciesId hb_b = network.add_species(prefix + "_B_hb");
  compiled.register_red.emplace("hb", hb_r);
  compiled.pacing = hb_g;
  compiled.pacing_inject = hb_b;

  // Ports.
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kInput) {
      compiled.inputs.emplace(
          op.name, network.add_species(prefix + "_in_" + op.name));
    }
  }
  for (const Sink& sink : sinks_) {
    if (sink.kind == SinkKind::kOutput) {
      compiled.outputs.emplace(
          sink.name, network.add_species(prefix + "_out_" + sink.name));
    }
  }

  // --- color categories ---------------------------------------------------
  // red: register Rs (incl. heartbeat) and output ports; green: register Gs;
  // blue: register Bs, input ports, and every wire (completion detection).
  std::vector<SpeciesId> red_members;
  std::vector<SpeciesId> green_members;
  std::vector<SpeciesId> blue_members;
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    red_members.push_back(reg_r[i]);
    green_members.push_back(reg_g[i]);
    blue_members.push_back(reg_b[i]);
  }
  red_members.push_back(hb_r);
  green_members.push_back(hb_g);
  blue_members.push_back(hb_b);
  for (const auto& [name, id] : compiled.outputs) red_members.push_back(id);
  for (const auto& [name, id] : compiled.inputs) blue_members.push_back(id);
  for (const SpeciesId wire : wires) blue_members.push_back(wire);

  compiled.ind_r = network.add_species(prefix + "_r");
  compiled.ind_g = network.add_species(prefix + "_g");
  compiled.ind_b = network.add_species(prefix + "_b");
  // Each indicator's generation is slowed relative to the completion speed
  // of the phase it waits for, so a gate never accumulates appreciably while
  // its predecessor phase is still finishing. The blue-to-red phase is the
  // slow one (its releases are seed-only — combinational logic breaks the
  // 1:1 feedback trick), so its gate ind_g runs at half rate and the gate
  // that waits *for* it (ind_b, enabling red-to-green) is slowed the most.
  auto emit_indicator = [&](SpeciesId indicator,
                            const std::vector<SpeciesId>& members,
                            const char* name, double gen_multiplier) {
    const core::ReactionId gen =
        network.add({}, {{indicator, 1}}, RateCategory::kSlow, 0.0,
                    prefix + ".ind." + name + ".gen");
    network.reaction_mutable(gen).set_rate_multiplier(gen_multiplier);
    for (const SpeciesId member : members) {
      network.add({{indicator, 1}, {member, 1}}, {{member, 1}},
                  RateCategory::kFast, 0.0,
                  prefix + ".ind." + name + ".absorb");
    }
  };
  emit_indicator(compiled.ind_r, red_members, "r", 0.5);
  emit_indicator(compiled.ind_g, green_members, "g", 0.5);
  emit_indicator(compiled.ind_b, blue_members, "b", 0.125);

  // --- register-internal phases (feedback-sharpened, per register) ---------
  auto emit_sharpened = [&](SpeciesId from, SpeciesId to, SpeciesId gate,
                            const std::string& tag) {
    network.add({{gate, 1}, {from, 1}}, {{to, 1}}, RateCategory::kSlow, 0.0,
                tag + ".seed");
    const SpeciesId dimer = network.add_species(tag + "_I");
    network.add({{to, 2}}, {{dimer, 1}}, RateCategory::kSlow, 0.0,
                tag + ".dimerize");
    network.add({{dimer, 1}}, {{to, 2}}, RateCategory::kFast, 0.0,
                tag + ".undimerize");
    network.add({{dimer, 1}, {from, 1}}, {{to, 3}}, RateCategory::kFast, 0.0,
                tag + ".feedback");
  };
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const std::string& name = registers_[i].name;
    // red-to-green gated on absence of blue; green-to-blue on absence of red.
    emit_sharpened(reg_r[i], reg_g[i], compiled.ind_b,
                   prefix + "_" + name + "_r2g");
    emit_sharpened(reg_g[i], reg_b[i], compiled.ind_r,
                   prefix + "_" + name + "_g2b");
  }
  emit_sharpened(hb_r, hb_g, compiled.ind_b, prefix + "_hb_r2g");
  emit_sharpened(hb_g, hb_b, compiled.ind_r, prefix + "_hb_g2b");
  // The heartbeat's blue-to-red hop has no ops on its path, so it CAN be
  // feedback-sharpened — and must be: a lingering hb_B residue would leak
  // the next red-to-green phase early and smear the whole oscillation.
  emit_sharpened(hb_b, hb_r, compiled.ind_g, prefix + "_hb_b2r");

  // --- the combinational pass (blue-to-red phase) ---------------------------
  // Releases (indicator-consuming seeds) feed the wires; fast ops flow; fast
  // terminal transfers deposit into register reds / outputs.
  std::size_t scale_counter = 0;
  for (const Op& op : ops_) {
    switch (op.kind) {
      // Releases are catalyzed by the heartbeat's red species. hb_R is high
      // exactly during the release window: its own (feedback-sharpened)
      // blue-to-red hop raises it when the greens empty, and it drains only
      // in the next red-to-green phase — which the global indicator ind_b
      // forbids while any blue species (sources, in-flight wires) remains.
      // So the release pulse automatically *stretches* until the data is
      // through: completion detection drives the catalyst. (Consuming the
      // indicator per unit transferred, as the plain chain's seeds do,
      // starves here: the heartbeat's next phase competes for the same
      // indicator molecules and the transfer tail stalls.)
      case OpKind::kInput: {
        network.add({{hb_r, 1}, {compiled.inputs.at(op.name), 1}},
                    {{hb_r, 1}, {wires[op.results[0]], 1}},
                    RateCategory::kSlow, 0.0,
                    prefix + ".release.in." + op.name);
        break;
      }
      case OpKind::kRead: {
        network.add({{hb_r, 1}, {reg_b[op.reg], 1}},
                    {{hb_r, 1}, {wires[op.results[0]], 1}},
                    RateCategory::kSlow, 0.0,
                    prefix + ".release.reg." + registers_[op.reg].name);
        break;
      }
      case OpKind::kAdd: {
        network.add({{wires[op.operands[0]], 1}},
                    {{wires[op.results[0]], 1}}, RateCategory::kFast, 0.0,
                    prefix + ".op.add");
        network.add({{wires[op.operands[1]], 1}},
                    {{wires[op.results[0]], 1}}, RateCategory::kFast, 0.0,
                    prefix + ".op.add");
        break;
      }
      case OpKind::kFanout: {
        std::vector<Term> products;
        for (const std::uint32_t r : op.results) {
          products.push_back(Term{wires[r], 1});
        }
        network.add({{wires[op.operands[0]], 1}}, std::move(products),
                    RateCategory::kFast, 0.0, prefix + ".op.fanout");
        break;
      }
      case OpKind::kScale: {
        // Integer scale then halving chain, all fast, via fresh blue wires.
        SpeciesId current = wires[op.operands[0]];
        if (op.scale_halvings == 0) {
          network.add({{current, 1}},
                      {{wires[op.results[0]], op.scale_numerator}},
                      RateCategory::kFast, 0.0, prefix + ".op.scale");
          break;
        }
        if (op.scale_numerator != 1) {
          const SpeciesId scaled = network.add_species(
              prefix + "_sc" + std::to_string(scale_counter) + "_0");
          blue_members.push_back(scaled);
          network.add({{compiled.ind_b, 1}, {scaled, 1}}, {{scaled, 1}},
                      RateCategory::kFast, 0.0, prefix + ".ind.b.absorb");
          network.add({{current, 1}}, {{scaled, op.scale_numerator}},
                      RateCategory::kFast, 0.0, prefix + ".op.scale");
          current = scaled;
        }
        for (std::uint32_t stage = 1; stage <= op.scale_halvings; ++stage) {
          SpeciesId next;
          if (stage == op.scale_halvings) {
            next = wires[op.results[0]];
          } else {
            next = network.add_species(prefix + "_sc" +
                                       std::to_string(scale_counter) + "_" +
                                       std::to_string(stage));
            network.add({{compiled.ind_b, 1}, {next, 1}}, {{next, 1}},
                        RateCategory::kFast, 0.0, prefix + ".ind.b.absorb");
          }
          network.add({{current, 2}}, {{next, 1}}, RateCategory::kFast, 0.0,
                      prefix + ".op.halve");
          current = next;
        }
        ++scale_counter;
        break;
      }
      case OpKind::kMin:
        break;  // rejected above
    }
  }
  for (const Sink& sink : sinks_) {
    switch (sink.kind) {
      case SinkKind::kRegister: {
        network.add({{wires[sink.signal], 1}}, {{reg_r[sink.reg], 1}},
                    RateCategory::kFast, 0.0,
                    prefix + ".sink.reg." + registers_[sink.reg].name);
        break;
      }
      case SinkKind::kOutput: {
        network.add({{wires[sink.signal], 1}},
                    {{compiled.outputs.at(sink.name), 1}},
                    RateCategory::kFast, 0.0,
                    prefix + ".sink.out." + sink.name);
        break;
      }
      case SinkKind::kDiscard: {
        network.add({{wires[sink.signal], 1}}, {}, RateCategory::kFast, 0.0,
                    prefix + ".discard");
        break;
      }
    }
  }

  return compiled;
}

}  // namespace mrsc::async
