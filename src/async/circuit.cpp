#include "async/circuit.hpp"

#include <chrono>
#include <stdexcept>

namespace mrsc::async {

namespace {
using core::RateCategory;
using core::SpeciesId;
using core::Term;
}  // namespace

core::SpeciesId CompiledAsyncCircuit::input(const std::string& name) const {
  const auto it = inputs.find(name);
  if (it == inputs.end()) {
    throw std::out_of_range("CompiledAsyncCircuit: no input '" + name + "'");
  }
  return it->second;
}

core::SpeciesId CompiledAsyncCircuit::output(const std::string& name) const {
  const auto it = outputs.find(name);
  if (it == outputs.end()) {
    throw std::out_of_range("CompiledAsyncCircuit: no output '" + name +
                            "'");
  }
  return it->second;
}

core::SpeciesId CompiledAsyncCircuit::red_of(const std::string& reg) const {
  const auto it = register_red.find(reg);
  if (it == register_red.end()) {
    throw std::out_of_range("CompiledAsyncCircuit: no register '" + reg +
                            "'");
  }
  return it->second;
}

CompiledAsyncCircuit AsyncCircuitBuilder::compile_async(
    core::ReactionNetwork& network, const std::string& prefix,
    const compile::CompileOptions& options) const {
  // --- static checks (same discipline as the synchronous compiler) ---------
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    if (!sig_consumed_[s]) {
      throw std::logic_error(
          "AsyncCircuitBuilder::compile_async: signal #" + std::to_string(s) +
          " is never consumed; use discard() if intentional");
    }
  }
  for (const RegisterDecl& reg : registers_) {
    if (!reg.read_done || !reg.write_done) {
      throw std::logic_error(
          "AsyncCircuitBuilder::compile_async: register '" + reg.name +
          "' must be read and written exactly once");
    }
  }
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kMin) {
      throw std::logic_error(
          "AsyncCircuitBuilder::compile_async: min() leaves residues in its "
          "operand wires, which would block the completion detection; it is "
          "not supported in self-timed circuits");
    }
  }
  if (!register_annihilations_.empty() || !output_annihilations_.empty()) {
    throw std::logic_error(
        "AsyncCircuitBuilder::compile_async: dual-rail normalization is not "
        "supported in self-timed circuits yet");
  }
  auto assumed_zero = [&](const std::string& name) {
    for (const std::string& port : options.assume_zero_inputs) {
      if (port == name) return true;
    }
    return false;
  };

  const auto lowering_start = std::chrono::steady_clock::now();
  compile::LoweringContext ctx(network, prefix);
  CompiledAsyncCircuit compiled;

  // --- species ----------------------------------------------------------------
  std::vector<SpeciesId> wires(sig_count_);
  for (std::uint32_t s = 0; s < sig_count_; ++s) {
    wires[s] = ctx.species(prefix + "_w" + std::to_string(s));
  }
  std::vector<compile::ColorTriple> triples(registers_.size());
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    triples[i] = ctx.color_triple(registers_[i].name, registers_[i].initial);
    compiled.register_red.emplace(registers_[i].name, triples[i].red);
  }
  // Heartbeat register: a constant 1.0 circulating its own triple, so the
  // harness has a data-independent pacing signal.
  const compile::ColorTriple hb = ctx.color_triple("hb", 1.0);
  compiled.register_red.emplace("hb", hb.red);
  compiled.pacing = hb.green;
  compiled.pacing_inject = hb.blue;
  ctx.declare_root(hb.red, compile::PortRole::kClock);
  ctx.declare_root(hb.green, compile::PortRole::kClock);
  ctx.declare_root(hb.blue, compile::PortRole::kClock);

  // Ports.
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kInput) {
      const SpeciesId port = ctx.species(prefix + "_in_" + op.name);
      compiled.inputs.emplace(op.name, port);
      if (!assumed_zero(op.name)) {
        ctx.declare_root(port, compile::PortRole::kInput);
      }
    }
  }
  for (const Sink& sink : sinks_) {
    if (sink.kind == SinkKind::kOutput) {
      const SpeciesId port = ctx.species(prefix + "_out_" + sink.name);
      compiled.outputs.emplace(sink.name, port);
      ctx.declare_root(port, compile::PortRole::kOutput);
    }
  }

  // --- color categories ---------------------------------------------------
  // red: register Rs (incl. heartbeat) and output ports; green: register Gs;
  // blue: register Bs, input ports, and every wire (completion detection).
  std::vector<SpeciesId> red_members;
  std::vector<SpeciesId> green_members;
  std::vector<SpeciesId> blue_members;
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    red_members.push_back(triples[i].red);
    green_members.push_back(triples[i].green);
    blue_members.push_back(triples[i].blue);
  }
  red_members.push_back(hb.red);
  green_members.push_back(hb.green);
  blue_members.push_back(hb.blue);
  for (const auto& [name, id] : compiled.outputs) red_members.push_back(id);
  for (const auto& [name, id] : compiled.inputs) blue_members.push_back(id);
  for (const SpeciesId wire : wires) blue_members.push_back(wire);

  compiled.ind_r = ctx.species(prefix + "_r");
  compiled.ind_g = ctx.species(prefix + "_g");
  compiled.ind_b = ctx.species(prefix + "_b");
  ctx.declare_root(compiled.ind_r, compile::PortRole::kClock);
  ctx.declare_root(compiled.ind_g, compile::PortRole::kClock);
  ctx.declare_root(compiled.ind_b, compile::PortRole::kClock);
  // Each indicator's generation is slowed relative to the completion speed
  // of the phase it waits for, so a gate never accumulates appreciably while
  // its predecessor phase is still finishing. The blue-to-red phase is the
  // slow one (its releases are seed-only — combinational logic breaks the
  // 1:1 feedback trick), so its gate ind_g runs at half rate and the gate
  // that waits *for* it (ind_b, enabling red-to-green) is slowed the most.
  ctx.indicator(compiled.ind_r, red_members, 0.5, prefix + ".ind.r");
  ctx.indicator(compiled.ind_g, green_members, 0.5, prefix + ".ind.g");
  ctx.indicator(compiled.ind_b, blue_members, 0.125, prefix + ".ind.b");

  // --- register-internal phases (feedback-sharpened, per register) ---------
  auto emit_sharpened = [&](SpeciesId from, SpeciesId to, SpeciesId gate,
                            const std::string& tag) {
    ctx.sharpened_hop(from, to, gate, tag, tag + "_I");
  };
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const std::string& name = registers_[i].name;
    // red-to-green gated on absence of blue; green-to-blue on absence of red.
    emit_sharpened(triples[i].red, triples[i].green, compiled.ind_b,
                   prefix + "_" + name + "_r2g");
    emit_sharpened(triples[i].green, triples[i].blue, compiled.ind_r,
                   prefix + "_" + name + "_g2b");
  }
  emit_sharpened(hb.red, hb.green, compiled.ind_b, prefix + "_hb_r2g");
  emit_sharpened(hb.green, hb.blue, compiled.ind_r, prefix + "_hb_g2b");
  // The heartbeat's blue-to-red hop has no ops on its path, so it CAN be
  // feedback-sharpened — and must be: a lingering hb_B residue would leak
  // the next red-to-green phase early and smear the whole oscillation.
  emit_sharpened(hb.blue, hb.red, compiled.ind_g, prefix + "_hb_b2r");

  // --- the combinational pass (blue-to-red phase) ---------------------------
  // Releases (indicator-consuming seeds) feed the wires; fast ops flow; fast
  // terminal transfers deposit into register reds / outputs.
  std::size_t scale_counter = 0;
  for (const Op& op : ops_) {
    switch (op.kind) {
      // Releases are catalyzed by the heartbeat's red species. hb_R is high
      // exactly during the release window: its own (feedback-sharpened)
      // blue-to-red hop raises it when the greens empty, and it drains only
      // in the next red-to-green phase — which the global indicator ind_b
      // forbids while any blue species (sources, in-flight wires) remains.
      // So the release pulse automatically *stretches* until the data is
      // through: completion detection drives the catalyst. (Consuming the
      // indicator per unit transferred, as the plain chain's seeds do,
      // starves here: the heartbeat's next phase competes for the same
      // indicator molecules and the transfer tail stalls.)
      case OpKind::kInput: {
        ctx.released_transfer(hb.red, compiled.inputs.at(op.name),
                              wires[op.results[0]],
                              prefix + ".release.in." + op.name);
        break;
      }
      case OpKind::kRead: {
        ctx.released_transfer(hb.red, triples[op.reg].blue,
                              wires[op.results[0]],
                              prefix + ".release.reg." +
                                  registers_[op.reg].name);
        break;
      }
      case OpKind::kAdd: {
        network.add({{wires[op.operands[0]], 1}},
                    {{wires[op.results[0]], 1}}, RateCategory::kFast, 0.0,
                    prefix + ".op.add");
        network.add({{wires[op.operands[1]], 1}},
                    {{wires[op.results[0]], 1}}, RateCategory::kFast, 0.0,
                    prefix + ".op.add");
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        break;
      }
      case OpKind::kFanout: {
        std::vector<Term> products;
        for (const std::uint32_t r : op.results) {
          products.push_back(Term{wires[r], 1});
        }
        network.add({{wires[op.operands[0]], 1}}, std::move(products),
                    RateCategory::kFast, 0.0, prefix + ".op.fanout");
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        break;
      }
      case OpKind::kScale: {
        // Integer scale then halving chain, all fast, via fresh blue wires.
        SpeciesId current = wires[op.operands[0]];
        if (op.scale_halvings == 0) {
          network.add({{current, 1}},
                      {{wires[op.results[0]], op.scale_numerator}},
                      RateCategory::kFast, 0.0, prefix + ".op.scale");
          ctx.tag_pending(compile::ReactionTag::kFastOp);
          break;
        }
        if (op.scale_numerator != 1) {
          const SpeciesId scaled = ctx.species(
              prefix + "_sc" + std::to_string(scale_counter) + "_0");
          blue_members.push_back(scaled);
          ctx.indicator_absorb(compiled.ind_b, scaled,
                               prefix + ".ind.b.absorb");
          network.add({{current, 1}}, {{scaled, op.scale_numerator}},
                      RateCategory::kFast, 0.0, prefix + ".op.scale");
          ctx.tag_pending(compile::ReactionTag::kFastOp);
          current = scaled;
        }
        for (std::uint32_t stage = 1; stage <= op.scale_halvings; ++stage) {
          SpeciesId next;
          if (stage == op.scale_halvings) {
            next = wires[op.results[0]];
          } else {
            next = ctx.species(prefix + "_sc" +
                               std::to_string(scale_counter) + "_" +
                               std::to_string(stage));
            ctx.indicator_absorb(compiled.ind_b, next,
                                 prefix + ".ind.b.absorb");
          }
          network.add({{current, 2}}, {{next, 1}}, RateCategory::kFast, 0.0,
                      prefix + ".op.halve");
          ctx.tag_pending(compile::ReactionTag::kFastOp);
          current = next;
        }
        ++scale_counter;
        break;
      }
      case OpKind::kMin:
        break;  // rejected above
    }
  }
  for (const Sink& sink : sinks_) {
    switch (sink.kind) {
      case SinkKind::kRegister: {
        network.add({{wires[sink.signal], 1}}, {{triples[sink.reg].red, 1}},
                    RateCategory::kFast, 0.0,
                    prefix + ".sink.reg." + registers_[sink.reg].name);
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        break;
      }
      case SinkKind::kOutput: {
        network.add({{wires[sink.signal], 1}},
                    {{compiled.outputs.at(sink.name), 1}},
                    RateCategory::kFast, 0.0,
                    prefix + ".sink.out." + sink.name);
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        break;
      }
      case SinkKind::kDiscard: {
        network.add({{wires[sink.signal], 1}}, {}, RateCategory::kFast, 0.0,
                    prefix + ".discard");
        ctx.tag_pending(compile::ReactionTag::kFastOp);
        break;
      }
    }
  }

  // --- passes ---------------------------------------------------------------
  const double lowering_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    lowering_start)
          .count();
  const compile::FinalizeResult fin = ctx.finalize(options, lowering_seconds);
  if (fin.optimized) {
    auto remap_ports = [&](std::map<std::string, SpeciesId>& ports) {
      for (auto it = ports.begin(); it != ports.end();) {
        const SpeciesId mapped = fin(it->second);
        if (mapped == SpeciesId::invalid()) {
          it = ports.erase(it);
        } else {
          it->second = mapped;
          ++it;
        }
      }
    };
    remap_ports(compiled.inputs);
    remap_ports(compiled.outputs);
    remap_ports(compiled.register_red);
    compiled.pacing = fin(compiled.pacing);
    compiled.pacing_inject = fin(compiled.pacing_inject);
    compiled.ind_r = fin(compiled.ind_r);
    compiled.ind_g = fin(compiled.ind_g);
    compiled.ind_b = fin(compiled.ind_b);
  }

  return compiled;
}

}  // namespace mrsc::async
