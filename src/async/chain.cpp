#include "async/chain.hpp"

#include <stdexcept>

#include "core/builder.hpp"

namespace mrsc::async {

namespace {

using core::RateCategory;
using core::SpeciesId;

std::string numbered(const std::string& prefix, const char* stem,
                     std::size_t i) {
  return prefix + "_" + stem + std::to_string(i);
}

}  // namespace

ChainHandles build_delay_chain(core::ReactionNetwork& network,
                               const ChainSpec& spec) {
  if (spec.elements == 0) {
    throw std::invalid_argument("build_delay_chain: need >= 1 element");
  }
  const std::size_t n = spec.elements;
  core::NetworkBuilder builder(network);
  builder.set_label_prefix(spec.prefix + ".");
  const std::string& p = spec.prefix;

  ChainHandles handles;

  // --- species --------------------------------------------------------------
  // Color categories: red = {R_1..R_{n+1}}, green = {G_1..G_n},
  // blue = {B_0..B_n}. B_0 is the input X; R_{n+1} is the output Y.
  handles.input = builder.species(numbered(p, "B", 0));
  for (std::size_t i = 1; i <= n; ++i) {
    handles.red.push_back(builder.species(numbered(p, "R", i)));
    handles.green.push_back(builder.species(numbered(p, "G", i)));
    handles.blue.push_back(builder.species(numbered(p, "B", i)));
  }
  handles.output = builder.species(numbered(p, "R", n + 1));
  handles.ind_r = builder.species(p + "_r");
  handles.ind_g = builder.species(p + "_g");
  handles.ind_b = builder.species(p + "_b");

  // Full color category membership (for the indicator-absorption reactions).
  std::vector<SpeciesId> all_red = handles.red;
  all_red.push_back(handles.output);
  const std::vector<SpeciesId>& all_green = handles.green;
  std::vector<SpeciesId> all_blue;
  all_blue.push_back(handles.input);
  for (const SpeciesId id : handles.blue) all_blue.push_back(id);

  // --- reactions (1): absence indicators -------------------------------------
  // Slow zero-order generation; fast absorption by every member of the color.
  auto emit_indicator = [&](SpeciesId indicator, const char* name,
                            const std::vector<SpeciesId>& members) {
    network.add({}, {{indicator, 1}}, RateCategory::kSlow, 0.0,
                spec.prefix + ".ind." + name + ".gen");
    for (const SpeciesId member : members) {
      network.add({{indicator, 1}, {member, 1}}, {{member, 1}},
                  RateCategory::kFast, 0.0,
                  spec.prefix + ".ind." + name + ".absorb." +
                      network.species_name(member));
    }
  };
  emit_indicator(handles.ind_r, "r", all_red);
  emit_indicator(handles.ind_g, "g", all_green);
  emit_indicator(handles.ind_b, "b", all_blue);

  // --- reactions (4): red-to-green phase (enabled by absence of blue) --------
  //   b + R_i ->slow G_i                       (seed)
  //   2 G_j <->slow/fast I_G_j                 (feedback dimer)
  //   I_G_j + R_i ->fast 2 G_j + G_i           (feedback transfer, all i,j)
  std::vector<SpeciesId> ig(n);
  if (spec.feedback) {
    for (std::size_t j = 0; j < n; ++j) {
      ig[j] = builder.species(numbered(p, "I_G", j + 1));
      network.add({{handles.green[j], 2}}, {{ig[j], 1}}, RateCategory::kSlow,
                  0.0, spec.prefix + ".r2g.dimerize");
      network.add({{ig[j], 1}}, {{handles.green[j], 2}}, RateCategory::kFast,
                  0.0, spec.prefix + ".r2g.undimerize");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    network.add({{handles.ind_b, 1}, {handles.red[i], 1}},
                {{handles.green[i], 1}}, RateCategory::kSlow, 0.0,
                spec.prefix + ".r2g.seed");
    if (spec.feedback) {
      for (std::size_t j = 0; j < n; ++j) {
        network.add({{ig[j], 1}, {handles.red[i], 1}},
                    {{handles.green[j], 2}, {handles.green[i], 1}},
                    RateCategory::kFast, 0.0, spec.prefix + ".r2g.feedback");
      }
    }
  }

  // --- reactions (5): green-to-blue phase (enabled by absence of red) --------
  //   r + G_i ->slow B_i ; feedback over blue dimers j = 0..n.
  std::vector<SpeciesId> ib(n + 1);
  if (spec.feedback) {
    for (std::size_t j = 0; j <= n; ++j) {
      const SpeciesId blue_j = (j == 0) ? handles.input : handles.blue[j - 1];
      ib[j] = builder.species(numbered(p, "I_B", j));
      network.add({{blue_j, 2}}, {{ib[j], 1}}, RateCategory::kSlow, 0.0,
                  spec.prefix + ".g2b.dimerize");
      network.add({{ib[j], 1}}, {{blue_j, 2}}, RateCategory::kFast, 0.0,
                  spec.prefix + ".g2b.undimerize");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    network.add({{handles.ind_r, 1}, {handles.green[i], 1}},
                {{handles.blue[i], 1}}, RateCategory::kSlow, 0.0,
                spec.prefix + ".g2b.seed");
    if (spec.feedback) {
      for (std::size_t j = 0; j <= n; ++j) {
        const SpeciesId blue_j =
            (j == 0) ? handles.input : handles.blue[j - 1];
        network.add({{ib[j], 1}, {handles.green[i], 1}},
                    {{blue_j, 2}, {handles.blue[i], 1}}, RateCategory::kFast,
                    0.0, spec.prefix + ".g2b.feedback");
      }
    }
  }

  // --- reactions (6): blue-to-red phase (enabled by absence of green) --------
  //   g + B_i ->slow R_{i+1} for i = 0..n ; feedback over red dimers
  //   j = 1..n+1.
  std::vector<SpeciesId> ir(n + 1);
  if (spec.feedback) {
    for (std::size_t j = 0; j <= n; ++j) {
      const SpeciesId red_j = (j == n) ? handles.output : handles.red[j];
      ir[j] = builder.species(numbered(p, "I_R", j + 1));
      network.add({{red_j, 2}}, {{ir[j], 1}}, RateCategory::kSlow, 0.0,
                  spec.prefix + ".b2r.dimerize");
      network.add({{ir[j], 1}}, {{red_j, 2}}, RateCategory::kFast, 0.0,
                  spec.prefix + ".b2r.undimerize");
    }
  }
  for (std::size_t i = 0; i <= n; ++i) {
    const SpeciesId blue_i = (i == 0) ? handles.input : handles.blue[i - 1];
    const SpeciesId red_next = (i == n) ? handles.output : handles.red[i];
    network.add({{handles.ind_g, 1}, {blue_i, 1}}, {{red_next, 1}},
                RateCategory::kSlow, 0.0, spec.prefix + ".b2r.seed");
    if (spec.feedback) {
      for (std::size_t j = 0; j <= n; ++j) {
        const SpeciesId red_j = (j == n) ? handles.output : handles.red[j];
        network.add({{ir[j], 1}, {blue_i, 1}},
                    {{red_j, 2}, {red_next, 1}}, RateCategory::kFast, 0.0,
                    spec.prefix + ".b2r.feedback");
      }
    }
  }

  return handles;
}

}  // namespace mrsc::async
