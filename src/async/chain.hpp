// Self-timed (asynchronous) delay-element chains.
//
// This module implements, reaction for reaction, the scheme of the companion
// paper "Asynchronous Sequential Computation with Molecular Reactions"
// (Jiang/Riedel/Parhi, IWBDA 2011), which shares its machinery with the
// synchronous DAC 2011 paper reproduced by this library:
//
//  * Every signal type is color-coded red, green, or blue. A chain of n delay
//    elements uses types B_0 (the input X), R_i/G_i/B_i for element i, and
//    R_{n+1} (the output Y).
//  * Absence indicators (reactions (1)): r, g, b are generated constantly at
//    a slow rate and consumed quickly by any species of the matching color,
//    so each accumulates only while its whole color category is absent.
//  * Transfers are gated by the absence of the third color (reactions
//    (4)-(6)): red-to-green consumes b, green-to-blue consumes r,
//    blue-to-red consumes g.
//  * Positive feedback (reactions (2)-(3)): pairs of destination-color
//    molecules form an intermediate I that rapidly converts remaining source
//    molecules, making each transfer a crisp sigmoid. The I terms are
//    cross-coupled over all elements (any element's progress accelerates
//    every element's transfer in the same phase).
//
// Because the three indicators are global, the phases of all delay elements
// are ordered together — the multi-phase handshake that replaces a clock.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::async {

struct ChainSpec {
  /// Number of delay elements (n >= 1).
  std::size_t elements = 2;
  /// Emit the positive-feedback reactions (2)-(3). Disabling them leaves the
  /// slow indicator-consuming seed transfers only; the ablation bench uses
  /// this to show why the feedback matters.
  bool feedback = true;
  /// Species-name prefix, so several chains can share one network.
  std::string prefix = "dc";
};

/// Ids of everything a simulation or test needs to drive and observe a chain.
struct ChainHandles {
  core::SpeciesId input;   ///< B_0 — inject X here
  core::SpeciesId output;  ///< R_{n+1} — Y appears here
  std::vector<core::SpeciesId> red;    ///< R_1..R_n
  std::vector<core::SpeciesId> green;  ///< G_1..G_n
  std::vector<core::SpeciesId> blue;   ///< B_1..B_n
  core::SpeciesId ind_r;  ///< red-absence indicator r
  core::SpeciesId ind_g;  ///< green-absence indicator g
  core::SpeciesId ind_b;  ///< blue-absence indicator b
};

/// Emits a chain of `spec.elements` delay elements into `network` and returns
/// the handles. The input value should be placed in (or injected into)
/// `handles.input`; after roughly 3*(n+1) phases it arrives in
/// `handles.output`.
ChainHandles build_delay_chain(core::ReactionNetwork& network,
                               const ChainSpec& spec);

}  // namespace mrsc::async
