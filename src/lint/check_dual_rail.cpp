// Dual-rail exclusivity.
//
// A signed value v rides on a rail pair (X_p, X_n) with v = p - n (see
// sync/dual_rail.hpp); the DualRailBuilder names every pair with the _p/_n
// suffix convention this check keys on. Railwise arithmetic may grow both
// rails, but no *single* reaction may deposit into both rails of one pair —
// that manufactures matched (+1, +1) garbage the annihilation normalizer
// then has to burn, and under stochastic semantics the two deposits are not
// atomic. The pair should also share a conserved total with the rest of its
// signal path, or normalization can silently lose value.
//
//   LINT-RAIL-01 (error)    one reaction produces both rails of a pair
//   LINT-RAIL-02 (warning)  a rail pair participates in no conservation law
#include <string_view>

#include "lint/checks.hpp"

namespace mrsc::lint {

namespace {

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

struct RailPair {
  core::SpeciesId pos;
  core::SpeciesId neg;
  std::string stem;
};

std::vector<RailPair> find_rail_pairs(const core::ReactionNetwork& network) {
  std::vector<RailPair> pairs;
  for (std::size_t s = 0; s < network.species_count(); ++s) {
    const core::SpeciesId pos{
        static_cast<core::SpeciesId::underlying_type>(s)};
    const std::string& pos_name = network.species_name(pos);
    if (!ends_with(pos_name, "_p")) continue;
    const std::string stem = pos_name.substr(0, pos_name.size() - 2);
    const auto neg = network.find_species(stem + "_n");
    if (!neg) continue;
    pairs.push_back(RailPair{pos, *neg, stem});
  }
  return pairs;
}

class DualRailCheck final : public Check {
 public:
  [[nodiscard]] const char* name() const override { return "dual-rail"; }
  [[nodiscard]] const char* summary() const override {
    return "rail-pair co-production and shared conservation";
  }

  [[nodiscard]] std::string run(const LintInput& input,
                                const LintOptions& options,
                                LintReport& report) const override {
    const core::ReactionNetwork& network = *input.network;
    const std::vector<RailPair> pairs = find_rail_pairs(network);
    if (pairs.empty()) {
      return "no _p/_n rail pairs in this design";
    }

    for (const RailPair& pair : pairs) {
      for (std::size_t r = 0; r < network.reaction_count(); ++r) {
        const core::ReactionId id{
            static_cast<core::ReactionId::underlying_type>(r)};
        const core::Reaction& reaction = network.reaction(id);
        if (reaction.net_change(pair.pos) > 0 &&
            reaction.net_change(pair.neg) > 0) {
          Diagnostic d;
          d.id = "LINT-RAIL-01";
          d.severity = Severity::kError;
          d.check = name();
          d.message = "one reaction deposits into both rails of pair '" +
                      pair.stem + "' (" + network.species_name(pair.pos) +
                      ", " + network.species_name(pair.neg) +
                      "): rails must be fed by disjoint reactions";
          d.notes.push_back(network.reaction_to_string(id));
          report.diagnostics.push_back(std::move(d));
        }
      }
    }

    std::vector<std::string> basis_notes;
    const auto basis =
        detail::conservation_basis(network, options, &basis_notes);
    const auto covered =
        detail::conservation_coverage(basis, network.species_count());
    // Input-port rails are exempt: the harness injects into them from
    // outside, so their conserved total is completed by the environment,
    // not by the network.
    std::vector<bool> is_input(network.species_count(), false);
    for (const core::SpeciesId id :
         input.roots_with(compile::PortRole::kInput)) {
      is_input[id.index()] = true;
    }
    for (const RailPair& pair : pairs) {
      if (is_input[pair.pos.index()] || is_input[pair.neg.index()]) continue;
      if (covered[pair.pos.index()] && covered[pair.neg.index()]) continue;
      Diagnostic d;
      d.id = "LINT-RAIL-02";
      d.severity = Severity::kWarning;
      d.check = name();
      d.message = "rail pair '" + pair.stem +
                  "' is not fully covered by conservation laws (" +
                  network.species_name(pair.pos) + ": " +
                  (covered[pair.pos.index()] ? "covered" : "uncovered") +
                  ", " + network.species_name(pair.neg) + ": " +
                  (covered[pair.neg.index()] ? "covered" : "uncovered") +
                  "); rail imbalance can drift without bound";
      d.notes = basis_notes;
      report.diagnostics.push_back(std::move(d));
    }
    return {};
  }
};

}  // namespace

std::unique_ptr<Check> make_dual_rail_check() {
  return std::make_unique<DualRailCheck>();
}

}  // namespace mrsc::lint
