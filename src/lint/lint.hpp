// Static CRN analyzer: structural proofs before any simulation.
//
// The verify subsystem certifies designs *dynamically* — simulate, then
// check invariants along the trajectory. This subsystem is its static
// complement: every check here consumes only the compiled ReactionNetwork
// (plus the interface/tag metadata the compile pipeline records in
// DesignInfo and, for compositions, the Composition record), and what it
// proves therefore holds for every trajectory at once. The check catalogue,
// diagnostic id registry, and JSON schema are documented in docs/LINT.md:
//
//   conservation     exact rational conservation laws; uncovered state
//   phase-race       same-phase produce/consume pairs, catalyst imbalance
//   timescale        fast/slow rate-category separation ratios
//   dual-rail        rail-pair co-production and shared conservation
//   reachability     untouched/unreachable species, stuck reactions
//   iss-composition  structural ISS sufficient conditions per interface
//
// Checks never simulate and never modify the network. A check that cannot
// run (missing tags, no composition record) is reported as skipped — a
// skipped check is not a clean check, and the cross-oracle in verify/ holds
// the two subsystems to each other's verdicts.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compile/compose.hpp"
#include "compile/passes.hpp"
#include "core/network.hpp"
#include "lint/diagnostics.hpp"

namespace mrsc::lint {

/// Everything the analyzer may look at. Only `network` is mandatory; the
/// richer the metadata, the more checks can run (see each check's skip
/// conditions in docs/LINT.md).
struct LintInput {
  const core::ReactionNetwork* network = nullptr;
  std::string design;  ///< name echoed into the report

  /// Interface roles (ports, state, clock phases) of the design's root
  /// species, as recorded by LoweringContext::finalize.
  std::vector<std::pair<core::SpeciesId, compile::PortRole>> roots;

  /// Emission tags: tags[i] describes reaction first_tagged + i. Only
  /// meaningful while tags_valid (see compile::DesignInfo).
  std::vector<compile::ReactionTag> tags;
  std::size_t first_tagged = 0;
  bool tags_valid = false;

  /// Layer/interface record of a CascadeComposer build; nullptr for a
  /// monolithic design (the ISS check is skipped then). Not owned.
  const compile::Composition* composition = nullptr;

  /// Convenience: bundles a compiled network with the DesignInfo its
  /// front-end filled in via CompileOptions::design_info.
  [[nodiscard]] static LintInput from_design(
      const core::ReactionNetwork& network, const compile::DesignInfo& info,
      std::string design_name);

  /// Root ids with the given role.
  [[nodiscard]] std::vector<core::SpeciesId> roots_with(
      compile::PortRole role) const;
};

/// Tuning knobs threaded into every check.
struct LintOptions {
  /// Registry names of the checks to run; empty means all. Unknown names
  /// make run_lint throw std::invalid_argument.
  std::vector<std::string> checks;

  /// The fast/slow effective-rate ratio below which the timescale check
  /// errors (the paper's scheme degrades to plain races at ~10x) and warns
  /// (comfortable separation starts around 100x).
  double timescale_error_ratio = 10.0;
  double timescale_warn_ratio = 100.0;

  /// Try the exact rational left-nullspace first; on int64 overflow the
  /// conservation-based checks fall back to the floating-point basis from
  /// analysis/conservation.hpp (and say so in a note).
  bool conservation_exact = true;
};

/// One registered static check.
class Check {
 public:
  virtual ~Check() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual const char* summary() const = 0;
  /// Appends diagnostics to `report`. Returns an empty string when the
  /// check ran, else a human-readable reason it had to be skipped.
  [[nodiscard]] virtual std::string run(const LintInput& input,
                                        const LintOptions& options,
                                        LintReport& report) const = 0;
};

/// The full registry, in the order checks run and are documented.
[[nodiscard]] std::vector<std::unique_ptr<Check>> all_checks();

/// Registry names, for CLIs and option validation.
[[nodiscard]] std::vector<std::string> check_names();

/// Runs the selected checks (all by default) and aggregates the report.
/// Throws std::invalid_argument when input.network is null or
/// options.checks names an unknown check.
[[nodiscard]] LintReport run_lint(const LintInput& input,
                                  const LintOptions& options = {});

}  // namespace mrsc::lint
