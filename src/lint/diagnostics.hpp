// Diagnostics for the static CRN analyzer.
//
// Every finding carries a *stable* diagnostic id (e.g. "LINT-RACE-01") that
// tests, CI greps, and downstream tooling key on; ids are never renumbered
// or reused. The catalog lives in docs/LINT.md. A LintReport aggregates the
// findings of one analyzer run together with which checks ran or were
// skipped (a skipped check is not a clean check), and renders itself as a
// fixed-width terminal listing or machine-readable JSON.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mrsc::lint {

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

/// Human-readable name ("info"/"warning"/"error").
[[nodiscard]] const char* to_string(Severity severity);

/// One finding of one check.
struct Diagnostic {
  std::string id;        ///< stable id, e.g. "LINT-RACE-01"
  Severity severity = Severity::kInfo;
  std::string check;     ///< registry name of the emitting check
  std::string message;   ///< one-line description with names and numbers
  std::vector<std::string> notes;  ///< supporting detail (reactions, laws)
};

/// Everything one analyzer run produced.
struct LintReport {
  std::string design;  ///< optional: name of the analyzed design/file
  std::vector<std::string> checks_run;
  /// "name: reason" for every registered check that could not run (missing
  /// emission tags, no composition record, ...).
  std::vector<std::string> checks_skipped;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const {
    return count(Severity::kWarning);
  }

  /// True when nothing at or above the failure threshold fired: errors
  /// always fail; warnings additionally fail when `werror` is set.
  [[nodiscard]] bool clean(bool werror = false) const;

  /// True when a diagnostic with this exact id fired.
  [[nodiscard]] bool has(const std::string& id) const;

  /// Terminal rendering, one line per diagnostic plus notes; infos are
  /// listed only when `show_info`.
  [[nodiscard]] std::string to_text(bool show_info = true) const;

  /// Self-contained JSON (schema documented in docs/LINT.md).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace mrsc::lint
