// ISS composition certificates.
//
// When a design is built as a cascade of layers (compile::CascadeComposer),
// input-to-state stability of the whole follows from ISS of the parts
// *provided the interconnection has the right structure*. This check
// verifies the structural sufficient conditions from the compositional-ISS
// literature for CRNs (arXiv:2506.12056 — scalable stability certificates
// for interconnected systems; arXiv:2512.07116 — ISS under cascade
// composition of reaction networks) per declared interface:
//
//   (a) every inter-layer channel is a declared fast unit-stoichiometry
//       transfer u -> d (the interconnection is a pure output-to-input map
//       with gain 1);
//   (b) no undeclared reaction couples two layers (no retroactivity: the
//       upstream layer's dynamics are independent of downstream state);
//   (c) the declared interface graph is acyclic (serial composition; a
//       cycle would need a small-gain argument this check cannot make
//       statically);
//   (d) every channel target is processed: consumed by its layer, covered
//       by a conservation law, or declared a terminal the harness samples.
//
//   LINT-ISS-00 (info)     per-interface certificate when (a)-(d) hold
//   LINT-ISS-01 (error)    undeclared cross-layer coupling or a cycle in
//                          the declared interface graph
//   LINT-ISS-02 (error)    malformed channel (not a fast 1:1 transfer)
//   LINT-ISS-03 (warning)  channel target accumulates without bound
#include <algorithm>
#include <optional>

#include "lint/checks.hpp"

namespace mrsc::lint {

namespace {

using compile::Composition;
using compile::InterfaceBinding;

bool has_cycle(const Composition& comp) {
  const std::size_t n = comp.layers.size();
  std::vector<std::vector<std::size_t>> adjacent(n);
  for (const InterfaceBinding& binding : comp.interfaces) {
    adjacent[binding.from_layer].push_back(binding.to_layer);
  }
  // 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> state(n, 0);
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < n; ++start) {
    if (state[start] != 0) continue;
    stack.push_back(start);
    while (!stack.empty()) {
      const std::size_t node = stack.back();
      if (state[node] == 0) {
        state[node] = 1;
        for (const std::size_t next : adjacent[node]) {
          if (state[next] == 1) return true;
          if (state[next] == 0) stack.push_back(next);
        }
      } else {
        if (state[node] == 1) state[node] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

class IssCompositionCheck final : public Check {
 public:
  [[nodiscard]] const char* name() const override { return "iss-composition"; }
  [[nodiscard]] const char* summary() const override {
    return "structural ISS sufficient conditions per cascade interface";
  }

  [[nodiscard]] std::string run(const LintInput& input,
                                const LintOptions& options,
                                LintReport& report) const override {
    if (input.composition == nullptr || input.composition->layers.empty()) {
      return "no composition record (monolithic design)";
    }
    const core::ReactionNetwork& network = *input.network;
    const Composition& comp = *input.composition;

    std::vector<bool> declared(network.reaction_count(), false);
    for (const InterfaceBinding& binding : comp.interfaces) {
      if (binding.reaction.index() < declared.size()) {
        declared[binding.reaction.index()] = true;
      }
    }

    // (b) every reaction must live inside one layer unless declared.
    bool coupling_clean = true;
    for (std::size_t r = 0; r < network.reaction_count(); ++r) {
      if (declared[r]) continue;
      const core::ReactionId id{
          static_cast<core::ReactionId::underlying_type>(r)};
      const core::Reaction& reaction = network.reaction(id);
      std::optional<std::size_t> home;
      bool spans = false;
      auto visit = [&](const std::vector<core::Term>& terms) {
        for (const core::Term& term : terms) {
          const auto layer = comp.layer_of(term.species);
          if (!layer) continue;  // species outside every layer: ignored
          if (!home) home = *layer;
          else if (*home != *layer) spans = true;
        }
      };
      visit(reaction.reactants());
      visit(reaction.products());
      if (!spans) continue;
      coupling_clean = false;
      Diagnostic d;
      d.id = "LINT-ISS-01";
      d.severity = Severity::kError;
      d.check = name();
      d.message =
          "undeclared reaction couples two layers: the cascade structure "
          "(and with it the compositional ISS argument) is broken";
      d.notes.push_back(network.reaction_to_string(id));
      report.diagnostics.push_back(std::move(d));
    }

    // (c) the declared interconnection must be a DAG.
    bool acyclic = true;
    if (has_cycle(comp)) {
      acyclic = false;
      Diagnostic d;
      d.id = "LINT-ISS-01";
      d.severity = Severity::kError;
      d.check = name();
      d.message =
          "declared interfaces form a cycle between layers: serial ISS "
          "composition does not apply (a small-gain condition would have "
          "to be established dynamically)";
      report.diagnostics.push_back(std::move(d));
    }

    for (const InterfaceBinding& binding : comp.interfaces) {
      const core::Reaction& channel = network.reaction(binding.reaction);
      const std::string channel_text =
          network.species_name(binding.upstream) + " -> " +
          network.species_name(binding.downstream);

      // (a) channel shape: fast unit transfer u -> d.
      const bool unit_shape =
          channel.reactants().size() == 1 && channel.products().size() == 1 &&
          channel.reactants()[0].species == binding.upstream &&
          channel.reactants()[0].stoich == 1 &&
          channel.products()[0].species == binding.downstream &&
          channel.products()[0].stoich == 1 &&
          channel.category() == core::RateCategory::kFast;
      if (!unit_shape) {
        Diagnostic d;
        d.id = "LINT-ISS-02";
        d.severity = Severity::kError;
        d.check = name();
        d.message = "interface channel " + channel_text +
                    " is not a fast unit-stoichiometry transfer: the "
                    "interconnection gain is not 1";
        d.notes.push_back(network.reaction_to_string(binding.reaction));
        report.diagnostics.push_back(std::move(d));
        continue;
      }

      // (d) the channel target must not accumulate without bound.
      const bool terminal =
          std::find(comp.terminals.begin(), comp.terminals.end(),
                    binding.downstream) != comp.terminals.end();
      bool processed = terminal;
      if (!processed) {
        for (const core::ReactionId r :
             network.reactions_touching(binding.downstream)) {
          if (r != binding.reaction &&
              network.reaction(r).net_change(binding.downstream) < 0) {
            processed = true;
            break;
          }
        }
      }
      if (!processed) {
        std::vector<std::string> notes;
        const auto basis =
            detail::conservation_basis(network, options, &notes);
        const auto covered = detail::conservation_coverage(
            basis, network.species_count());
        processed = covered[binding.downstream.index()];
      }
      if (!processed) {
        Diagnostic d;
        d.id = "LINT-ISS-03";
        d.severity = Severity::kWarning;
        d.check = name();
        d.message = "channel target '" +
                    network.species_name(binding.downstream) +
                    "' of interface " + channel_text +
                    " is never consumed, conserved, or sampled: it "
                    "accumulates without bound";
        report.diagnostics.push_back(std::move(d));
        continue;
      }

      if (coupling_clean && acyclic) {
        Diagnostic d;
        d.id = "LINT-ISS-00";
        d.severity = Severity::kInfo;
        d.check = name();
        d.message = "interface " + channel_text + " (layer '" +
                    comp.layers[binding.from_layer].prefix + "' -> '" +
                    comp.layers[binding.to_layer].prefix +
                    "'): structural ISS composition certificate holds";
        d.notes.push_back(
            "fast unit-stoichiometry channel, no undeclared cross-layer "
            "coupling, acyclic interconnection, bounded channel target");
        d.notes.push_back(
            "sufficient conditions per arXiv:2506.12056, arXiv:2512.07116");
        report.diagnostics.push_back(std::move(d));
      }
    }
    return {};
  }
};

}  // namespace

std::unique_ptr<Check> make_iss_check() {
  return std::make_unique<IssCompositionCheck>();
}

}  // namespace mrsc::lint
