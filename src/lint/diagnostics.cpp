#include "lint/diagnostics.hpp"

namespace mrsc::lint {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += json_escape(items[i]);
    out += '"';
  }
  out += "]";
  return out;
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool LintReport::clean(bool werror) const {
  if (errors() > 0) return false;
  if (werror && warnings() > 0) return false;
  return true;
}

bool LintReport::has(const std::string& id) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.id == id) return true;
  }
  return false;
}

std::string LintReport::to_text(bool show_info) const {
  std::string out;
  if (!design.empty()) out += "lint: " + design + "\n";
  for (const Diagnostic& d : diagnostics) {
    if (!show_info && d.severity == Severity::kInfo) continue;
    out += std::string(to_string(d.severity)) + " " + d.id + " [" + d.check +
           "] " + d.message + "\n";
    for (const std::string& note : d.notes) {
      out += "    note: " + note + "\n";
    }
  }
  for (const std::string& skipped : checks_skipped) {
    out += "skipped " + skipped + "\n";
  }
  out += std::to_string(errors()) + " error(s), " +
         std::to_string(warnings()) + " warning(s); " +
         std::to_string(checks_run.size()) + " check(s) run, " +
         std::to_string(checks_skipped.size()) + " skipped\n";
  return out;
}

std::string LintReport::to_json() const {
  std::string out = "{\n";
  out += "  \"design\": \"" + json_escape(design) + "\",\n";
  out += "  \"checks_run\": " + json_string_array(checks_run) + ",\n";
  out += "  \"checks_skipped\": " + json_string_array(checks_skipped) + ",\n";
  out += "  \"errors\": " + std::to_string(errors()) + ",\n";
  out += "  \"warnings\": " + std::to_string(warnings()) + ",\n";
  out += "  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "\n    {\"id\": \"" + json_escape(d.id) + "\"";
    out += ", \"severity\": \"" + std::string(to_string(d.severity)) + "\"";
    out += ", \"check\": \"" + json_escape(d.check) + "\"";
    out += ", \"message\": \"" + json_escape(d.message) + "\"";
    out += ", \"notes\": [";
    for (std::size_t j = 0; j < d.notes.size(); ++j) {
      if (j > 0) out += ", ";
      out += '"';
      out += json_escape(d.notes[j]);
      out += '"';
    }
    out += "]}";
  }
  if (!diagnostics.empty()) out += "\n  ";
  out += "]\n";
  out += "}\n";
  return out;
}

}  // namespace mrsc::lint
