#include "lint/lint.hpp"

#include <algorithm>
#include <stdexcept>

#include "lint/checks.hpp"

namespace mrsc::lint {

LintInput LintInput::from_design(const core::ReactionNetwork& network,
                                 const compile::DesignInfo& info,
                                 std::string design_name) {
  LintInput input;
  input.network = &network;
  input.design = std::move(design_name);
  input.roots = info.roots;
  input.tags = info.tags;
  input.first_tagged = info.first_tagged;
  input.tags_valid = info.tags_valid;
  return input;
}

std::vector<core::SpeciesId> LintInput::roots_with(
    compile::PortRole role) const {
  std::vector<core::SpeciesId> out;
  for (const auto& [id, r] : roots) {
    if (r == role) out.push_back(id);
  }
  return out;
}

std::vector<std::unique_ptr<Check>> all_checks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(make_conservation_check());
  checks.push_back(make_phase_race_check());
  checks.push_back(make_timescale_check());
  checks.push_back(make_dual_rail_check());
  checks.push_back(make_reachability_check());
  checks.push_back(make_iss_check());
  return checks;
}

std::vector<std::string> check_names() {
  std::vector<std::string> names;
  for (const auto& check : all_checks()) names.emplace_back(check->name());
  return names;
}

LintReport run_lint(const LintInput& input, const LintOptions& options) {
  if (input.network == nullptr) {
    throw std::invalid_argument("run_lint: input.network is null");
  }
  const auto checks = all_checks();
  for (const std::string& wanted : options.checks) {
    const bool known =
        std::any_of(checks.begin(), checks.end(),
                    [&](const auto& c) { return wanted == c->name(); });
    if (!known) {
      throw std::invalid_argument("run_lint: unknown check '" + wanted + "'");
    }
  }

  LintReport report;
  report.design = input.design;
  for (const auto& check : checks) {
    if (!options.checks.empty() &&
        std::find(options.checks.begin(), options.checks.end(),
                  check->name()) == options.checks.end()) {
      continue;
    }
    const std::string skip_reason = check->run(input, options, report);
    if (skip_reason.empty()) {
      report.checks_run.emplace_back(check->name());
    } else {
      report.checks_skipped.push_back(std::string(check->name()) + ": " +
                                      skip_reason);
    }
  }
  return report;
}

}  // namespace mrsc::lint
