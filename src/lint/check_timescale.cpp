// Timescale-separation lint.
//
// The paper's central robustness claim is that the computation is correct
// for *any* rates as long as every fast reaction is much faster than every
// slow one. The compiled network encodes that contract in rate categories;
// this check resolves them against the network's RatePolicy (including
// per-reaction multipliers, which the clock uses to stretch phases) and
// measures the worst-case separation actually achieved:
//
//   ratio = min effective fast rate / max effective slow rate
//
//   LINT-TIME-01 (error)    ratio below timescale_error_ratio (default 10):
//                           the fast/slow abstraction is broken.
//   LINT-TIME-02 (warning)  ratio below timescale_warn_ratio (default 100):
//                           separation exists but leaves little margin.
#include <cstdio>
#include <limits>

#include "lint/checks.hpp"

namespace mrsc::lint {

namespace {

class TimescaleCheck final : public Check {
 public:
  [[nodiscard]] const char* name() const override { return "timescale"; }
  [[nodiscard]] const char* summary() const override {
    return "fast/slow rate-category separation ratio";
  }

  [[nodiscard]] std::string run(const LintInput& input,
                                const LintOptions& options,
                                LintReport& report) const override {
    const core::ReactionNetwork& network = *input.network;
    double min_fast = std::numeric_limits<double>::infinity();
    double max_slow = 0.0;
    core::ReactionId slowest_fast = core::ReactionId::invalid();
    core::ReactionId fastest_slow = core::ReactionId::invalid();
    for (std::size_t r = 0; r < network.reaction_count(); ++r) {
      const core::ReactionId id{
          static_cast<core::ReactionId::underlying_type>(r)};
      const core::Reaction& reaction = network.reaction(id);
      const double rate = network.effective_rate(id);
      if (reaction.category() == core::RateCategory::kFast && rate < min_fast) {
        min_fast = rate;
        slowest_fast = id;
      }
      if (reaction.category() == core::RateCategory::kSlow && rate > max_slow) {
        max_slow = rate;
        fastest_slow = id;
      }
    }
    if (fastest_slow == core::ReactionId::invalid() ||
        slowest_fast == core::ReactionId::invalid()) {
      return "network has no slow/fast category pair to separate";
    }
    const double ratio = min_fast / max_slow;
    if (ratio >= options.timescale_warn_ratio) return {};

    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "min fast rate %.6g / max slow rate %.6g = ratio %.6g",
                  min_fast, max_slow, ratio);
    Diagnostic d;
    d.check = name();
    if (ratio < options.timescale_error_ratio) {
      d.id = "LINT-TIME-01";
      d.severity = Severity::kError;
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "fast/slow separation ratio %.6g is below the %.6g "
                    "floor: the rate-category abstraction is broken",
                    ratio, options.timescale_error_ratio);
      d.message = msg;
    } else {
      d.id = "LINT-TIME-02";
      d.severity = Severity::kWarning;
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "fast/slow separation ratio %.6g is below the "
                    "comfortable %.6g margin",
                    ratio, options.timescale_warn_ratio);
      d.message = msg;
    }
    d.notes.emplace_back(detail);
    d.notes.push_back("slowest fast reaction: " +
                      network.reaction_to_string(slowest_fast));
    d.notes.push_back("fastest slow reaction: " +
                      network.reaction_to_string(fastest_slow));
    report.diagnostics.push_back(std::move(d));
    return {};
  }
};

}  // namespace

std::unique_ptr<Check> make_timescale_check() {
  return std::make_unique<TimescaleCheck>();
}

}  // namespace mrsc::lint
