// Conservation analysis: exact rational left-nullspace of the
// stoichiometric matrix. Each basis vector w (w^T S = 0) is a proof that
// sum_i w_i x_i is invariant along every trajectory, deterministic or
// stochastic. Diagnostics:
//   LINT-CONS-00 (info)     the discovered law basis
//   LINT-CONS-01 (warning)  a declared state species covered by no law —
//                           the design's memory can leak or grow without
//                           bound, which the paper's register discipline
//                           (color-triple totals) never allows.
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "analysis/conservation.hpp"
#include "lint/checks.hpp"
#include "util/rational.hpp"

namespace mrsc::lint {

namespace detail {

std::vector<std::vector<double>> conservation_basis(
    const core::ReactionNetwork& network, const LintOptions& options,
    std::vector<std::string>* notes) {
  if (options.conservation_exact) {
    try {
      const auto exact =
          util::integer_left_nullspace(network.stoichiometric_matrix());
      std::vector<std::vector<double>> basis;
      basis.reserve(exact.size());
      for (const auto& law : exact) {
        basis.emplace_back(law.begin(), law.end());
      }
      return basis;
    } catch (const std::overflow_error&) {
      if (notes != nullptr) {
        notes->push_back(
            "exact rational elimination overflowed int64; falling back to "
            "the floating-point nullspace (laws are approximate)");
      }
    }
  }
  return analysis::conservation_laws(network);
}

std::vector<bool> conservation_coverage(
    const std::vector<std::vector<double>>& basis,
    std::size_t species_count) {
  std::vector<bool> covered(species_count, false);
  for (const auto& law : basis) {
    for (std::size_t s = 0; s < law.size() && s < species_count; ++s) {
      if (std::abs(law[s]) > 1e-9) covered[s] = true;
    }
  }
  return covered;
}

}  // namespace detail

namespace {

std::string render_law(const core::ReactionNetwork& network,
                       const std::vector<double>& law) {
  std::string out;
  std::size_t terms = 0;
  for (std::size_t s = 0; s < law.size(); ++s) {
    if (std::abs(law[s]) <= 1e-9) continue;
    if (terms >= 6) {
      out += " + ...";
      break;
    }
    if (terms > 0) out += law[s] < 0 ? " - " : " + ";
    else if (law[s] < 0) out += "-";
    const double magnitude = std::abs(law[s]);
    if (std::abs(magnitude - 1.0) > 1e-9) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%g ", magnitude);
      out += buffer;
    }
    out += network.species_name(
        core::SpeciesId{static_cast<core::SpeciesId::underlying_type>(s)});
    ++terms;
  }
  return out;
}

class ConservationCheck final : public Check {
 public:
  [[nodiscard]] const char* name() const override { return "conservation"; }
  [[nodiscard]] const char* summary() const override {
    return "exact conservation laws; state species covered by none";
  }

  [[nodiscard]] std::string run(const LintInput& input,
                                const LintOptions& options,
                                LintReport& report) const override {
    const core::ReactionNetwork& network = *input.network;
    std::vector<std::string> notes;
    const auto basis = detail::conservation_basis(network, options, &notes);

    Diagnostic info;
    info.id = "LINT-CONS-00";
    info.severity = Severity::kInfo;
    info.check = name();
    info.message = std::to_string(basis.size()) +
                   " independent conservation law(s) over " +
                   std::to_string(network.species_count()) + " species";
    for (std::size_t i = 0; i < basis.size() && i < 8; ++i) {
      info.notes.push_back(render_law(network, basis[i]) + " = const");
    }
    if (basis.size() > 8) {
      info.notes.push_back("(" + std::to_string(basis.size() - 8) +
                           " more law(s) omitted)");
    }
    info.notes.insert(info.notes.end(), notes.begin(), notes.end());
    report.diagnostics.push_back(std::move(info));

    const auto covered =
        detail::conservation_coverage(basis, network.species_count());
    for (const core::SpeciesId state :
         input.roots_with(compile::PortRole::kState)) {
      if (covered[state.index()]) continue;
      Diagnostic d;
      d.id = "LINT-CONS-01";
      d.severity = Severity::kWarning;
      d.check = name();
      d.message = "state species '" + network.species_name(state) +
                  "' is covered by no conservation law; its stored value "
                  "can drift without bound";
      for (const core::ReactionId r : network.reactions_touching(state)) {
        if (network.reaction(r).net_change(state) != 0) {
          d.notes.push_back("unbalanced by: " + network.reaction_to_string(r));
          if (d.notes.size() >= 4) break;
        }
      }
      report.diagnostics.push_back(std::move(d));
    }
    return {};
  }
};

}  // namespace

std::unique_ptr<Check> make_conservation_check() {
  return std::make_unique<ConservationCheck>();
}

}  // namespace mrsc::lint
