// Dead/unreachable species and stuck reactions.
//
// Bipartite reachability over the species/reaction graph, seeded from the
// design's roots and every species with a nonzero initial condition — the
// same fixpoint dead-species elimination uses (compile/passes.cpp), run
// here in analysis-only mode:
//
//   LINT-DEAD-01 (warning)  species in no reaction at all: frozen at its
//                           initial value, almost always a design bug
//   LINT-DEAD-02 (warning)  species that can never hold a nonzero value
//   LINT-STUCK-01 (warning) reaction that can never fire because one of
//                           its reactants is unreachable: dead logic, or a
//                           state the machine can enter but never leave
#include "lint/checks.hpp"

namespace mrsc::lint {

namespace {

class ReachabilityCheck final : public Check {
 public:
  [[nodiscard]] const char* name() const override { return "reachability"; }
  [[nodiscard]] const char* summary() const override {
    return "untouched/unreachable species and stuck reactions";
  }

  [[nodiscard]] std::string run(const LintInput& input,
                                const LintOptions& options,
                                LintReport& report) const override {
    (void)options;
    const core::ReactionNetwork& network = *input.network;

    for (const core::SpeciesId id : compile::untouched_species(network)) {
      Diagnostic d;
      d.id = "LINT-DEAD-01";
      d.severity = Severity::kWarning;
      d.check = name();
      d.message = "species '" + network.species_name(id) +
                  "' appears in no reaction: frozen at its initial value";
      report.diagnostics.push_back(std::move(d));
    }

    std::vector<core::SpeciesId> roots;
    roots.reserve(input.roots.size());
    for (const auto& [id, role] : input.roots) roots.push_back(id);
    const std::vector<core::SpeciesId> unreachable =
        compile::unreachable_species(network, roots);
    std::vector<bool> is_unreachable(network.species_count(), false);
    for (const core::SpeciesId id : unreachable) {
      is_unreachable[id.index()] = true;
      Diagnostic d;
      d.id = "LINT-DEAD-02";
      d.severity = Severity::kWarning;
      d.check = name();
      d.message = "species '" + network.species_name(id) +
                  "' can never hold a nonzero concentration";
      report.diagnostics.push_back(std::move(d));
    }

    for (std::size_t r = 0; r < network.reaction_count(); ++r) {
      const core::ReactionId id{
          static_cast<core::ReactionId::underlying_type>(r)};
      const core::Reaction& reaction = network.reaction(id);
      for (const core::Term& term : reaction.reactants()) {
        if (!is_unreachable[term.species.index()]) continue;
        Diagnostic d;
        d.id = "LINT-STUCK-01";
        d.severity = Severity::kWarning;
        d.check = name();
        d.message = "reaction can never fire: reactant '" +
                    network.species_name(term.species) +
                    "' is unreachable";
        d.notes.push_back(network.reaction_to_string(id));
        report.diagnostics.push_back(std::move(d));
        break;  // one diagnostic per stuck reaction
      }
    }
    return {};
  }
};

}  // namespace

std::unique_ptr<Check> make_reachability_check() {
  return std::make_unique<ReachabilityCheck>();
}

}  // namespace mrsc::lint
