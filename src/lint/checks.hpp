// Internal check factories and shared helpers for the static analyzer.
// Public API is lint.hpp; nothing here is installed or documented beyond
// the per-check sections of docs/LINT.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace mrsc::lint {

std::unique_ptr<Check> make_conservation_check();
std::unique_ptr<Check> make_phase_race_check();
std::unique_ptr<Check> make_timescale_check();
std::unique_ptr<Check> make_dual_rail_check();
std::unique_ptr<Check> make_reachability_check();
std::unique_ptr<Check> make_iss_check();

namespace detail {

/// Conservation-law basis as floating-point weight vectors (indexed by
/// SpeciesId). Tries the exact rational left-nullspace when
/// `options.conservation_exact`; on overflow falls back to the numeric
/// basis and appends an explanatory note to `notes`.
std::vector<std::vector<double>> conservation_basis(
    const core::ReactionNetwork& network, const LintOptions& options,
    std::vector<std::string>* notes);

/// covered[s]: species s has a nonzero weight in some basis vector.
std::vector<bool> conservation_coverage(
    const std::vector<std::vector<double>>& basis, std::size_t species_count);

}  // namespace detail

}  // namespace mrsc::lint
