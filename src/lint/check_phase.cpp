// Clock-phase race detection.
//
// The paper's synchronous discipline separates every produce/consume pair
// by a phase boundary: wires are filled under one clock phase and drained
// under another, registers hop colors between the phases that read and
// write them. Two structural violations are flagged:
//
//   LINT-RACE-01 (error)  a species produced by one slow phase-gated
//                         reaction and consumed by another *under the same
//                         gate*: the read can observe a half-deposited
//                         value, the exact race the three-phase clock
//                         exists to prevent. Needs valid emission tags.
//   LINT-RACE-02 (error)  a species on both sides of a reaction with
//                         unequal stoichiometry: a catalyst that creates
//                         or destroys itself. No tagged emission helper
//                         produces this shape, so it indicates a corrupted
//                         or hand-edited network. Runs without tags.
#include <map>

#include "lint/checks.hpp"

namespace mrsc::lint {

namespace {

using compile::ReactionTag;

bool is_phase_gated(ReactionTag tag) {
  return tag == ReactionTag::kGatedTransfer || tag == ReactionTag::kWriteback ||
         tag == ReactionTag::kDrain;
}

class PhaseRaceCheck final : public Check {
 public:
  [[nodiscard]] const char* name() const override { return "phase-race"; }
  [[nodiscard]] const char* summary() const override {
    return "same-phase produce/consume pairs and catalyst imbalance";
  }

  [[nodiscard]] std::string run(const LintInput& input,
                                const LintOptions& options,
                                LintReport& report) const override {
    (void)options;
    const core::ReactionNetwork& network = *input.network;

    // RACE-02: catalysts must appear with equal stoichiometry on both
    // sides. Pure stoichiometric screening, independent of any metadata.
    for (std::size_t r = 0; r < network.reaction_count(); ++r) {
      const core::ReactionId id{
          static_cast<core::ReactionId::underlying_type>(r)};
      const core::Reaction& reaction = network.reaction(id);
      for (const core::Term& term : reaction.reactants()) {
        if (!reaction.produces(term.species)) continue;
        const int net = reaction.net_change(term.species);
        if (net == 0) continue;
        Diagnostic d;
        d.id = "LINT-RACE-02";
        d.severity = Severity::kError;
        d.check = name();
        d.message = "species '" + network.species_name(term.species) +
                    "' appears on both sides of a reaction with unequal "
                    "stoichiometry (net " + std::to_string(net) +
                    "): a catalyst that " +
                    (net > 0 ? "replicates" : "consumes") + " itself";
        d.notes.push_back(network.reaction_to_string(id));
        report.diagnostics.push_back(std::move(d));
      }
    }

    // RACE-01 needs the emission tags and the clock roots.
    if (!input.tags_valid) {
      report.checks_skipped.push_back(
          std::string(name()) +
          " (gated-phase analysis): no valid emission tags — only the "
          "stoichiometric screening ran");
      return {};
    }
    const std::vector<core::SpeciesId> clock_roots =
        input.roots_with(compile::PortRole::kClock);
    if (clock_roots.empty()) return {};

    // Group the slow phase-gated reactions by their gating clock species,
    // then look for a species filled and drained under the same gate.
    struct PhaseUse {
      std::vector<core::ReactionId> writes;
      std::vector<core::ReactionId> reads;
    };
    // (gate, species) -> uses
    std::map<std::pair<std::size_t, std::size_t>, PhaseUse> uses;
    for (std::size_t i = 0; i < input.tags.size(); ++i) {
      if (!is_phase_gated(input.tags[i])) continue;
      const core::ReactionId id{static_cast<core::ReactionId::underlying_type>(
          input.first_tagged + i)};
      const core::Reaction& reaction = network.reaction(id);
      core::SpeciesId gate = core::SpeciesId::invalid();
      for (const core::SpeciesId candidate : clock_roots) {
        if (reaction.consumes(candidate) && reaction.produces(candidate) &&
            reaction.net_change(candidate) == 0) {
          gate = candidate;
          break;
        }
      }
      if (gate == core::SpeciesId::invalid()) continue;
      for (const core::Term& term : reaction.reactants()) {
        if (term.species == gate) continue;
        if (reaction.net_change(term.species) < 0) {
          uses[{gate.index(), term.species.index()}].reads.push_back(id);
        }
      }
      for (const core::Term& term : reaction.products()) {
        if (term.species == gate) continue;
        if (reaction.net_change(term.species) > 0) {
          uses[{gate.index(), term.species.index()}].writes.push_back(id);
        }
      }
    }
    for (const auto& [key, use] : uses) {
      if (use.writes.empty() || use.reads.empty()) continue;
      const core::SpeciesId gate{
          static_cast<core::SpeciesId::underlying_type>(key.first)};
      const core::SpeciesId species{
          static_cast<core::SpeciesId::underlying_type>(key.second)};
      Diagnostic d;
      d.id = "LINT-RACE-01";
      d.severity = Severity::kError;
      d.check = name();
      d.message = "species '" + network.species_name(species) +
                  "' is produced and consumed by slow reactions gated on "
                  "the same clock phase '" + network.species_name(gate) +
                  "': the consumer can observe a half-deposited value";
      d.notes.push_back("produced by: " +
                        network.reaction_to_string(use.writes.front()));
      d.notes.push_back("consumed by: " +
                        network.reaction_to_string(use.reads.front()));
      report.diagnostics.push_back(std::move(d));
    }
    return {};
  }
};

}  // namespace

std::unique_ptr<Check> make_phase_race_check() {
  return std::make_unique<PhaseRaceCheck>();
}

}  // namespace mrsc::lint
