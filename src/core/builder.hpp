// Text DSL for reactions, and a builder that resolves species by name.
//
//   NetworkBuilder b(network);
//   b.reaction("X + 2 Y -> Z", RateCategory::kFast);
//   b.reaction("0 -> r", RateCategory::kSlow);          // zero-order source
//   b.reaction("A -> 0", 2.5);                          // custom-rate sink
//
// The builder creates species on first mention, which keeps network
// construction code close to the notation used in the paper.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/network.hpp"

namespace mrsc::core {

/// A reaction side parsed from text, before name resolution.
struct ParsedTerm {
  std::string name;
  std::uint32_t stoich = 1;
};

/// The two sides of `lhs -> rhs`, still as names.
struct ParsedReaction {
  std::vector<ParsedTerm> reactants;
  std::vector<ParsedTerm> products;
};

/// Parses `"A + 2 B -> C"` (also accepts `2B` without a space, and `0` or an
/// empty side for no terms). Throws `std::invalid_argument` on syntax errors.
[[nodiscard]] ParsedReaction parse_reaction(std::string_view text);

/// Adds reactions to a network using the text DSL. Species named in reactions
/// are created on demand with initial concentration 0.
class NetworkBuilder {
 public:
  explicit NetworkBuilder(ReactionNetwork& network) : network_(&network) {}

  /// All reactions added through this builder get `prefix + label`.
  void set_label_prefix(std::string prefix) {
    label_prefix_ = std::move(prefix);
  }

  /// Adds a categorized reaction.
  ReactionId reaction(std::string_view text, RateCategory category,
                      std::string label = {});

  /// Adds a custom-rate reaction.
  ReactionId reaction(std::string_view text, double rate,
                      std::string label = {});

  /// Creates (or finds) a species and sets its initial concentration.
  SpeciesId species(std::string_view name, double initial);

  /// Creates (or finds) a species without touching its initial concentration.
  SpeciesId species(std::string_view name);

  [[nodiscard]] ReactionNetwork& network() { return *network_; }

 private:
  ReactionId add_parsed(const ParsedReaction& parsed, RateCategory category,
                        double rate, std::string label);

  ReactionNetwork* network_;
  std::string label_prefix_;
};

}  // namespace mrsc::core
