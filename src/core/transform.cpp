#include "core/transform.hpp"

#include <stdexcept>

namespace mrsc::core {

std::vector<SpeciesId> merge_network(ReactionNetwork& target,
                                     const ReactionNetwork& source,
                                     const std::string& prefix) {
  std::vector<SpeciesId> map;
  map.reserve(source.species_count());
  for (std::size_t i = 0; i < source.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    map.push_back(target.add_species(prefix + source.species_name(id),
                                     source.initial(id)));
  }
  auto remap = [&](const std::vector<Term>& terms) {
    std::vector<Term> out;
    out.reserve(terms.size());
    for (const Term& t : terms) {
      out.push_back(Term{map[t.species.index()], t.stoich});
    }
    return out;
  };
  for (const Reaction& r : source.reactions()) {
    const ReactionId id = target.add(remap(r.reactants()),
                                     remap(r.products()), r.category(),
                                     r.custom_rate(), r.label());
    target.reaction_mutable(id).set_rate_multiplier(r.rate_multiplier());
  }
  return map;
}

std::vector<SpeciesId> untouched_species(const ReactionNetwork& network) {
  std::vector<bool> touched(network.species_count(), false);
  for (const Reaction& r : network.reactions()) {
    for (const Term& t : r.reactants()) touched[t.species.index()] = true;
    for (const Term& t : r.products()) touched[t.species.index()] = true;
  }
  std::vector<SpeciesId> out;
  for (std::size_t i = 0; i < touched.size(); ++i) {
    if (!touched[i]) {
      out.push_back(SpeciesId{static_cast<SpeciesId::underlying_type>(i)});
    }
  }
  return out;
}

std::vector<SpeciesId> unreachable_species(const ReactionNetwork& network) {
  // Fixed point: a species is reachable if its initial concentration is
  // nonzero or some reaction whose reactants are all reachable produces it.
  std::vector<bool> reachable(network.species_count(), false);
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    if (network.initial(id) != 0.0) reachable[i] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Reaction& r : network.reactions()) {
      bool fireable = true;
      for (const Term& t : r.reactants()) {
        if (!reachable[t.species.index()]) {
          fireable = false;
          break;
        }
      }
      if (!fireable) continue;
      for (const Term& t : r.products()) {
        if (!reachable[t.species.index()]) {
          reachable[t.species.index()] = true;
          changed = true;
        }
      }
    }
  }
  std::vector<SpeciesId> out;
  for (std::size_t i = 0; i < reachable.size(); ++i) {
    if (!reachable[i]) {
      out.push_back(SpeciesId{static_cast<SpeciesId::underlying_type>(i)});
    }
  }
  return out;
}

}  // namespace mrsc::core
