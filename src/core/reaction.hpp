// Species and reaction value types for chemical reaction networks (CRNs).
//
// A CRN is the "machine code" of this library: every higher-level construct
// (clocks, delay elements, filters, counters) compiles down to a flat list of
// mass-action reactions over named species.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace mrsc::core {

// Re-export the id types into this namespace so users of the core layer can
// spell them core::SpeciesId / core::ReactionId.
using mrsc::ReactionId;
using mrsc::SpeciesId;

/// One species (molecular type). Concentration/count state is *not* stored
/// here; `initial` only records the default initial condition.
struct Species {
  std::string name;
  /// Default initial concentration (ODE) or scaled count basis (SSA).
  double initial = 0.0;
};

/// Coarse rate categories, the central robustness device of the paper: the
/// computation must be correct for *any* numeric rates as long as every
/// `kFast` reaction is much faster than every `kSlow` reaction.
enum class RateCategory : std::uint8_t {
  kCustom,  ///< uses the reaction's own numeric rate constant
  kSlow,    ///< resolved against RatePolicy::k_slow at simulation time
  kFast,    ///< resolved against RatePolicy::k_fast at simulation time
};

/// Returns a human-readable name ("custom"/"slow"/"fast").
[[nodiscard]] const char* to_string(RateCategory category);

/// Numeric values the coarse categories resolve to. Held by the network so a
/// robustness sweep can re-resolve every categorized rate without rebuilding.
struct RatePolicy {
  double k_slow = 1.0;
  double k_fast = 1000.0;

  [[nodiscard]] double value_of(RateCategory category,
                                double custom_rate) const {
    switch (category) {
      case RateCategory::kSlow:
        return k_slow;
      case RateCategory::kFast:
        return k_fast;
      case RateCategory::kCustom:
      default:
        return custom_rate;
    }
  }
};

/// A (species, stoichiometric coefficient) pair on one side of a reaction.
struct Term {
  SpeciesId species;
  std::uint32_t stoich = 1;

  friend bool operator==(const Term&, const Term&) = default;
};

/// One irreversible mass-action reaction. Reversible reactions are expressed
/// as two `Reaction`s. Zero reactants model a constant source (zero-order
/// kinetics); zero products model a sink.
class Reaction {
 public:
  Reaction() = default;
  Reaction(std::vector<Term> reactants, std::vector<Term> products,
           RateCategory category, double custom_rate = 0.0,
           std::string label = {})
      : reactants_(std::move(reactants)),
        products_(std::move(products)),
        category_(category),
        custom_rate_(custom_rate),
        label_(std::move(label)) {}

  [[nodiscard]] const std::vector<Term>& reactants() const {
    return reactants_;
  }
  [[nodiscard]] const std::vector<Term>& products() const { return products_; }
  [[nodiscard]] RateCategory category() const { return category_; }

  /// Numeric rate for `kCustom` reactions; ignored for categorized ones.
  [[nodiscard]] double custom_rate() const { return custom_rate_; }

  /// Per-reaction multiplicative perturbation (default 1). Robustness sweeps
  /// jitter this to model "kinetic constants are not constant at all".
  [[nodiscard]] double rate_multiplier() const { return rate_multiplier_; }
  void set_rate_multiplier(double m) { rate_multiplier_ = m; }

  /// Optional diagnostic label ("clock.r2g.seed", "dff3.writeback", ...).
  [[nodiscard]] const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Sum of reactant stoichiometries (the kinetic order of the reaction).
  [[nodiscard]] std::uint32_t order() const;

  /// Net stoichiometry change of `species` when the reaction fires once.
  [[nodiscard]] int net_change(SpeciesId species) const;

  /// True if `species` appears among the reactants.
  [[nodiscard]] bool consumes(SpeciesId species) const;
  /// True if `species` appears among the products.
  [[nodiscard]] bool produces(SpeciesId species) const;

 private:
  std::vector<Term> reactants_;
  std::vector<Term> products_;
  RateCategory category_ = RateCategory::kCustom;
  double custom_rate_ = 0.0;
  double rate_multiplier_ = 1.0;
  std::string label_;
};

}  // namespace mrsc::core
