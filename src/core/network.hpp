// ReactionNetwork: the central container of the library.
//
// Append-only tables of species and reactions plus the rate policy. All
// simulators, compilers (sync/async/DSD), and analysis tools operate on this
// type; higher layers build networks through it and hand them to `mrsc::sim`.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/reaction.hpp"
#include "util/matrix.hpp"

namespace mrsc::core {

class ReactionNetwork {
 public:
  // --- species ------------------------------------------------------------

  /// Adds a species with a unique name; throws `std::invalid_argument` on a
  /// duplicate name or empty name.
  SpeciesId add_species(std::string name, double initial = 0.0);

  /// Returns the id for `name` if present.
  [[nodiscard]] std::optional<SpeciesId> find_species(
      std::string_view name) const;

  /// Returns the id for `name`, creating the species (initial 0) if missing.
  SpeciesId ensure_species(std::string_view name);

  [[nodiscard]] const Species& species(SpeciesId id) const;
  [[nodiscard]] const std::string& species_name(SpeciesId id) const;
  [[nodiscard]] std::size_t species_count() const { return species_.size(); }

  /// Overwrites the default initial condition of `id`.
  void set_initial(SpeciesId id, double value);
  [[nodiscard]] double initial(SpeciesId id) const;

  /// Vector of default initial concentrations, indexed by SpeciesId.
  [[nodiscard]] std::vector<double> initial_state() const;

  // --- reactions ----------------------------------------------------------

  /// Adds a reaction; validates that all species ids are in range, all
  /// stoichiometric coefficients are positive, and a custom rate is positive.
  ReactionId add_reaction(Reaction reaction);

  /// Convenience: builds and adds a reaction from term lists.
  ReactionId add(std::vector<Term> reactants, std::vector<Term> products,
                 RateCategory category, double custom_rate = 0.0,
                 std::string label = {});

  [[nodiscard]] const Reaction& reaction(ReactionId id) const;
  [[nodiscard]] Reaction& reaction_mutable(ReactionId id);
  [[nodiscard]] std::size_t reaction_count() const { return reactions_.size(); }
  [[nodiscard]] std::span<const Reaction> reactions() const {
    return reactions_;
  }

  // --- rates --------------------------------------------------------------

  [[nodiscard]] const RatePolicy& rate_policy() const { return rate_policy_; }
  void set_rate_policy(const RatePolicy& policy) { rate_policy_ = policy; }

  /// Numeric rate constant of `id` after resolving its category against the
  /// policy and applying the per-reaction multiplier.
  [[nodiscard]] double effective_rate(ReactionId id) const;
  [[nodiscard]] double effective_rate(const Reaction& reaction) const;

  /// Resets every per-reaction rate multiplier to 1.
  void clear_rate_multipliers();

  // --- whole-network queries ----------------------------------------------

  /// Stoichiometric matrix S (species x reactions): S(i,j) = net change of
  /// species i when reaction j fires once.
  [[nodiscard]] util::Matrix stoichiometric_matrix() const;

  /// Maximum kinetic order over all reactions.
  [[nodiscard]] std::uint32_t max_order() const;

  /// Ids of reactions that consume or produce `species`.
  [[nodiscard]] std::vector<ReactionId> reactions_touching(
      SpeciesId species) const;

  /// Human-readable multi-line description ("X + 2 Y ->{fast} Z").
  [[nodiscard]] std::string to_string() const;

  /// One reaction rendered as text.
  [[nodiscard]] std::string reaction_to_string(ReactionId id) const;

 private:
  std::vector<Species> species_;
  std::vector<Reaction> reactions_;
  std::unordered_map<std::string, SpeciesId> name_index_;
  RatePolicy rate_policy_;
};

/// Summary statistics used by tests, benches, and the DSD blow-up table.
struct NetworkStats {
  std::size_t species = 0;
  std::size_t reactions = 0;
  std::size_t slow_reactions = 0;
  std::size_t fast_reactions = 0;
  std::size_t custom_reactions = 0;
  std::uint32_t max_order = 0;
  std::size_t zero_order_sources = 0;
};

[[nodiscard]] NetworkStats compute_stats(const ReactionNetwork& network);

}  // namespace mrsc::core
