// Whole-network transformations.
//
// Utilities for composing and auditing reaction networks: merging a network
// into another under a species-name prefix (so independently built designs
// can share one solution — the molecular analogue of design reuse), and
// detecting species no reaction ever touches.
#pragma once

#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::core {

/// Appends a copy of `source` into `target`. Every species of `source` is
/// created in `target` as `prefix + name` (throws if that collides with an
/// existing species); initial conditions, reaction categories, custom
/// rates, per-reaction multipliers, and labels are preserved. The target's
/// rate policy is left untouched. Returns, for each source species index,
/// the corresponding id in `target`.
std::vector<SpeciesId> merge_network(ReactionNetwork& target,
                                     const ReactionNetwork& source,
                                     const std::string& prefix);

/// Species that appear in no reaction at all (neither side). Such species
/// are frozen at their initial concentration; usually a design bug.
[[nodiscard]] std::vector<SpeciesId> untouched_species(
    const ReactionNetwork& network);

/// Species that can never hold a nonzero concentration: initial 0 and not
/// produced by any reaction. Reactions consuming only such species are
/// dead.
[[nodiscard]] std::vector<SpeciesId> unreachable_species(
    const ReactionNetwork& network);

}  // namespace mrsc::core
