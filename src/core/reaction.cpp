#include "core/reaction.hpp"

#include <algorithm>

namespace mrsc::core {

const char* to_string(RateCategory category) {
  switch (category) {
    case RateCategory::kCustom:
      return "custom";
    case RateCategory::kSlow:
      return "slow";
    case RateCategory::kFast:
      return "fast";
  }
  return "?";
}

std::uint32_t Reaction::order() const {
  std::uint32_t total = 0;
  for (const Term& t : reactants_) total += t.stoich;
  return total;
}

int Reaction::net_change(SpeciesId species) const {
  int change = 0;
  for (const Term& t : products_) {
    if (t.species == species) change += static_cast<int>(t.stoich);
  }
  for (const Term& t : reactants_) {
    if (t.species == species) change -= static_cast<int>(t.stoich);
  }
  return change;
}

bool Reaction::consumes(SpeciesId species) const {
  return std::ranges::any_of(
      reactants_, [&](const Term& t) { return t.species == species; });
}

bool Reaction::produces(SpeciesId species) const {
  return std::ranges::any_of(
      products_, [&](const Term& t) { return t.species == species; });
}

}  // namespace mrsc::core
