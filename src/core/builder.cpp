#include "core/builder.hpp"

#include <cctype>
#include <stdexcept>

namespace mrsc::core {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits "A + 2 B" into terms. "0" (alone) or an empty side means no terms.
std::vector<ParsedTerm> parse_side(std::string_view side) {
  side = trim(side);
  std::vector<ParsedTerm> terms;
  if (side.empty() || side == "0") return terms;

  std::size_t pos = 0;
  while (pos <= side.size()) {
    const std::size_t plus = side.find('+', pos);
    std::string_view token = (plus == std::string_view::npos)
                                 ? side.substr(pos)
                                 : side.substr(pos, plus - pos);
    token = trim(token);
    if (token.empty()) {
      throw std::invalid_argument("parse_reaction: empty term in '" +
                                  std::string(side) + "'");
    }
    // Optional leading integer coefficient, then the species name.
    std::uint32_t stoich = 1;
    std::size_t i = 0;
    while (i < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[i]))) {
      ++i;
    }
    if (i > 0) {
      stoich = static_cast<std::uint32_t>(
          std::stoul(std::string(token.substr(0, i))));
      if (stoich == 0) {
        throw std::invalid_argument(
            "parse_reaction: zero stoichiometric coefficient");
      }
    }
    std::string_view name = trim(token.substr(i));
    if (name.empty()) {
      throw std::invalid_argument("parse_reaction: missing species name in '" +
                                  std::string(token) + "'");
    }
    terms.push_back(ParsedTerm{std::string(name), stoich});

    if (plus == std::string_view::npos) break;
    pos = plus + 1;
  }
  return terms;
}

}  // namespace

ParsedReaction parse_reaction(std::string_view text) {
  const std::size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    throw std::invalid_argument("parse_reaction: missing '->' in '" +
                                std::string(text) + "'");
  }
  if (text.find("->", arrow + 2) != std::string_view::npos) {
    throw std::invalid_argument("parse_reaction: multiple '->' in '" +
                                std::string(text) + "'");
  }
  ParsedReaction parsed;
  parsed.reactants = parse_side(text.substr(0, arrow));
  parsed.products = parse_side(text.substr(arrow + 2));
  if (parsed.reactants.empty() && parsed.products.empty()) {
    throw std::invalid_argument("parse_reaction: reaction with no terms");
  }
  return parsed;
}

ReactionId NetworkBuilder::reaction(std::string_view text,
                                    RateCategory category, std::string label) {
  return add_parsed(parse_reaction(text), category, 0.0, std::move(label));
}

ReactionId NetworkBuilder::reaction(std::string_view text, double rate,
                                    std::string label) {
  return add_parsed(parse_reaction(text), RateCategory::kCustom, rate,
                    std::move(label));
}

SpeciesId NetworkBuilder::species(std::string_view name, double initial) {
  const SpeciesId id = network_->ensure_species(name);
  network_->set_initial(id, initial);
  return id;
}

SpeciesId NetworkBuilder::species(std::string_view name) {
  return network_->ensure_species(name);
}

ReactionId NetworkBuilder::add_parsed(const ParsedReaction& parsed,
                                      RateCategory category, double rate,
                                      std::string label) {
  auto resolve = [&](const std::vector<ParsedTerm>& in) {
    std::vector<Term> out;
    out.reserve(in.size());
    for (const ParsedTerm& t : in) {
      out.push_back(Term{network_->ensure_species(t.name), t.stoich});
    }
    return out;
  };
  std::string full_label =
      label.empty() ? label_prefix_ : label_prefix_ + label;
  // Resolve left side first so species ids follow textual order (argument
  // evaluation order inside a call is unspecified).
  std::vector<Term> reactants = resolve(parsed.reactants);
  std::vector<Term> products = resolve(parsed.products);
  return network_->add(std::move(reactants), std::move(products), category,
                       rate, std::move(full_label));
}

}  // namespace mrsc::core
