#include "core/network.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mrsc::core {

SpeciesId ReactionNetwork::add_species(std::string name, double initial) {
  if (name.empty()) {
    throw std::invalid_argument("add_species: empty species name");
  }
  if (name_index_.contains(name)) {
    throw std::invalid_argument("add_species: duplicate species name '" +
                                name + "'");
  }
  const SpeciesId id{static_cast<SpeciesId::underlying_type>(species_.size())};
  name_index_.emplace(name, id);
  species_.push_back(Species{std::move(name), initial});
  return id;
}

std::optional<SpeciesId> ReactionNetwork::find_species(
    std::string_view name) const {
  const auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

SpeciesId ReactionNetwork::ensure_species(std::string_view name) {
  if (const auto existing = find_species(name)) return *existing;
  return add_species(std::string(name));
}

const Species& ReactionNetwork::species(SpeciesId id) const {
  if (!id.valid() || id.index() >= species_.size()) {
    throw std::out_of_range("species: invalid SpeciesId");
  }
  return species_[id.index()];
}

const std::string& ReactionNetwork::species_name(SpeciesId id) const {
  return species(id).name;
}

void ReactionNetwork::set_initial(SpeciesId id, double value) {
  if (!id.valid() || id.index() >= species_.size()) {
    throw std::out_of_range("set_initial: invalid SpeciesId");
  }
  species_[id.index()].initial = value;
}

double ReactionNetwork::initial(SpeciesId id) const {
  return species(id).initial;
}

std::vector<double> ReactionNetwork::initial_state() const {
  std::vector<double> state(species_.size());
  for (std::size_t i = 0; i < species_.size(); ++i) {
    state[i] = species_[i].initial;
  }
  return state;
}

ReactionId ReactionNetwork::add_reaction(Reaction reaction) {
  auto check_terms = [&](const std::vector<Term>& terms, const char* side) {
    for (const Term& t : terms) {
      if (!t.species.valid() || t.species.index() >= species_.size()) {
        throw std::invalid_argument(std::string("add_reaction: unknown ") +
                                    side + " species id");
      }
      if (t.stoich == 0) {
        throw std::invalid_argument(
            std::string("add_reaction: zero stoichiometry on ") + side);
      }
    }
  };
  check_terms(reaction.reactants(), "reactant");
  check_terms(reaction.products(), "product");
  if (reaction.category() == RateCategory::kCustom &&
      reaction.custom_rate() <= 0.0) {
    throw std::invalid_argument(
        "add_reaction: custom-rate reaction needs a positive rate");
  }
  if (reaction.reactants().empty() && reaction.products().empty()) {
    throw std::invalid_argument("add_reaction: reaction with no terms");
  }
  const ReactionId id{
      static_cast<ReactionId::underlying_type>(reactions_.size())};
  reactions_.push_back(std::move(reaction));
  return id;
}

ReactionId ReactionNetwork::add(std::vector<Term> reactants,
                                std::vector<Term> products,
                                RateCategory category, double custom_rate,
                                std::string label) {
  return add_reaction(Reaction(std::move(reactants), std::move(products),
                               category, custom_rate, std::move(label)));
}

const Reaction& ReactionNetwork::reaction(ReactionId id) const {
  if (!id.valid() || id.index() >= reactions_.size()) {
    throw std::out_of_range("reaction: invalid ReactionId");
  }
  return reactions_[id.index()];
}

Reaction& ReactionNetwork::reaction_mutable(ReactionId id) {
  if (!id.valid() || id.index() >= reactions_.size()) {
    throw std::out_of_range("reaction_mutable: invalid ReactionId");
  }
  return reactions_[id.index()];
}

double ReactionNetwork::effective_rate(ReactionId id) const {
  return effective_rate(reaction(id));
}

double ReactionNetwork::effective_rate(const Reaction& reaction) const {
  return rate_policy_.value_of(reaction.category(), reaction.custom_rate()) *
         reaction.rate_multiplier();
}

void ReactionNetwork::clear_rate_multipliers() {
  for (Reaction& r : reactions_) r.set_rate_multiplier(1.0);
}

util::Matrix ReactionNetwork::stoichiometric_matrix() const {
  util::Matrix s(species_.size(), reactions_.size());
  for (std::size_t j = 0; j < reactions_.size(); ++j) {
    for (const Term& t : reactions_[j].products()) {
      s(t.species.index(), j) += static_cast<double>(t.stoich);
    }
    for (const Term& t : reactions_[j].reactants()) {
      s(t.species.index(), j) -= static_cast<double>(t.stoich);
    }
  }
  return s;
}

std::uint32_t ReactionNetwork::max_order() const {
  std::uint32_t order = 0;
  for (const Reaction& r : reactions_) order = std::max(order, r.order());
  return order;
}

std::vector<ReactionId> ReactionNetwork::reactions_touching(
    SpeciesId species) const {
  std::vector<ReactionId> out;
  for (std::size_t j = 0; j < reactions_.size(); ++j) {
    const Reaction& r = reactions_[j];
    if (r.consumes(species) || r.produces(species)) {
      out.push_back(ReactionId{static_cast<ReactionId::underlying_type>(j)});
    }
  }
  return out;
}

std::string ReactionNetwork::reaction_to_string(ReactionId id) const {
  const Reaction& r = reaction(id);
  std::ostringstream out;
  auto print_side = [&](const std::vector<Term>& terms) {
    if (terms.empty()) {
      out << "0";
      return;
    }
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) out << " + ";
      if (terms[i].stoich != 1) out << terms[i].stoich << " ";
      out << species_name(terms[i].species);
    }
  };
  print_side(r.reactants());
  out << " ->{" << core::to_string(r.category());
  if (r.category() == RateCategory::kCustom) out << " " << r.custom_rate();
  if (r.rate_multiplier() != 1.0) out << " x" << r.rate_multiplier();
  out << "} ";
  print_side(r.products());
  if (!r.label().empty()) out << "   # " << r.label();
  return out.str();
}

std::string ReactionNetwork::to_string() const {
  std::ostringstream out;
  out << "ReactionNetwork: " << species_.size() << " species, "
      << reactions_.size() << " reactions (k_slow=" << rate_policy_.k_slow
      << ", k_fast=" << rate_policy_.k_fast << ")\n";
  for (std::size_t i = 0; i < species_.size(); ++i) {
    if (species_[i].initial != 0.0) {
      out << "  init " << species_[i].name << " = " << species_[i].initial
          << "\n";
    }
  }
  for (std::size_t j = 0; j < reactions_.size(); ++j) {
    out << "  "
        << reaction_to_string(
               ReactionId{static_cast<ReactionId::underlying_type>(j)})
        << "\n";
  }
  return out.str();
}

NetworkStats compute_stats(const ReactionNetwork& network) {
  NetworkStats stats;
  stats.species = network.species_count();
  stats.reactions = network.reaction_count();
  for (const Reaction& r : network.reactions()) {
    switch (r.category()) {
      case RateCategory::kSlow:
        ++stats.slow_reactions;
        break;
      case RateCategory::kFast:
        ++stats.fast_reactions;
        break;
      case RateCategory::kCustom:
        ++stats.custom_reactions;
        break;
    }
    stats.max_order = std::max(stats.max_order, r.order());
    if (r.reactants().empty()) ++stats.zero_order_sources;
  }
  return stats;
}

}  // namespace mrsc::core
