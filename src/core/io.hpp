// Plain-text serialization of reaction networks.
//
// Format (one item per line, '#' starts a comment):
//
//   @rates slow=1 fast=1000
//   @species X 1.0
//   @species G1 0
//   slow : b + R1 -> G1 | clock.seed
//   fast : 2 G1 -> I_G1
//   2.5  : A -> 0
//   slow*0.25 : 0 -> I_G1 | clock.ind
//
// A rate spec may carry a "*<multiplier>" suffix: the reaction's rate is the
// category rate (or custom rate) scaled by that factor. The stretched clock
// hop seeds and the coalescing pass's summed duplicates round-trip this way.
//
// Species lines are emitted for *every* species in id order so that parsing a
// serialized network reproduces identical SpeciesId assignments (round-trip
// stability), which the tests rely on.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/network.hpp"

namespace mrsc::core {

/// Renders `network` in the text format above.
[[nodiscard]] std::string serialize_network(const ReactionNetwork& network);

/// Parses the text format; throws `std::invalid_argument` with a line number
/// on malformed input.
[[nodiscard]] ReactionNetwork parse_network(std::string_view text);

/// Writes `serialize_network(network)` to a file; throws on I/O failure.
void save_network(const ReactionNetwork& network, const std::string& path);

/// Reads and parses a network file; throws on I/O or parse failure.
[[nodiscard]] ReactionNetwork load_network(const std::string& path);

}  // namespace mrsc::core
