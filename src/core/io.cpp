#include "core/io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/builder.hpp"

namespace mrsc::core {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

void format_side(std::ostringstream& out, const ReactionNetwork& network,
                 const std::vector<Term>& terms) {
  if (terms.empty()) {
    out << "0";
    return;
  }
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out << " + ";
    if (terms[i].stoich != 1) out << terms[i].stoich << " ";
    out << network.species_name(terms[i].species);
  }
}

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  throw std::invalid_argument("parse_network: line " +
                              std::to_string(line_number) + ": " + message);
}

}  // namespace

std::string serialize_network(const ReactionNetwork& network) {
  std::ostringstream out;
  out << "# mrsc reaction network\n";
  out << "@rates slow=" << network.rate_policy().k_slow
      << " fast=" << network.rate_policy().k_fast << "\n";
  for (std::size_t i = 0; i < network.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    out << "@species " << network.species_name(id) << " "
        << network.initial(id) << "\n";
  }
  for (const Reaction& r : network.reactions()) {
    switch (r.category()) {
      case RateCategory::kSlow:
        out << "slow";
        break;
      case RateCategory::kFast:
        out << "fast";
        break;
      case RateCategory::kCustom:
        out << r.custom_rate();
        break;
    }
    // Rate multipliers ("slow*0.25 : ...") carry the clock's stretched hop
    // seeds and the coalescing pass's summed duplicates through a round-trip.
    if (r.rate_multiplier() != 1.0) out << "*" << r.rate_multiplier();
    out << " : ";
    format_side(out, network, r.reactants());
    out << " -> ";
    format_side(out, network, r.products());
    if (!r.label().empty()) out << " | " << r.label();
    out << "\n";
  }
  return out.str();
}

ReactionNetwork parse_network(std::string_view text) {
  ReactionNetwork network;
  NetworkBuilder builder(network);

  std::istringstream stream{std::string(text)};
  std::string raw_line;
  std::size_t line_number = 0;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    std::string_view line = raw_line;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    if (line.starts_with("@rates")) {
      RatePolicy policy = network.rate_policy();
      std::istringstream fields{std::string(line.substr(6))};
      std::string field;
      while (fields >> field) {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) fail(line_number, "bad @rates field");
        const std::string key = field.substr(0, eq);
        const double value = std::stod(field.substr(eq + 1));
        if (key == "slow") {
          policy.k_slow = value;
        } else if (key == "fast") {
          policy.k_fast = value;
        } else {
          fail(line_number, "unknown @rates key '" + key + "'");
        }
      }
      network.set_rate_policy(policy);
      continue;
    }

    if (line.starts_with("@species")) {
      std::istringstream fields{std::string(line.substr(8))};
      std::string name;
      double initial = 0.0;
      if (!(fields >> name)) fail(line_number, "missing species name");
      fields >> initial;  // optional; stays 0 if absent
      if (network.find_species(name)) {
        fail(line_number, "duplicate species '" + name + "'");
      }
      network.add_species(name, initial);
      continue;
    }

    // Reaction line: "<rate-spec> : <reaction>" with optional "| label".
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      fail(line_number, "expected '<rate> : <reaction>'");
    }
    std::string rate_spec{trim(line.substr(0, colon))};
    std::string_view rest = trim(line.substr(colon + 1));
    std::string label;
    if (const std::size_t bar = rest.find('|');
        bar != std::string_view::npos) {
      label = std::string(trim(rest.substr(bar + 1)));
      rest = trim(rest.substr(0, bar));
    }
    // Optional "*<multiplier>" suffix on the rate spec.
    double multiplier = 1.0;
    if (const std::size_t star = rate_spec.find('*');
        star != std::string::npos) {
      try {
        multiplier = std::stod(rate_spec.substr(star + 1));
      } catch (const std::exception&) {
        fail(line_number, "bad rate multiplier '" + rate_spec + "'");
      }
      rate_spec = std::string(trim(
          std::string_view(rate_spec).substr(0, star)));
    }
    try {
      ReactionId id;
      if (rate_spec == "slow") {
        id = builder.reaction(rest, RateCategory::kSlow, label);
      } else if (rate_spec == "fast") {
        id = builder.reaction(rest, RateCategory::kFast, label);
      } else {
        id = builder.reaction(rest, std::stod(rate_spec), label);
      }
      if (multiplier != 1.0) {
        network.reaction_mutable(id).set_rate_multiplier(multiplier);
      }
    } catch (const std::exception& error) {
      fail(line_number, error.what());
    }
  }
  return network;
}

void save_network(const ReactionNetwork& network, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("save_network: cannot open '" + path + "'");
  }
  file << serialize_network(network);
  if (!file) {
    throw std::runtime_error("save_network: write failed for '" + path + "'");
  }
}

ReactionNetwork load_network(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("load_network: cannot open '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return parse_network(content.str());
}

}  // namespace mrsc::core
