#include "dna/dsd.hpp"

#include <stdexcept>

namespace mrsc::dna {

namespace {
using core::RateCategory;
using core::SpeciesId;
using core::Term;
}  // namespace

DsdCompilation compile_to_dsd(const core::ReactionNetwork& formal,
                              const DsdOptions& options) {
  if (options.fuel_initial <= 0.0 || options.q_max <= 0.0) {
    throw std::invalid_argument(
        "compile_to_dsd: fuel_initial and q_max must be positive");
  }
  DsdCompilation out;
  out.original_stats = core::compute_stats(formal);

  // Signal species carry over with their names and initial conditions.
  out.signal_map.reserve(formal.species_count());
  for (std::size_t i = 0; i < formal.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    out.signal_map.push_back(
        out.network.add_species(formal.species_name(id), formal.initial(id)));
  }

  const double c0 = options.fuel_initial;
  auto map_terms = [&](const std::vector<Term>& terms) {
    std::vector<Term> mapped;
    mapped.reserve(terms.size());
    for (const Term& t : terms) {
      mapped.push_back(Term{out.signal_map[t.species.index()], t.stoich});
    }
    return mapped;
  };

  for (std::size_t j = 0; j < formal.reaction_count(); ++j) {
    const core::ReactionId rid{
        static_cast<core::ReactionId::underlying_type>(j)};
    const core::Reaction& r = formal.reaction(rid);
    const double k = formal.effective_rate(r);
    const std::string gate = "g" + std::to_string(j);
    const std::string tag = "dsd." + gate;

    // Expand stoichiometric coefficients into a flat reactant list.
    std::vector<SpeciesId> reactants;
    for (const Term& t : r.reactants()) {
      for (std::uint32_t s = 0; s < t.stoich; ++s) {
        reactants.push_back(out.signal_map[t.species.index()]);
      }
    }
    if (reactants.size() > 2) {
      throw std::invalid_argument(
          "compile_to_dsd: reaction '" + formal.reaction_to_string(rid) +
          "' has order >= 3; decompose it into bimolecular steps first");
    }

    std::vector<Term> products = map_terms(r.products());
    const SpeciesId translator =
        out.network.add_species(gate + "_T", c0);
    out.fuels.push_back(translator);
    const SpeciesId output_strand = out.network.add_species(gate + "_O");
    std::vector<Term> final_products = products;
    if (options.track_waste) {
      const SpeciesId waste = out.network.add_species(gate + "_W");
      final_products.push_back(Term{waste, 1});
    }
    // Final translation step: O + T -> products (+ waste).
    out.network.add({{output_strand, 1}, {translator, 1}},
                    std::move(final_products), RateCategory::kCustom,
                    options.q_max, tag + ".translate");

    if (reactants.empty()) {
      // 0 -> products : G ->(k/C0) O.
      const SpeciesId source_gate = out.network.add_species(gate + "_G", c0);
      out.fuels.push_back(source_gate);
      out.network.add({{source_gate, 1}}, {{output_strand, 1}},
                      RateCategory::kCustom, k / c0, tag + ".source");
    } else if (reactants.size() == 1) {
      // X -> products : X + G ->(k/C0) O.
      const SpeciesId gate_fuel = out.network.add_species(gate + "_G", c0);
      out.fuels.push_back(gate_fuel);
      out.network.add({{reactants[0], 1}, {gate_fuel, 1}},
                      {{output_strand, 1}}, RateCategory::kCustom, k / c0,
                      tag + ".displace");
    } else {
      // X + Y -> products :
      //   X + L <->(k, qmax) H + B ;  H + Y ->(qmax) O.
      const SpeciesId link = out.network.add_species(gate + "_L", c0);
      const SpeciesId half = out.network.add_species(gate + "_H");
      const SpeciesId buffer = out.network.add_species(gate + "_B", c0);
      out.fuels.push_back(link);
      out.network.add({{reactants[0], 1}, {link, 1}},
                      {{half, 1}, {buffer, 1}}, RateCategory::kCustom, k,
                      tag + ".bind");
      out.network.add({{half, 1}, {buffer, 1}},
                      {{reactants[0], 1}, {link, 1}}, RateCategory::kCustom,
                      options.q_max, tag + ".unbind");
      out.network.add({{half, 1}, {reactants[1], 1}}, {{output_strand, 1}},
                      RateCategory::kCustom, options.q_max, tag + ".react");
    }
  }

  out.compiled_stats = core::compute_stats(out.network);
  return out;
}

}  // namespace mrsc::dna
