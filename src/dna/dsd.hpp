// CRN -> DNA strand displacement (DSD) compilation.
//
// The paper proposes DNA strand displacement as the experimental chassis for
// its constructions ("We are exploring DNA-based computation via strand
// displacement as a possible experimental chassis"). This module implements
// the standard Soloveichik/Seelig/Winfree (PNAS 2010) translation at the
// reaction-abstraction level: every formal reaction of order <= 2 becomes a
// small cascade of strand-displacement steps driven by *fuel* complexes held
// at a large initial concentration C0.
//
//   0  ->k P...   :   G + .      ->(k/C0)  O        ; O + T ->(qmax) P...
//   X  ->k P...   :   X + G      ->(k/C0)  O        ; O + T ->(qmax) P...
//   X+Y ->k P...  :   X + L     <->(k,qmax) H + B   ; H + Y ->(qmax) O ;
//                     O + T      ->(qmax)  P...
//
// G/L/T are fuels (initial C0); B is the buffering strand (pre-loaded at C0
// so the first step is in quasi-equilibrium from t=0); O/H are intermediates;
// a waste species per gate absorbs the spent strands. While fuels remain near
// C0 the compiled network's kinetics match the formal network's; as fuels
// deplete, fidelity degrades — exactly the deviation the T3 experiment
// measures as a function of C0.
//
// Reactions of order >= 3 (e.g. the iterative multiplier's `Q + 2 xg` guard)
// are rejected: they must be decomposed into bimolecular steps first, as in
// the wet-lab practice this models.
#pragma once

#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::dna {

struct DsdOptions {
  /// Initial fuel concentration C0. Should exceed the total signal quantity
  /// by a comfortable factor; fidelity improves with C0.
  double fuel_initial = 100.0;
  /// Rate constant of the "fast" displacement steps; should exceed every
  /// effective formal rate by a large factor.
  double q_max = 1.0e6;
  /// Track waste species explicitly (adds one species per gate).
  bool track_waste = true;
};

struct DsdCompilation {
  /// The compiled network. Formal (signal) species keep their names, so
  /// `network.find_species(name)` maps between the two networks.
  core::ReactionNetwork network;
  /// For original species index i, the corresponding id in `network`.
  std::vector<core::SpeciesId> signal_map;
  /// All fuel species (for depletion monitoring).
  std::vector<core::SpeciesId> fuels;
  /// Size bookkeeping for the blow-up table.
  core::NetworkStats original_stats;
  core::NetworkStats compiled_stats;
};

/// Compiles `formal` (using its current rate policy to resolve effective
/// rates). Throws `std::invalid_argument` if a reaction has order >= 3 or if
/// options are out of range.
[[nodiscard]] DsdCompilation compile_to_dsd(const core::ReactionNetwork& formal,
                                            const DsdOptions& options = {});

}  // namespace mrsc::dna
