// Rate-independent combinational modules.
//
// These are the memoryless building blocks of the paper's framework (cf.
// Jiang/Kharam/Riedel/Parhi ICCAD'10 and Senum/Riedel PSB'11): each operation
// is a small set of reactions that transfers quantities between molecular
// types. Crucially, every module *consumes* its inputs — values move, they are
// not copied — which is exactly what the synchronous compiler exploits for
// its master/slave register discipline.
//
// Each emitter optionally takes a catalyst species: when given, every emitted
// transfer reaction is catalyzed by it (the species appears unchanged on both
// sides), which is how the clock gates computation to a phase.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace mrsc::modules {

/// Options shared by the emitters.
struct EmitOptions {
  core::RateCategory category = core::RateCategory::kFast;
  /// When set, the catalyst is added to both sides of every emitted reaction.
  std::optional<core::SpeciesId> catalyst;
  /// Label prefix for the emitted reactions.
  std::string label;
};

/// y := x   (transfer: X -> Y).
void transfer(core::ReactionNetwork& network, core::SpeciesId from,
              core::SpeciesId to, const EmitOptions& options = {});

/// Duplication / fan-out: every unit of X becomes one unit of *each* output
/// (X -> Y1 + Y2 + ...). This is how one value feeds several consumers.
void duplicate(core::ReactionNetwork& network, core::SpeciesId from,
               std::span<const core::SpeciesId> outputs,
               const EmitOptions& options = {});

/// z := x + y   (X -> Z, Y -> Z).
void add_into(core::ReactionNetwork& network, core::SpeciesId a,
              core::SpeciesId b, core::SpeciesId out,
              const EmitOptions& options = {});

/// y := c * x for integer c >= 1   (X -> c Y).
void scale_by_integer(core::ReactionNetwork& network, core::SpeciesId from,
                      core::SpeciesId to, std::uint32_t factor,
                      const EmitOptions& options = {});

/// y := x / 2   (2 X -> Y). Second-order; exact in the mass-action limit.
void halve(core::ReactionNetwork& network, core::SpeciesId from,
           core::SpeciesId to, const EmitOptions& options = {});

/// y := x * num / 2^halvings. Builds the intermediate species it needs
/// (named `<prefix>_s0`, `<prefix>_s1`, ...). Emits scale_by_integer once
/// followed by `halvings` halving stages, so any dyadic-rational coefficient
/// is expressible. Returns nothing; `to` receives the scaled value.
void scale_dyadic(core::ReactionNetwork& network, core::SpeciesId from,
                  core::SpeciesId to, std::uint32_t numerator,
                  std::uint32_t halvings, const std::string& prefix,
                  const EmitOptions& options = {});

/// m := min(x, y)   (X + Y -> M): pairs one unit of each input; the smaller
/// input is exhausted first, leaving |x - y| of the larger behind.
void min_into(core::ReactionNetwork& network, core::SpeciesId a,
              core::SpeciesId b, core::SpeciesId out,
              const EmitOptions& options = {});

/// Annihilation (X + Y -> 0): after it runs to completion the surviving
/// species holds |x - y|; with (X, Y) as a dual-rail signed pair this is
/// signed subtraction/normalization.
void annihilate(core::ReactionNetwork& network, core::SpeciesId a,
                core::SpeciesId b, const EmitOptions& options = {});

/// diff := max(x - y, 0) computed destructively: X -> D, then D + Y -> 0.
/// (`y` must not be needed elsewhere.)
void subtract_saturating(core::ReactionNetwork& network, core::SpeciesId x,
                         core::SpeciesId y, core::SpeciesId diff,
                         const EmitOptions& options = {});

}  // namespace mrsc::modules
