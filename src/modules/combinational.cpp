#include "modules/combinational.hpp"

#include <stdexcept>

namespace mrsc::modules {

namespace {

using core::ReactionNetwork;
using core::SpeciesId;
using core::Term;

/// Builds a reaction with the optional catalyst added to both sides.
void emit(ReactionNetwork& network, std::vector<Term> reactants,
          std::vector<Term> products, const EmitOptions& options,
          const char* suffix) {
  if (options.catalyst) {
    reactants.push_back(Term{*options.catalyst, 1});
    products.push_back(Term{*options.catalyst, 1});
  }
  std::string label = options.label;
  if (!label.empty()) label += ".";
  label += suffix;
  network.add(std::move(reactants), std::move(products), options.category, 0.0,
              std::move(label));
}

}  // namespace

void transfer(ReactionNetwork& network, SpeciesId from, SpeciesId to,
              const EmitOptions& options) {
  emit(network, {{from, 1}}, {{to, 1}}, options, "transfer");
}

void duplicate(ReactionNetwork& network, SpeciesId from,
               std::span<const SpeciesId> outputs,
               const EmitOptions& options) {
  if (outputs.empty()) {
    throw std::invalid_argument("duplicate: need at least one output");
  }
  std::vector<Term> products;
  products.reserve(outputs.size());
  for (const SpeciesId out : outputs) products.push_back(Term{out, 1});
  emit(network, {{from, 1}}, std::move(products), options, "duplicate");
}

void add_into(ReactionNetwork& network, SpeciesId a, SpeciesId b,
              SpeciesId out, const EmitOptions& options) {
  emit(network, {{a, 1}}, {{out, 1}}, options, "add.lhs");
  emit(network, {{b, 1}}, {{out, 1}}, options, "add.rhs");
}

void scale_by_integer(ReactionNetwork& network, SpeciesId from, SpeciesId to,
                      std::uint32_t factor, const EmitOptions& options) {
  if (factor == 0) {
    throw std::invalid_argument("scale_by_integer: factor must be >= 1");
  }
  emit(network, {{from, 1}}, {{to, factor}}, options, "scale");
}

void halve(ReactionNetwork& network, SpeciesId from, SpeciesId to,
           const EmitOptions& options) {
  emit(network, {{from, 2}}, {{to, 1}}, options, "halve");
}

void scale_dyadic(ReactionNetwork& network, SpeciesId from, SpeciesId to,
                  std::uint32_t numerator, std::uint32_t halvings,
                  const std::string& prefix, const EmitOptions& options) {
  if (numerator == 0) {
    throw std::invalid_argument("scale_dyadic: numerator must be >= 1");
  }
  SpeciesId current = from;
  // Integer scale first (if trivial, skip the extra hop only when there are
  // also no halvings, otherwise we can fold it into the first stage).
  if (halvings == 0) {
    scale_by_integer(network, current, to, numerator, options);
    return;
  }
  if (numerator != 1) {
    const SpeciesId scaled =
        network.add_species(prefix + "_s0");
    scale_by_integer(network, current, scaled, numerator, options);
    current = scaled;
  }
  for (std::uint32_t stage = 1; stage <= halvings; ++stage) {
    const SpeciesId next =
        (stage == halvings)
            ? to
            : network.add_species(prefix + "_s" + std::to_string(stage));
    halve(network, current, next, options);
    current = next;
  }
}

void min_into(ReactionNetwork& network, SpeciesId a, SpeciesId b,
              SpeciesId out, const EmitOptions& options) {
  emit(network, {{a, 1}, {b, 1}}, {{out, 1}}, options, "min");
}

void annihilate(ReactionNetwork& network, SpeciesId a, SpeciesId b,
                const EmitOptions& options) {
  emit(network, {{a, 1}, {b, 1}}, {}, options, "annihilate");
}

void subtract_saturating(ReactionNetwork& network, SpeciesId x, SpeciesId y,
                         SpeciesId diff, const EmitOptions& options) {
  transfer(network, x, diff, options);
  annihilate(network, diff, y, options);
}

}  // namespace mrsc::modules
