#include "modules/multiply.hpp"

#include "core/builder.hpp"

namespace mrsc::modules {

namespace {

using core::RateCategory;

/// Emits the common loop skeleton. `dump_products` describes what one unit of
/// X becomes during the dump phase (e.g. "X2 + Z" for multiply, "2 X2" for
/// doubling).
void emit_loop(core::NetworkBuilder& builder, const std::string& p,
               const std::string& dump_products) {
  // Enter an iteration by consuming one loop-counter token.
  builder.reaction(p + "_P + " + p + "_Y -> " + p + "_Q",
                   RateCategory::kFast, "enter");
  // Dump X (catalyzed by Q).
  builder.reaction(p + "_Q + " + p + "_X -> " + p + "_Q + " + dump_products,
                   RateCategory::kFast, "dump");
  // Absence indicator of X.
  builder.reaction("0 -> " + p + "_xg", RateCategory::kSlow, "xg.gen");
  builder.reaction(p + "_xg + " + p + "_X -> " + p + "_X",
                   RateCategory::kFast, "xg.absorb");
  // X exhausted -> restore phase.
  builder.reaction(p + "_Q + 2 " + p + "_xg -> " + p + "_Pb",
                   RateCategory::kSlow, "advance.dump");
  // Restore X from X2 (catalyzed by Pb).
  builder.reaction(p + "_Pb + " + p + "_X2 -> " + p + "_Pb + " + p + "_X",
                   RateCategory::kFast, "restore");
  // Absence indicator of X2.
  builder.reaction("0 -> " + p + "_x2g", RateCategory::kSlow, "x2g.gen");
  builder.reaction(p + "_x2g + " + p + "_X2 -> " + p + "_X2",
                   RateCategory::kFast, "x2g.absorb");
  // Restore finished -> back to idle, ready for the next iteration.
  builder.reaction(p + "_Pb + 2 " + p + "_x2g -> " + p + "_P",
                   RateCategory::kSlow, "advance.restore");
}

}  // namespace

MultiplierHandles build_multiplier(core::ReactionNetwork& network,
                                   const std::string& prefix) {
  core::NetworkBuilder builder(network);
  builder.set_label_prefix(prefix + ".");
  // The idle token P starts present (one copy).
  builder.species(prefix + "_P", 1.0);
  emit_loop(builder, prefix, prefix + "_X2 + " + prefix + "_Z");

  MultiplierHandles handles;
  handles.x = builder.species(prefix + "_X");
  handles.x2 = builder.species(prefix + "_X2");
  handles.y = builder.species(prefix + "_Y");
  handles.z = builder.species(prefix + "_Z");
  handles.token_idle = builder.species(prefix + "_P");
  handles.token_dump = builder.species(prefix + "_Q");
  handles.token_restore = builder.species(prefix + "_Pb");
  return handles;
}

PowerOfTwoHandles build_times_power2(core::ReactionNetwork& network,
                                     const std::string& prefix) {
  core::NetworkBuilder builder(network);
  builder.set_label_prefix(prefix + ".");
  builder.species(prefix + "_P", 1.0);
  emit_loop(builder, prefix, "2 " + prefix + "_X2");

  PowerOfTwoHandles handles;
  handles.x = builder.species(prefix + "_X");
  handles.x2 = builder.species(prefix + "_X2");
  handles.k = builder.species(prefix + "_Y");
  handles.token_idle = builder.species(prefix + "_P");
  handles.token_dump = builder.species(prefix + "_Q");
  handles.token_restore = builder.species(prefix + "_Pb");
  return handles;
}

}  // namespace mrsc::modules
