// Iterative (loop-based) modules: multiplication and power-of-two scaling.
//
// The companion abstract notes that operations like multiplication and
// exponentiation "can be implemented with reactions that implement iterative
// constructs analogous to 'for' and 'while' loops" (citing Senum/Riedel PSB
// 2011). These loops operate on *discrete* molecule counts: each iteration
// consumes exactly one token of the loop counter and is sequenced by absence
// indicators. They are rate-independent in the same coarse fast/slow sense as
// the rest of the framework.
//
// Semantics (discrete, exact under stochastic simulation):
//   multiply:      Z += X * Y   (X preserved up to ping-pong renaming,
//                                Y consumed)
//   times_power2:  Z  = X * 2^K (X and K consumed)
//
// Loop skeleton for `multiply`:
//   P + Y            ->fast  Q            (enter iteration, consume one Y)
//   Q + X            ->fast  Q + X2 + Z   (dump X into X2, adding to Z)
//   0                ->slow  xg           \  absence indicator of X
//   xg + X           ->fast  X            /
//   Q + 2 xg         ->slow  Pb           (X exhausted -> start restore)
//   Pb + X2          ->fast  Pb + X       (restore X from X2)
//   0                ->slow  x2g          \  absence indicator of X2
//   x2g + X2         ->fast  X2           /
//   Pb + 2 x2g       ->slow  P            (restore done -> next iteration)
//
// The `2 xg` / `2 x2g` guards reduce the probability of a premature phase
// advance from an indicator molecule left over at a phase boundary; the
// residual hazard probability shrinks with k_fast/k_slow, which is the
// framework's usual robustness knob.
//
// Note: like the Senum/Riedel originals, these modules compute exactly on
// discrete counts (SSA); a deterministic ODE run only approximates them,
// because the single-molecule loop tokens P/Q have no faithful continuum
// limit. Tests therefore validate them under SSA.
#pragma once

#include <string>

#include "core/network.hpp"

namespace mrsc::modules {

/// Handles of a multiplier instance.
struct MultiplierHandles {
  core::SpeciesId x;   ///< multiplicand (preserved)
  core::SpeciesId x2;  ///< ping-pong partner of x
  core::SpeciesId y;   ///< multiplier (consumed; loop counter)
  core::SpeciesId z;   ///< accumulates x*y
  core::SpeciesId token_idle;     ///< P: holds between iterations (init 1)
  core::SpeciesId token_dump;     ///< Q
  core::SpeciesId token_restore;  ///< Pb
};

/// Emits the iterative multiplier; species are created as `<prefix>_...`.
MultiplierHandles build_multiplier(core::ReactionNetwork& network,
                                   const std::string& prefix);

/// Handles of a power-of-two scaler instance.
struct PowerOfTwoHandles {
  core::SpeciesId x;   ///< input value (consumed into the result)
  core::SpeciesId x2;  ///< ping-pong partner
  core::SpeciesId k;   ///< exponent (consumed; loop counter)
  core::SpeciesId token_idle;
  core::SpeciesId token_dump;
  core::SpeciesId token_restore;
};

/// Emits the iterative doubler computing x * 2^k (result ends in `x` after an
/// even number of iterations, in `x2` after an odd number; use
/// `result_species` with the known k to pick, or sum both).
PowerOfTwoHandles build_times_power2(core::ReactionNetwork& network,
                                     const std::string& prefix);

}  // namespace mrsc::modules
