// Comparator module (completes the Senum/Riedel-style module family).
//
// Compares two quantities destructively and emits a single decision token:
//
//   A + B   ->fast  0            (pairwise cancellation)
//   0       ->slow  ia ; ia + A ->fast A     (absence indicator of A)
//   0       ->slow  ib ; ib + B ->fast B     (absence indicator of B)
//   P + 2 ib ->slow GT           (B exhausted first  => a > b)
//   P + 2 ia ->slow LE           (A exhausted first  => a < b)
//
// The single decision token P (initial 1) is consumed exactly once, so
// exactly one of GT/LE is produced. The survivor side retains |a - b|
// (usable downstream). Ties race: either output may win when a == b —
// document-level semantics, same as any analog comparator at its threshold.
// Like the loop modules, the `2·indicator` guard suppresses premature
// decisions from indicator residue; correctness is exact on discrete counts
// (SSA) up to that hazard, and the ODE limit converges to the right token.
#pragma once

#include <string>

#include "core/network.hpp"

namespace mrsc::modules {

struct ComparatorHandles {
  core::SpeciesId a;
  core::SpeciesId b;
  core::SpeciesId greater;  ///< GT: receives the token when a > b
  core::SpeciesId lesser;   ///< LE: receives the token when a < b
  core::SpeciesId token;    ///< P (initial 1)
};

/// Emits the comparator; species are created as `<prefix>_...`.
ComparatorHandles build_comparator(core::ReactionNetwork& network,
                                   const std::string& prefix);

}  // namespace mrsc::modules
