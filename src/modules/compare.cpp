#include "modules/compare.hpp"

#include "core/builder.hpp"

namespace mrsc::modules {

ComparatorHandles build_comparator(core::ReactionNetwork& network,
                                   const std::string& prefix) {
  core::NetworkBuilder builder(network);
  builder.set_label_prefix(prefix + ".");
  const std::string& p = prefix;

  builder.species(p + "_P", 1.0);
  builder.reaction(p + "_A + " + p + "_B -> 0", core::RateCategory::kFast,
                   "cancel");
  builder.reaction("0 -> " + p + "_ia", core::RateCategory::kSlow, "ia.gen");
  builder.reaction(p + "_ia + " + p + "_A -> " + p + "_A",
                   core::RateCategory::kFast, "ia.absorb");
  builder.reaction("0 -> " + p + "_ib", core::RateCategory::kSlow, "ib.gen");
  builder.reaction(p + "_ib + " + p + "_B -> " + p + "_B",
                   core::RateCategory::kFast, "ib.absorb");
  builder.reaction(p + "_P + 2 " + p + "_ib -> " + p + "_GT",
                   core::RateCategory::kSlow, "decide.gt");
  builder.reaction(p + "_P + 2 " + p + "_ia -> " + p + "_LE",
                   core::RateCategory::kSlow, "decide.le");

  ComparatorHandles handles;
  handles.a = builder.species(p + "_A");
  handles.b = builder.species(p + "_B");
  handles.greater = builder.species(p + "_GT");
  handles.lesser = builder.species(p + "_LE");
  handles.token = builder.species(p + "_P");
  return handles;
}

}  // namespace mrsc::modules
