#include "fleet/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cmath>
#include <cstring>

namespace mrsc::fleet {

PendingRequest::PendingRequest(const Endpoint& endpoint,
                               const std::string& request) {
  try {
    socket_ = serve::connect_to(endpoint.host, endpoint.port);
    serve::write_frame(socket_.fd(), request);
  } catch (const std::exception& error) {
    fail(error.what());
    return;
  }
  const int flags = ::fcntl(socket_.fd(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(socket_.fd(), F_SETFL, flags | O_NONBLOCK) < 0) {
    fail(std::string("fcntl: ") + std::strerror(errno));
  }
}

void PendingRequest::fail(std::string why) {
  state_ = State::kFailed;
  error_ = std::move(why);
  socket_.close();
}

void PendingRequest::pump() {
  while (state_ == State::kPending) {
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (!have_header_ && buffer_.size() >= 4) {
        expected_ = (static_cast<std::uint32_t>(
                         static_cast<unsigned char>(buffer_[0]))
                     << 24) |
                    (static_cast<std::uint32_t>(
                         static_cast<unsigned char>(buffer_[1]))
                     << 16) |
                    (static_cast<std::uint32_t>(
                         static_cast<unsigned char>(buffer_[2]))
                     << 8) |
                    static_cast<std::uint32_t>(
                        static_cast<unsigned char>(buffer_[3]));
        if (expected_ > serve::kMaxFrameBytes) {
          fail("oversized response frame");
          return;
        }
        have_header_ = true;
      }
      if (have_header_ && buffer_.size() >= 4 + expected_) {
        response_ = buffer_.substr(4, expected_);
        state_ = State::kDone;
        socket_.close();
      }
      continue;
    }
    if (n == 0) {
      fail("connection closed mid-frame");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    fail(std::string("recv: ") + std::strerror(errno));
    return;
  }
}

void wait_any(const std::vector<PendingRequest*>& requests,
              double timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<PendingRequest*> pending;
  for (PendingRequest* request : requests) {
    if (request->state() != PendingRequest::State::kPending) continue;
    fds.push_back({request->fd(), POLLIN, 0});
    pending.push_back(request);
  }
  if (fds.empty()) return;
  const int timeout =
      timeout_ms <= 0.0
          ? 0
          : static_cast<int>(std::min(timeout_ms, 3.6e6) + 0.999);
  const int ready = ::poll(fds.data(), fds.size(), timeout);
  if (ready <= 0) return;  // timeout or EINTR: caller re-checks the clock
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      pending[i]->pump();
    }
  }
}

}  // namespace mrsc::fleet
