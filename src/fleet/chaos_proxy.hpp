// Fault-injecting TCP proxy for chaos-testing the fleet.
//
// The proxy sits between a fleet client and one upstream shard and makes a
// *seeded* per-connection fault decision, so a chaos run is replayable:
// connection k (in accept order) draws its fate from
// Rng(stream_seed(seed, k)) against the configured fault probabilities.
//
//   drop        close the client connection immediately on accept
//   delay       forward normally, but only after delay_ms of silence
//   truncate    relay the upstream response but cut the stream mid-frame
//               (after a few bytes of the length header/payload), then
//               close — exercises the client's mid-frame EOF handling
//   blackhole   read and discard the client's bytes, forward nothing,
//               hold the connection open — exercises timeouts and hedging
//
// The decision is cumulative: u < drop → drop, u < drop+delay → delay, and
// so on; anything past the sum is a clean relay. The proxy is a library
// class (in-process tests) with a thin CLI wrapper (mrsc_chaosproxy) for
// the shell harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/transport.hpp"
#include "serve/protocol.hpp"

namespace mrsc::fleet {

struct ChaosFaults {
  double drop = 0.0;
  double delay = 0.0;
  double delay_ms = 50.0;
  double truncate = 0.0;
  double blackhole = 0.0;
};

/// What the seeded draw decided for one connection (exposed for tests).
enum class FaultKind : std::uint8_t {
  kClean,
  kDrop,
  kDelay,
  kTruncate,
  kBlackhole,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// The pure decision function: connection `index` under `faults` and
/// `seed`. Deterministic; the proxy calls exactly this.
[[nodiscard]] FaultKind decide_fault(const ChaosFaults& faults,
                                     std::uint64_t seed,
                                     std::uint64_t index);

class ChaosProxy {
 public:
  // Constructor/destructor live out of line: Link is incomplete here and
  // both need to instantiate the links_ vector's destructor.
  ChaosProxy(Endpoint upstream, ChaosFaults faults, std::uint64_t seed);
  ~ChaosProxy();

  /// Binds host:port (0 = ephemeral) and starts accepting. Throws
  /// std::runtime_error on bind failure.
  void start(const std::string& host = "127.0.0.1", std::uint16_t port = 0);
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Connections accepted so far (== the next connection's fault index).
  [[nodiscard]] std::uint64_t connections() const {
    return connections_.load();
  }

 private:
  struct Link;
  void accept_loop();
  void relay(Link& link, FaultKind fault);

  Endpoint upstream_;
  ChaosFaults faults_;
  std::uint64_t seed_;

  serve::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::mutex links_mutex_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace mrsc::fleet
