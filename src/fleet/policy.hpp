// Resilience policy math for the distributor fleet: deterministic backoff
// schedules and the per-shard health state machine.
//
// Everything here is pure policy — no sockets, no clocks. Delays are a
// function of (policy, slice, attempt) so a replayed run produces the same
// schedule; health transitions are a function of the observed event
// sequence and fixed integer thresholds. That is what makes the fleet's
// retry behaviour table-testable (tests/test_fleet.cpp) instead of
// "usually converges".
#pragma once

#include <cstdint>
#include <mutex>

namespace mrsc::fleet {

/// Capped exponential backoff with deterministic jitter. Attempt k (0-based,
/// counting completed attempts) waits
///
///   min(cap_ms, base_ms * 2^k) * (0.5 + 0.5 * u)
///
/// where u in [0,1) comes from a generator seeded by (jitter_seed, slice,
/// attempt) — full decorrelation across slices without shared mutable
/// state, same trick as the ensemble's stream seeds.
struct BackoffPolicy {
  double base_ms = 10.0;
  double cap_ms = 500.0;
  std::uint64_t jitter_seed = 1;
};

[[nodiscard]] double backoff_delay_ms(const BackoffPolicy& policy,
                                      std::uint64_t slice,
                                      std::uint64_t attempt);

/// Shard health as the router sees it.
///
///   healthy ──(degrade_after consecutive bad events)──▶ degraded
///   degraded ─(quarantine_after consecutive bad)──────▶ quarantined
///   quarantined ─(skipped probe_after times)──────────▶ probing
///   probing ──(success)──▶ healthy    ──(failure)──▶ quarantined
///
/// "Bad event" is a transport failure, a timeout, or an overload/draining
/// rejection — everything that says "route elsewhere". Any success resets
/// the counter and the state.
enum class ShardHealth : std::uint8_t {
  kHealthy,
  kDegraded,     ///< still routable, but only when no healthy shard exists
  kQuarantined,  ///< skipped by routing until it earns a probe
  kProbing,      ///< one in-flight trial request decides its fate
};

[[nodiscard]] const char* to_string(ShardHealth health);

struct HealthThresholds {
  std::uint32_t degrade_after = 2;     ///< consecutive bad → degraded
  std::uint32_t quarantine_after = 4;  ///< consecutive bad → quarantined
  std::uint32_t probe_after = 8;       ///< routing skips → probing
};

/// Per-shard health tracker; self-locked so router threads and request
/// threads can feed it concurrently.
class HealthTracker {
 public:
  explicit HealthTracker(HealthThresholds thresholds = {})
      : thresholds_(thresholds) {}

  [[nodiscard]] ShardHealth state() const;

  /// A request completed with status "ok": whatever the history, the shard
  /// is healthy now.
  void record_success();
  /// Transport failure or timeout.
  void record_failure();
  /// Deterministic overload/draining rejection — the shard is alive but
  /// shedding load; for routing purposes that is the same "go elsewhere".
  void record_overload();

  /// The router calls this each time it skips a quarantined shard. Every
  /// probe_after skips the shard earns one probe: the tracker flips to
  /// kProbing and returns true, telling the router to send this one
  /// request there after all.
  [[nodiscard]] bool consider_probe();

 private:
  void record_bad();

  mutable std::mutex mutex_;
  HealthThresholds thresholds_;
  ShardHealth state_ = ShardHealth::kHealthy;
  std::uint32_t consecutive_bad_ = 0;
  std::uint32_t skips_ = 0;
};

}  // namespace mrsc::fleet
