// Non-blocking request/response transport for the distributor.
//
// The fleet needs to hold several requests in flight at once from a single
// worker thread (a primary plus its hedge) and take whichever answers
// first. A PendingRequest is one request on its own connection, driven
// through a tiny state machine: blocking connect + send (cheap against a
// live listener, fails fast against a dead one), then non-blocking reads of
// the 4-byte length header and the payload. wait_any() multiplexes any
// number of them with poll(2).
//
// Connections are deliberately not reused across attempts: a fresh socket
// per attempt means a half-dead peer can never poison a retry, and the
// determinism contract lives entirely in the payloads, so the only cost is
// a localhost handshake.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace mrsc::fleet {

/// One shard address.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// One request in flight on its own connection.
class PendingRequest {
 public:
  enum class State : std::uint8_t { kPending, kDone, kFailed };

  /// Connects, sends `request`, and switches the socket to non-blocking
  /// reads. A refused/failed connect or torn send lands in kFailed rather
  /// than throwing — callers treat it like any other transport failure.
  PendingRequest(const Endpoint& endpoint, const std::string& request);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] int fd() const { return socket_.fd(); }

  /// Non-blocking read step; call when poll reports the fd readable (or
  /// speculatively — it returns on EAGAIN). Moves kPending → kDone once a
  /// full frame has arrived, → kFailed on EOF mid-frame, a socket error,
  /// or a garbage/oversized length prefix.
  void pump();

  /// The response payload; only meaningful in kDone.
  [[nodiscard]] const std::string& response() const { return response_; }
  /// The failure description; only meaningful in kFailed.
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(std::string why);

  serve::Socket socket_;
  State state_ = State::kPending;
  std::string buffer_;  ///< raw bytes received so far (header + payload)
  std::uint32_t expected_ = 0;
  bool have_header_ = false;
  std::string response_;
  std::string error_;
};

/// Blocks until at least one still-pending request becomes readable (then
/// pumps every readable one) or `timeout_ms` elapses. No-op when nothing
/// is pending.
void wait_any(const std::vector<PendingRequest*>& requests,
              double timeout_ms);

}  // namespace mrsc::fleet
