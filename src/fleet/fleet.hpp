// The distributor: shards fleet-level work units across mrsc_serve
// processes and merges the answers deterministically.
//
// Design (nighthawk-style client/distributor split): the unit of
// distribution is a *slice* — one self-contained job request whose payload
// is a pure function of the fleet spec and the slice index (replicate i of
// an ensemble, point i of a rate sweep). Which shard answers a slice, in
// what order, after how many retries, is scheduling noise; the merged
// report is assembled from the slice results *in slice order* and reduced
// with the exact floating-point expressions the local runtime uses
// (runtime::reduce_species). That is the determinism contract:
//
//   merged output is bitwise-identical to a single-process run at any
//   shard count, under any injected failure pattern that still lets every
//   slice eventually succeed.
//
// Every request is wrapped in a resilience policy: per-request timeout,
// bounded retries with capped exponential backoff and seeded jitter
// (policy.hpp), optional hedging (a duplicate request to a second shard
// when the first is slow — safe because job payloads are idempotent by
// canonical-key construction), and overload-aware routing: a
// {"status":"rejected"} answer is backpressure, not an error, and demotes
// the shard exactly like a transport failure would.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fleet/policy.hpp"
#include "fleet/transport.hpp"

namespace mrsc::fleet {

struct FleetOptions {
  std::vector<Endpoint> shards;

  /// Worker threads pulling slices; 0 → 2 per shard.
  std::size_t concurrency = 0;

  /// Per-attempt timeout. An attempt that has not produced a full frame by
  /// then counts as a failure on every shard it touched.
  double request_timeout_ms = 10000.0;

  /// Total attempts per slice (first try included).
  std::size_t max_attempts = 4;

  BackoffPolicy backoff;

  /// Hedge delay: when > 0 and the primary has not answered after this
  /// many ms, send the same request to one other shard and take whichever
  /// answers first. At most one hedge fires per slice.
  double hedge_ms = 0.0;

  HealthThresholds health;

  /// Test hook: replaces the real backoff sleep. Null → thread sleep.
  std::function<void(double ms)> sleep_hook;
};

/// Transport-layer diagnostics. Deliberately *not* part of any merged
/// report — they depend on timing and fault injection, the report does not.
struct FleetCounters {
  std::uint64_t attempts = 0;   ///< requests launched (hedges included)
  std::uint64_t retries = 0;    ///< attempts beyond the first, per slice
  std::uint64_t hedges = 0;     ///< hedge requests fired
  std::uint64_t rejections = 0; ///< overload/draining backpressure answers
  std::uint64_t failures = 0;   ///< transport failures (connect/read/EOF)
  std::uint64_t timeouts = 0;   ///< attempts that hit request_timeout_ms
  std::uint64_t probes = 0;     ///< quarantined shards granted a probe
};

class FleetClient {
 public:
  explicit FleetClient(FleetOptions options);

  /// Executes every request (slice i = requests[i]) and returns the
  /// response payloads in slice order. Throws std::runtime_error when any
  /// slice exhausts its attempts.
  [[nodiscard]] std::vector<std::string> execute(
      const std::vector<std::string>& requests);

  /// One-off request through the full resilience policy (catalog, stats).
  [[nodiscard]] std::string request_once(const std::string& request);

  /// Sends `request` to every shard directly (no routing, single attempt
  /// with connect retry) — drain and per-shard stats. Unreachable shards
  /// yield a deterministic {"status":"error",...} entry.
  [[nodiscard]] std::vector<std::string> request_all(
      const std::string& request);

  [[nodiscard]] FleetCounters counters() const;
  [[nodiscard]] ShardHealth shard_state(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    Endpoint endpoint;
    HealthTracker health;
    std::atomic<int> outstanding{0};
    explicit Shard(Endpoint e, HealthThresholds thresholds)
        : endpoint(std::move(e)), health(thresholds) {}
  };

  /// Picks the shard for the next request: least-outstanding healthy
  /// shard, then least-outstanding degraded shard (lowest index breaks
  /// ties), then a quarantined shard that has earned a probe; when
  /// everything is quarantined/probing, the lowest-index shard is forced —
  /// the fleet never deadlocks itself out of all capacity. `exclude` (< 0
  /// disables) keeps a hedge off the primary's shard; returns -1 only when
  /// exclusion leaves no candidate.
  [[nodiscard]] int route(int exclude);

  /// Runs one slice to a successful response or throws.
  [[nodiscard]] std::string execute_slice(std::size_t slice,
                                          const std::string& request);

  void sleep_ms(double ms) const;

  FleetOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  struct AtomicCounters {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> hedges{0};
    std::atomic<std::uint64_t> rejections{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> probes{0};
  };
  mutable AtomicCounters counters_;
};

// ---------------------------------------------------------------------------
// Fleet-level work units.

/// A sharded SSA ensemble: replicate i is the job
/// {kind:sim, design, method, seed:stream_seed(base_seed,i), t_end, omega,
///  record, opt} — the same per-replicate seeds the local ensemble runner
/// uses, which is why the merge can be bitwise-identical to it.
struct EnsembleSpec {
  std::string design = "counter";
  std::size_t replicates = 8;
  std::uint64_t base_seed = 1;
  std::string method = "nrm";
  double t_end = 3.0;
  double omega = 200.0;
  double record = 0.0;  ///< 0 = server default (t_end / 50)
  int opt = 0;
};

/// A sharded rate sweep: point i runs the design at omegas[i] with seed
/// stream_seed(base_seed, i).
struct SweepSpec {
  std::string design = "counter";
  std::vector<double> omegas;
  std::uint64_t base_seed = 1;
  std::string method = "nrm";
  double t_end = 3.0;
  double record = 0.0;
  int opt = 0;
};

/// Runs the ensemble across the fleet and returns the merged report: one
/// deterministic JSON document (per-species mean/stddev/min/max/quantiles
/// over all replicates, total SSA events as a cross-check oracle). Throws
/// std::invalid_argument on a spec the local registry rejects (bad usage),
/// std::runtime_error on fleet-level failure.
[[nodiscard]] std::string run_ensemble(FleetClient& fleet,
                                       const EnsembleSpec& spec);

/// Runs the sweep across the fleet; merged report lists the points in
/// omega order with their exact final states.
[[nodiscard]] std::string run_sweep(FleetClient& fleet,
                                    const SweepSpec& spec);

/// Fetches the scenario catalog over the wire ({"op":"catalog"}).
[[nodiscard]] std::string fetch_catalog(FleetClient& fleet);

}  // namespace mrsc::fleet
