#include "fleet/chaos_proxy.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstddef>

#include "util/rng.hpp"

namespace mrsc::fleet {

namespace {

/// Cut the downstream relay after this many bytes: 4-byte header + 2
/// payload bytes, guaranteed mid-frame for any non-empty response.
constexpr std::size_t kTruncateAfterBytes = 6;

/// Relays bytes fd_from → fd_to until EOF/error. `budget` caps the bytes
/// forwarded (SIZE_MAX = unlimited); once spent, both directions die with
/// the connection. Returns on any terminal condition.
void pump_bytes(int fd_from, int fd_to, std::size_t budget) {
  char chunk[16384];
  while (budget > 0) {
    const ssize_t n = ::recv(fd_from, chunk, sizeof chunk, 0);
    if (n == 0) return;
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    std::size_t send_bytes = static_cast<std::size_t>(n);
    if (send_bytes > budget) send_bytes = budget;
    std::size_t sent = 0;
    while (sent < send_bytes) {
      const ssize_t w = ::send(fd_to, chunk + sent, send_bytes - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        return;
      }
      sent += static_cast<std::size_t>(w);
    }
    budget -= send_bytes;
  }
}

/// Reads and discards everything from fd until EOF/error (black hole).
void drain_bytes(int fd) {
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return;
    if (n < 0 && errno != EINTR) return;
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kClean:
      return "clean";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBlackhole:
      return "blackhole";
  }
  return "unknown";
}

FaultKind decide_fault(const ChaosFaults& faults, std::uint64_t seed,
                       std::uint64_t index) {
  util::Rng rng(util::Rng::stream_seed(seed, index));
  const double u = rng.uniform();
  double edge = faults.drop;
  if (u < edge) return FaultKind::kDrop;
  edge += faults.delay;
  if (u < edge) return FaultKind::kDelay;
  edge += faults.truncate;
  if (u < edge) return FaultKind::kTruncate;
  edge += faults.blackhole;
  if (u < edge) return FaultKind::kBlackhole;
  return FaultKind::kClean;
}

struct ChaosProxy::Link {
  serve::Socket client;
  serve::Socket upstream;
  std::thread forward;  ///< client → upstream
  std::thread reverse;  ///< upstream → client (faults apply here)
  std::atomic<bool> done{false};
};

ChaosProxy::ChaosProxy(Endpoint upstream, ChaosFaults faults,
                       std::uint64_t seed)
    : upstream_(std::move(upstream)), faults_(faults), seed_(seed) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start(const std::string& host, std::uint16_t port) {
  stopping_.store(false);
  listener_ = serve::listen_on(host, port, port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  // shutdown_both() wakes the blocked accept without touching fd_; close()
  // must wait until the accept thread is joined because accept_loop reads
  // listener_.fd() concurrently.
  listener_.shutdown_both();
  {
    std::lock_guard lock(links_mutex_);
    for (const auto& link : links_) {
      link->client.shutdown_both();
      link->upstream.shutdown_both();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::lock_guard lock(links_mutex_);
  for (const auto& link : links_) {
    if (link->forward.joinable()) link->forward.join();
    if (link->reverse.joinable()) link->reverse.join();
  }
  links_.clear();
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load()) {
    serve::Socket accepted = serve::accept_on(listener_.fd());
    if (!accepted.valid()) break;  // listener shut down
    const std::uint64_t index = connections_.fetch_add(1);
    const FaultKind fault = decide_fault(faults_, seed_, index);
    if (fault == FaultKind::kDrop) continue;  // closes on scope exit

    auto link = std::make_unique<Link>();
    link->client = std::move(accepted);
    if (fault != FaultKind::kBlackhole) {
      try {
        link->upstream = serve::connect_to(upstream_.host, upstream_.port);
      } catch (const std::exception&) {
        continue;  // upstream gone: behaves like a drop
      }
    }
    Link* raw = link.get();
    raw->forward = std::thread([raw, fault] {
      if (fault == FaultKind::kBlackhole) {
        drain_bytes(raw->client.fd());
      } else {
        pump_bytes(raw->client.fd(), raw->upstream.fd(), SIZE_MAX);
        raw->upstream.shutdown_both();
      }
    });
    raw->reverse = std::thread([this, raw, fault] { relay(*raw, fault); });

    std::lock_guard lock(links_mutex_);
    // Reap finished links so a long-lived proxy does not accumulate
    // joined-out threads.
    for (auto it = links_.begin(); it != links_.end();) {
      if ((*it)->done.load()) {
        if ((*it)->forward.joinable()) (*it)->forward.join();
        if ((*it)->reverse.joinable()) (*it)->reverse.join();
        it = links_.erase(it);
      } else {
        ++it;
      }
    }
    links_.push_back(std::move(link));
  }
}

void ChaosProxy::relay(Link& link, FaultKind fault) {
  switch (fault) {
    case FaultKind::kBlackhole:
      // Nothing ever flows back; the forward thread owns the drain. Park
      // until stop() shuts the sockets down.
      break;
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(faults_.delay_ms));
      pump_bytes(link.upstream.fd(), link.client.fd(), SIZE_MAX);
      link.client.shutdown_both();
      break;
    case FaultKind::kTruncate:
      pump_bytes(link.upstream.fd(), link.client.fd(), kTruncateAfterBytes);
      link.client.shutdown_both();
      link.upstream.shutdown_both();
      break;
    case FaultKind::kClean:
    case FaultKind::kDrop:
      pump_bytes(link.upstream.fd(), link.client.fd(), SIZE_MAX);
      link.client.shutdown_both();
      break;
  }
  if (fault != FaultKind::kBlackhole) link.done.store(true);
}

}  // namespace mrsc::fleet
