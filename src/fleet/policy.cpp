#include "fleet/policy.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace mrsc::fleet {

double backoff_delay_ms(const BackoffPolicy& policy, std::uint64_t slice,
                        std::uint64_t attempt) {
  double delay = policy.base_ms;
  for (std::uint64_t k = 0; k < attempt && delay < policy.cap_ms; ++k) {
    delay *= 2.0;
  }
  delay = std::min(delay, policy.cap_ms);
  util::Rng rng(util::Rng::stream_seed(
      util::Rng::stream_seed(policy.jitter_seed, slice), attempt));
  return delay * (0.5 + 0.5 * rng.uniform());
}

const char* to_string(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kQuarantined:
      return "quarantined";
    case ShardHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

ShardHealth HealthTracker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

void HealthTracker::record_success() {
  std::lock_guard lock(mutex_);
  state_ = ShardHealth::kHealthy;
  consecutive_bad_ = 0;
  skips_ = 0;
}

void HealthTracker::record_bad() {
  std::lock_guard lock(mutex_);
  ++consecutive_bad_;
  if (state_ == ShardHealth::kProbing) {
    // The probe itself failed: straight back to quarantine, counter reset
    // so the next quarantine stint starts fresh.
    state_ = ShardHealth::kQuarantined;
    skips_ = 0;
    return;
  }
  if (consecutive_bad_ >= thresholds_.quarantine_after) {
    state_ = ShardHealth::kQuarantined;
  } else if (consecutive_bad_ >= thresholds_.degrade_after) {
    state_ = ShardHealth::kDegraded;
  }
}

void HealthTracker::record_failure() { record_bad(); }

void HealthTracker::record_overload() { record_bad(); }

bool HealthTracker::consider_probe() {
  std::lock_guard lock(mutex_);
  if (state_ != ShardHealth::kQuarantined) return false;
  ++skips_;
  if (skips_ < thresholds_.probe_after) return false;
  skips_ = 0;
  state_ = ShardHealth::kProbing;
  return true;
}

}  // namespace mrsc::fleet
