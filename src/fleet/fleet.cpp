#include "fleet/fleet.hpp"

#include <chrono>
#include <climits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "runtime/ensemble.hpp"
#include "scenario/registry.hpp"
#include "serve/dispatcher.hpp"
#include "serve/json.hpp"
#include "util/rng.hpp"

namespace mrsc::fleet {

namespace {

using Clock = std::chrono::steady_clock;
using json = serve::json::Value;
using serve::json::number_to_string;
using serve::json::quote;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Splits a response payload into (status, detail) without assuming it is
/// well-formed: a chaos-mangled or garbage payload classifies as an error.
void classify_response(const std::string& payload, std::string& status,
                       std::string& detail) {
  try {
    const json parsed = serve::json::parse(payload);
    status = parsed.get_string("status", "");
    if (status == "rejected") {
      detail = parsed.get_string("reason", "");
    } else if (status != "ok") {
      detail = parsed.get_string("error", "");
    }
  } catch (const std::exception& error) {
    status = "error";
    detail = std::string("unparseable response: ") + error.what();
  }
}

}  // namespace

FleetClient::FleetClient(FleetOptions options) : options_(std::move(options)) {
  if (options_.shards.empty()) {
    throw std::invalid_argument("fleet: at least one shard is required");
  }
  if (options_.max_attempts == 0) {
    throw std::invalid_argument("fleet: max_attempts must be >= 1");
  }
  shards_.reserve(options_.shards.size());
  for (const Endpoint& endpoint : options_.shards) {
    shards_.push_back(std::make_unique<Shard>(endpoint, options_.health));
  }
}

FleetCounters FleetClient::counters() const {
  FleetCounters out;
  out.attempts = counters_.attempts.load();
  out.retries = counters_.retries.load();
  out.hedges = counters_.hedges.load();
  out.rejections = counters_.rejections.load();
  out.failures = counters_.failures.load();
  out.timeouts = counters_.timeouts.load();
  out.probes = counters_.probes.load();
  return out;
}

ShardHealth FleetClient::shard_state(std::size_t shard) const {
  return shards_.at(shard)->health.state();
}

void FleetClient::sleep_ms(double ms) const {
  if (ms <= 0.0) return;
  if (options_.sleep_hook) {
    options_.sleep_hook(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

int FleetClient::route(int exclude) {
  const int n = static_cast<int>(shards_.size());
  auto least_outstanding = [&](ShardHealth want) {
    int best = -1;
    int best_outstanding = INT_MAX;
    for (int s = 0; s < n; ++s) {
      if (s == exclude) continue;
      if (shards_[s]->health.state() != want) continue;
      const int outstanding = shards_[s]->outstanding.load();
      if (outstanding < best_outstanding) {
        best_outstanding = outstanding;
        best = s;
      }
    }
    return best;
  };
  int choice = least_outstanding(ShardHealth::kHealthy);
  if (choice >= 0) return choice;
  choice = least_outstanding(ShardHealth::kDegraded);
  if (choice >= 0) return choice;
  for (int s = 0; s < n; ++s) {
    if (s == exclude) continue;
    if (shards_[s]->health.state() != ShardHealth::kQuarantined) continue;
    if (shards_[s]->health.consider_probe()) {
      counters_.probes.fetch_add(1);
      return s;
    }
  }
  // Everything is quarantined (without an earned probe) or already
  // probing: force the lowest-index candidate rather than give up — with
  // every shard down the request will fail and burn a retry, but with a
  // recovering shard this is what drags the fleet back to life.
  for (int s = 0; s < n; ++s) {
    if (s != exclude) return s;
  }
  return -1;  // exclusion ate the only shard (single-shard hedge)
}

std::string FleetClient::execute_slice(std::size_t slice,
                                       const std::string& request) {
  std::string last_error = "no attempt made";
  bool hedged = false;  // at most one hedge per slice, across all attempts

  for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      counters_.retries.fetch_add(1);
      sleep_ms(backoff_delay_ms(options_.backoff, slice, attempt - 1));
    }

    struct Flight {
      int shard;
      std::unique_ptr<PendingRequest> pending;
    };
    std::vector<Flight> flights;
    auto launch = [&](int shard) {
      shards_[shard]->outstanding.fetch_add(1);
      counters_.attempts.fetch_add(1);
      flights.push_back({shard, std::make_unique<PendingRequest>(
                                    shards_[shard]->endpoint, request)});
    };
    auto land = [&](std::size_t i) {
      shards_[flights[i].shard]->outstanding.fetch_sub(1);
      flights.erase(flights.begin() +
                    static_cast<std::ptrdiff_t>(i));
    };
    auto abandon_all = [&] {
      while (!flights.empty()) land(flights.size() - 1);
    };

    launch(route(-1));
    const Clock::time_point start = Clock::now();

    while (!flights.empty()) {
      // Classify whatever has finished.
      std::string winner;
      for (std::size_t i = 0; i < flights.size();) {
        PendingRequest& pending = *flights[i].pending;
        if (pending.state() == PendingRequest::State::kPending) {
          ++i;
          continue;
        }
        const int shard = flights[i].shard;
        const std::string shard_name =
            shards_[shard]->endpoint.host + ":" +
            std::to_string(shards_[shard]->endpoint.port);
        if (pending.state() == PendingRequest::State::kFailed) {
          shards_[shard]->health.record_failure();
          counters_.failures.fetch_add(1);
          last_error = shard_name + ": " + pending.error();
          land(i);
          continue;
        }
        std::string status;
        std::string detail;
        classify_response(pending.response(), status, detail);
        if (status == "ok") {
          shards_[shard]->health.record_success();
          winner = pending.response();
          break;
        }
        if (status == "rejected") {
          // Overload/draining backpressure: the shard is fine, just full —
          // demote it for routing and try elsewhere.
          shards_[shard]->health.record_overload();
          counters_.rejections.fetch_add(1);
          last_error = shard_name + " rejected: " + detail;
        } else {
          shards_[shard]->health.record_failure();
          counters_.failures.fetch_add(1);
          last_error = shard_name + " error: " + detail;
        }
        land(i);
      }
      if (!winner.empty()) {
        abandon_all();  // hedge loser, if any: closed and forgotten
        return winner;
      }
      if (flights.empty()) break;  // attempt failed; maybe retry

      const Clock::time_point now = Clock::now();
      const double elapsed_ms = ms_between(start, now);
      if (elapsed_ms >= options_.request_timeout_ms) {
        for (const Flight& flight : flights) {
          shards_[flight.shard]->health.record_failure();
          counters_.timeouts.fetch_add(1);
        }
        last_error = "request timeout after " +
                     number_to_string(options_.request_timeout_ms) + " ms";
        abandon_all();
        break;
      }

      double wait_ms = options_.request_timeout_ms - elapsed_ms;
      if (!hedged && options_.hedge_ms > 0.0) {
        if (elapsed_ms >= options_.hedge_ms) {
          hedged = true;
          const int mate = route(flights.front().shard);
          if (mate >= 0) {
            counters_.hedges.fetch_add(1);
            launch(mate);
          }
        } else {
          wait_ms = std::min(wait_ms, options_.hedge_ms - elapsed_ms);
        }
      }

      std::vector<PendingRequest*> pending;
      pending.reserve(flights.size());
      for (const Flight& flight : flights) {
        pending.push_back(flight.pending.get());
      }
      wait_any(pending, wait_ms);
    }
  }

  throw std::runtime_error(
      "fleet: slice " + std::to_string(slice) + " failed after " +
      std::to_string(options_.max_attempts) + " attempt(s): " + last_error);
}

std::vector<std::string> FleetClient::execute(
    const std::vector<std::string>& requests) {
  std::vector<std::string> results(requests.size());
  if (requests.empty()) return results;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::size_t workers =
      options_.concurrency > 0 ? options_.concurrency : 2 * shards_.size();
  workers = std::min(workers, requests.size());

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= requests.size()) return;
      try {
        results[i] = execute_slice(i, requests[i]);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(requests.size());  // a lost slice sinks the run: stop
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::string FleetClient::request_once(const std::string& request) {
  return execute_slice(0, request);
}

std::vector<std::string> FleetClient::request_all(
    const std::string& request) {
  std::vector<std::string> responses;
  responses.reserve(shards_.size());
  for (const auto& shard : shards_) {
    try {
      serve::Client client(serve::connect_with_retry(shard->endpoint.host,
                                                     shard->endpoint.port));
      responses.push_back(client.request_raw(request));
    } catch (const std::exception& error) {
      responses.push_back(serve::error_response(error.what()));
    }
  }
  return responses;
}

// ---------------------------------------------------------------------------
// Fleet-level work units.

namespace {

std::string build_sim_request(const std::string& design,
                              const std::string& method, std::uint64_t seed,
                              double t_end, double omega, double record,
                              int opt) {
  std::string request = R"({"op":"job","kind":"sim","design":)";
  request += quote(design);
  request += ",\"method\":" + quote(method);
  request += ",\"seed\":" + std::to_string(seed);
  request += ",\"opt\":" + std::to_string(opt);
  request += ",\"t_end\":" + number_to_string(t_end);
  request += ",\"omega\":" + number_to_string(omega);
  if (record > 0.0) request += ",\"record\":" + number_to_string(record);
  request += '}';
  return request;
}

/// Validates a request exactly the way a shard will (same parse, same
/// registry) and returns the canonical key the shard must echo. Throws
/// std::invalid_argument on bad specs — locally, before any bytes move.
std::string expected_key(const std::string& request) {
  return serve::canonical_key(
      serve::parse_job(serve::json::parse(request)));
}

/// Pulls result.<field> out of a parsed job response; throws on a payload
/// that does not have the sim shape (a shard bug, not a transport fault).
const json& result_of(const json& response, std::size_t slice) {
  const json* result = response.find("result");
  if (result == nullptr || !result->is_object()) {
    throw std::runtime_error("fleet: slice " + std::to_string(slice) +
                             ": response has no result object");
  }
  return *result;
}

/// Parses every response, cross-checking the echoed canonical key against
/// the locally computed one — a shard (or a proxy) that answered the wrong
/// question, however plausibly, is an integrity failure, not a statistic.
std::vector<json> parse_responses(const std::vector<std::string>& responses,
                                  const std::vector<std::string>& keys) {
  std::vector<json> parsed(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    parsed[i] = serve::json::parse(responses[i]);
    if (parsed[i].get_string("status", "") != "ok") {
      throw std::runtime_error("fleet: slice " + std::to_string(i) +
                               ": non-ok response escaped the retry layer");
    }
    if (parsed[i].get_string("key", "") != keys[i]) {
      throw std::runtime_error(
          "fleet: slice " + std::to_string(i) +
          ": shard echoed a mismatched canonical key");
    }
  }
  return parsed;
}

}  // namespace

std::string run_ensemble(FleetClient& fleet, const EnsembleSpec& spec) {
  if (spec.replicates == 0) {
    throw std::invalid_argument("fleet: replicates must be >= 1");
  }
  const std::string design =
      scenario::ScenarioRegistry::global().canonicalize(spec.design);

  std::vector<std::string> requests(spec.replicates);
  std::vector<std::string> keys(spec.replicates);
  for (std::size_t i = 0; i < spec.replicates; ++i) {
    requests[i] = build_sim_request(
        design, spec.method, util::Rng::stream_seed(spec.base_seed, i),
        spec.t_end, spec.omega, spec.record, spec.opt);
    keys[i] = expected_key(requests[i]);
  }

  const std::vector<json> parsed =
      parse_responses(fleet.execute(requests), keys);

  double events_total = 0.0;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    events_total += result_of(parsed[i], i).get_number("ssa_events", 0.0);
  }

  // Species come from replicate 0's final state (every replicate shares the
  // compiled design, so the set and order are identical); the merge
  // re-assembles each species' value vector in replicate order and hands it
  // to the same reduction the local ensemble runner uses.
  const json* final0 = result_of(parsed[0], 0).find("final");
  if (final0 == nullptr || !final0->is_object()) {
    throw std::runtime_error("fleet: replicate 0 has no final state");
  }

  std::string out = R"({"status":"ok","mode":"ensemble","design":)";
  out += quote(design);
  out += ",\"method\":" + quote(spec.method);
  out += ",\"opt\":" + std::to_string(spec.opt);
  out += ",\"replicates\":" + std::to_string(spec.replicates);
  out += ",\"base_seed\":" + std::to_string(spec.base_seed);
  out += ",\"t_end\":" + number_to_string(spec.t_end);
  out += ",\"omega\":" + number_to_string(spec.omega);
  out += ",\"ssa_events_total\":" + number_to_string(events_total);
  out += ",\"species\":[";
  bool first = true;
  std::vector<double> values(spec.replicates);
  for (const serve::json::Member& species : final0->as_object()) {
    const std::string& name = species.first;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      const json* final_state = result_of(parsed[i], i).find("final");
      const json* value =
          final_state == nullptr ? nullptr : final_state->find(name);
      if (value == nullptr || value->type() != json::Type::kNumber) {
        throw std::runtime_error("fleet: replicate " + std::to_string(i) +
                                 " is missing species '" + name + "'");
      }
      values[i] = value->as_number();
    }
    const runtime::SpeciesStats stats =
        runtime::reduce_species(name, values);
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + quote(stats.name);
    out += ",\"mean\":" + number_to_string(stats.mean);
    out += ",\"stddev\":" + number_to_string(stats.stddev);
    out += ",\"min\":" + number_to_string(stats.min);
    out += ",\"max\":" + number_to_string(stats.max);
    out += ",\"q05\":" + number_to_string(stats.q05);
    out += ",\"q50\":" + number_to_string(stats.q50);
    out += ",\"q95\":" + number_to_string(stats.q95);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string run_sweep(FleetClient& fleet, const SweepSpec& spec) {
  if (spec.omegas.empty()) {
    throw std::invalid_argument("fleet: sweep needs at least one omega");
  }
  const std::string design =
      scenario::ScenarioRegistry::global().canonicalize(spec.design);

  std::vector<std::string> requests(spec.omegas.size());
  std::vector<std::string> keys(spec.omegas.size());
  std::vector<std::uint64_t> seeds(spec.omegas.size());
  for (std::size_t i = 0; i < spec.omegas.size(); ++i) {
    seeds[i] = util::Rng::stream_seed(spec.base_seed, i);
    requests[i] =
        build_sim_request(design, spec.method, seeds[i], spec.t_end,
                          spec.omegas[i], spec.record, spec.opt);
    keys[i] = expected_key(requests[i]);
  }

  const std::vector<json> parsed =
      parse_responses(fleet.execute(requests), keys);

  std::string out = R"({"status":"ok","mode":"sweep","design":)";
  out += quote(design);
  out += ",\"method\":" + quote(spec.method);
  out += ",\"opt\":" + std::to_string(spec.opt);
  out += ",\"base_seed\":" + std::to_string(spec.base_seed);
  out += ",\"t_end\":" + number_to_string(spec.t_end);
  out += ",\"points\":[";
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const json& result = result_of(parsed[i], i);
    const json* final_state = result.find("final");
    if (final_state == nullptr || !final_state->is_object()) {
      throw std::runtime_error("fleet: point " + std::to_string(i) +
                               " has no final state");
    }
    if (i != 0) out += ',';
    out += "{\"omega\":" + number_to_string(spec.omegas[i]);
    out += ",\"seed\":" + std::to_string(seeds[i]);
    out += ",\"end_time\":" +
           number_to_string(result.get_number("end_time", 0.0));
    out += ",\"ssa_events\":" +
           number_to_string(result.get_number("ssa_events", 0.0));
    out += ",\"final\":" + final_state->dump();
    out += '}';
  }
  out += "]}";
  return out;
}

std::string fetch_catalog(FleetClient& fleet) {
  return fleet.request_once(R"({"op":"catalog"})");
}

}  // namespace mrsc::fleet
