#include "runtime/batch.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace mrsc::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kTimeout:
      return "timeout";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {
  if (options_.threads == 0) {
    options_.threads = ThreadPool::default_worker_count();
  }
}

JobResult BatchRunner::execute(const SimJob& job) const {
  JobResult result;
  result.label = job.label;
  if (job.kind == SimKind::kSsa) result.seed = job.ssa.seed;
  if (job.network == nullptr) {
    result.status = JobStatus::kFailed;
    result.error = "SimJob has no network";
    return result;
  }
  if (cancel_requested()) {
    result.status = JobStatus::kCancelled;
    return result;
  }

  const Clock::time_point start = Clock::now();
  if (options_.retry.max_attempts > 1) {
    execute_with_retry(job, result);
    result.wall_seconds = seconds_since(start);
    return result;
  }

  const bool has_deadline = options_.timeout_seconds > 0.0;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options_.timeout_seconds));
  // Shared by both steppers: stop on cancel or (if armed) on the deadline.
  auto abort_hook = [this, has_deadline, deadline] {
    return cancel_requested() || (has_deadline && Clock::now() >= deadline);
  };

  bool aborted = false;
  try {
    if (job.kind == SimKind::kOde) {
      sim::OdeOptions ode = job.ode;
      ode.abort = abort_hook;
      std::vector<double> initial =
          job.initial.empty() ? job.network->initial_state() : job.initial;
      const bool use_shared =
          job.compiled != nullptr &&
          ode.engine.kind == sim::EngineKind::kCompiled;
      sim::OdeResult run =
          use_shared
              ? sim::simulate_ode(*job.compiled, ode, std::move(initial))
              : sim::simulate_ode(*job.network, ode, std::move(initial));
      aborted = run.aborted;
      result.end_time = run.end_time;
      result.ode_steps = run.steps_accepted;
      const std::span<const double> final = run.trajectory.final_state();
      result.final_state.assign(final.begin(), final.end());
      if (options_.keep_trajectories) {
        result.trajectory = std::move(run.trajectory);
      }
    } else {
      sim::SsaOptions ssa = job.ssa;
      ssa.abort = abort_hook;
      const bool use_shared =
          job.compiled != nullptr &&
          ssa.engine.kind == sim::EngineKind::kCompiled;
      sim::SsaResult run;
      if (use_shared) {
        std::vector<double> initial =
            job.initial.empty() ? job.network->initial_state() : job.initial;
        run = sim::simulate_ssa(*job.compiled, ssa,
                                sim::to_counts(initial, ssa.omega));
      } else {
        run = sim::simulate_ssa(*job.network, ssa, job.initial);
      }
      aborted = run.aborted;
      result.end_time = run.end_time;
      result.ssa_events = run.events;
      result.final_state.resize(run.final_counts.size());
      for (std::size_t i = 0; i < run.final_counts.size(); ++i) {
        result.final_state[i] =
            static_cast<double>(run.final_counts[i]) / ssa.omega;
      }
      if (options_.keep_trajectories) {
        result.trajectory = std::move(run.trajectory);
      }
    }
  } catch (const std::exception& error) {
    result.status = JobStatus::kFailed;
    result.error = error.what();
  }
  result.wall_seconds = seconds_since(start);
  if (aborted) {
    result.status = cancel_requested() ? JobStatus::kCancelled
                                       : JobStatus::kTimeout;
  }
  return result;
}

void BatchRunner::execute_with_retry(const SimJob& job,
                                     JobResult& result) const {
  const RetryPolicy& retry = options_.retry;
  sim::FallbackOptions fallback;
  fallback.max_attempts = retry.max_attempts;
  fallback.backoff_base_seconds = retry.backoff_base_seconds;
  fallback.backoff_cap_seconds = retry.backoff_cap_seconds;
  fallback.allow_ssa_fallback = retry.allow_ssa_fallback;
  fallback.ssa_omega = retry.ssa_omega;
  fallback.ssa_seed = job.ssa.seed != 0 ? job.ssa.seed : 1;
  fallback.sleep = retry.sleep;
  // Each attempt gets a fresh deadline so a transient timeout is actually
  // worth retrying; cancellation still lands at the next poll point.
  const bool has_deadline = options_.timeout_seconds > 0.0;
  const double timeout = options_.timeout_seconds;
  fallback.make_abort = [this, has_deadline,
                         timeout]() -> std::function<bool()> {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout));
    return [this, has_deadline, deadline] {
      return cancel_requested() || (has_deadline && Clock::now() >= deadline);
    };
  };

  sim::FallbackResult run;
  if (job.kind == SimKind::kOde) {
    std::vector<double> initial =
        job.initial.empty() ? job.network->initial_state() : job.initial;
    run = sim::simulate_ode_with_fallback(*job.network, job.ode, fallback,
                                          std::move(initial));
  } else {
    run = sim::simulate_ssa_with_fallback(*job.network, job.ssa, fallback,
                                          job.initial);
  }

  result.end_time = run.end_time;
  result.ode_steps = run.ode_steps;
  result.ssa_events = run.ssa_events;
  result.final_state = std::move(run.final_state);
  if (options_.keep_trajectories) {
    result.trajectory = std::move(run.trajectory);
  }
  result.failure = run.failure;
  result.recovery = std::move(run.log);
  result.attempts = result.recovery.attempts.size() + (run.ok ? 1 : 0);
  if (run.ok) {
    result.status = JobStatus::kOk;
    return;
  }
  if (run.failure.kind == sim::SimFailureKind::kDeadline) {
    result.status = cancel_requested() ? JobStatus::kCancelled
                                       : JobStatus::kTimeout;
  } else {
    // Deterministic failure on every rung it reached: set the job aside.
    result.status = JobStatus::kQuarantined;
  }
  result.error = std::string(sim::to_string(run.failure.kind)) + ": " +
                 run.failure.detail;
}

std::vector<JobResult> BatchRunner::run(std::span<const SimJob> jobs) {
  std::vector<JobResult> results(jobs.size());
  for_each_index(jobs.size(),
                 [&](std::size_t i) { results[i] = execute(jobs[i]); });
  return results;
}

void BatchRunner::for_each_index(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (options_.threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  {
    ThreadPool pool(std::min(options_.threads, count));
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mrsc::runtime
