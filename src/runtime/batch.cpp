#include "runtime/batch.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace mrsc::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kTimeout:
      return "timeout";
    case JobStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {
  if (options_.threads == 0) {
    options_.threads = ThreadPool::default_worker_count();
  }
}

JobResult BatchRunner::execute(const SimJob& job) const {
  JobResult result;
  result.label = job.label;
  if (job.kind == SimKind::kSsa) result.seed = job.ssa.seed;
  if (job.network == nullptr) {
    result.status = JobStatus::kFailed;
    result.error = "SimJob has no network";
    return result;
  }
  if (cancel_requested()) {
    result.status = JobStatus::kCancelled;
    return result;
  }

  const Clock::time_point start = Clock::now();
  const bool has_deadline = options_.timeout_seconds > 0.0;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options_.timeout_seconds));
  // Shared by both steppers: stop on cancel or (if armed) on the deadline.
  auto abort_hook = [this, has_deadline, deadline] {
    return cancel_requested() || (has_deadline && Clock::now() >= deadline);
  };

  bool aborted = false;
  try {
    if (job.kind == SimKind::kOde) {
      sim::OdeOptions ode = job.ode;
      ode.abort = abort_hook;
      std::vector<double> initial =
          job.initial.empty() ? job.network->initial_state() : job.initial;
      sim::OdeResult run =
          sim::simulate_ode(*job.network, ode, std::move(initial));
      aborted = run.aborted;
      result.end_time = run.end_time;
      result.ode_steps = run.steps_accepted;
      const std::span<const double> final = run.trajectory.final_state();
      result.final_state.assign(final.begin(), final.end());
      if (options_.keep_trajectories) {
        result.trajectory = std::move(run.trajectory);
      }
    } else {
      sim::SsaOptions ssa = job.ssa;
      ssa.abort = abort_hook;
      sim::SsaResult run = sim::simulate_ssa(*job.network, ssa, job.initial);
      aborted = run.aborted;
      result.end_time = run.end_time;
      result.ssa_events = run.events;
      result.final_state.resize(run.final_counts.size());
      for (std::size_t i = 0; i < run.final_counts.size(); ++i) {
        result.final_state[i] =
            static_cast<double>(run.final_counts[i]) / ssa.omega;
      }
      if (options_.keep_trajectories) {
        result.trajectory = std::move(run.trajectory);
      }
    }
  } catch (const std::exception& error) {
    result.status = JobStatus::kFailed;
    result.error = error.what();
  }
  result.wall_seconds = seconds_since(start);
  if (aborted) {
    result.status = cancel_requested() ? JobStatus::kCancelled
                                       : JobStatus::kTimeout;
  }
  return result;
}

std::vector<JobResult> BatchRunner::run(std::span<const SimJob> jobs) {
  std::vector<JobResult> results(jobs.size());
  for_each_index(jobs.size(),
                 [&](std::size_t i) { results[i] = execute(jobs[i]); });
  return results;
}

void BatchRunner::for_each_index(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (options_.threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  {
    ThreadPool pool(std::min(options_.threads, count));
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mrsc::runtime
