// N-replicate SSA ensembles with summary statistics.
//
// One stochastic trajectory says little; the paper-style claim is about the
// distribution over realizations ("the counter reads 5 in 98% of runs").
// `run_ssa_ensemble` fans `replicates` independent SSA jobs over a
// `BatchRunner` — replicate i seeded with `Rng::stream_seed(base_seed, i)`,
// so the ensemble is reproducible and bitwise independent of the worker
// count — and reduces the final states to per-species mean / stddev /
// quantiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "runtime/batch.hpp"
#include "sim/ssa.hpp"

namespace mrsc::runtime {

struct EnsembleOptions {
  std::size_t replicates = 32;
  std::uint64_t base_seed = 1;  ///< replicate i runs stream_seed(base, i)
  BatchOptions batch;           ///< threads / per-job timeout
};

/// Distribution of one species' final concentration over the ensemble.
struct SpeciesStats {
  std::string name;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double q05 = 0.0;  ///< 5th percentile
  double q50 = 0.0;  ///< median
  double q95 = 0.0;  ///< 95th percentile
};

struct EnsembleResult {
  std::vector<JobResult> replicates;  ///< per-replicate outcomes, in order
  /// Per-species stats over the *successful* replicates only.
  std::vector<SpeciesStats> final_stats;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t cancelled = 0;
  std::size_t quarantined = 0;  ///< persistent failures set aside by retries
  double wall_seconds = 0.0;  ///< whole-ensemble wall time
};

/// Builds the replicate jobs for `network` under `ssa` (whose `seed` field is
/// overridden per replicate as described above).
[[nodiscard]] std::vector<SimJob> make_ensemble_jobs(
    const core::ReactionNetwork& network, const sim::SsaOptions& ssa,
    std::size_t replicates, std::uint64_t base_seed);

/// Runs the ensemble and reduces final states to per-species statistics.
[[nodiscard]] EnsembleResult run_ssa_ensemble(
    const core::ReactionNetwork& network, const sim::SsaOptions& ssa,
    const EnsembleOptions& options);

/// Linear-interpolation quantile of `sorted` (ascending); q in [0, 1].
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double q);

/// Reduces one species' final values (any order; sorted internally) to the
/// ensemble statistics. This is THE reduction — run_ssa_ensemble and the
/// fleet merge (src/fleet) both call it, which is what makes a sharded
/// ensemble bitwise-identical to a local one: the merge re-assembles the
/// same value multiset and hands it to the same floating-point expression.
[[nodiscard]] SpeciesStats reduce_species(std::string name,
                                          std::vector<double> values);

}  // namespace mrsc::runtime
