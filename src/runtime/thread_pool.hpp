// Fixed-size worker pool for the batch-execution runtime.
//
// Deliberately simple: one mutex-guarded FIFO task queue feeding a fixed set
// of workers. The simulation jobs this pool carries run for milliseconds to
// seconds each, so queue contention is irrelevant next to job cost; what
// matters is a clean lifecycle. The contract:
//
//   * submit() never blocks (beyond the queue lock) and may be called from
//     any thread, including from inside a running task.
//   * wait_idle() blocks until every submitted task has finished executing.
//   * The destructor drains the queue: tasks already submitted are run to
//     completion before the workers join. Shutdown under pending work is
//     therefore deterministic — nothing is silently dropped. Callers that
//     want to abandon work early cancel it cooperatively (see BatchRunner)
//     before destroying the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mrsc::runtime {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 selects `default_worker_count()`.
  explicit ThreadPool(std::size_t workers);

  /// Drains all pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Tasks must not throw; wrap fallible work
  /// in its own try/catch (BatchRunner converts exceptions into JobResults).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Introspection hooks for admission control and stats endpoints (serve/).
  /// `queued()` counts tasks submitted but not yet picked up by a worker;
  /// `active()` counts tasks currently executing. Both take the queue lock,
  /// so they are exact snapshots, not races — cheap enough for a stats poll,
  /// not meant for per-event hot paths.
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t active() const;

  /// Hardware concurrency, clamped to at least 1.
  [[nodiscard]] static std::size_t default_worker_count();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mrsc::runtime
