// Batch execution of simulation jobs across a worker pool.
//
// The paper's validation workload is embarrassingly parallel: robustness
// claims are backed by re-running the same network under swept rate ratios,
// jittered rate constants, and many SSA replicates. `BatchRunner` is the
// substrate for all of that: it fans a vector of `SimJob`s out across a
// `ThreadPool` and collects one `JobResult` per job, indexed like the input.
//
// Determinism contract: a job's result is a pure function of the job
// description (network, options, seed). The runner never reorders seeds or
// shares generator state between jobs, so an 8-worker run is bitwise
// identical to a 1-worker run — scheduling only changes wall time. Derive
// per-job seeds with `util::Rng::stream_seed(base_seed, index)`.
//
// Cancellation contract: `cancel()` (any thread) and per-job deadlines are
// cooperative. They are plumbed into the ODE/SSA steppers through the
// `abort` hook on their options; an in-flight job stops at the next poll
// point and reports kCancelled/kTimeout, jobs not yet started report
// kCancelled without running. Jobs that finish before the deadline are never
// retroactively failed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"
#include "sim/trajectory.hpp"

namespace mrsc::runtime {

enum class SimKind : std::uint8_t { kOde, kSsa };

/// One unit of work: a network simulated with one method and one seed.
struct SimJob {
  /// Non-owning; must outlive the `BatchRunner::run` call. Jobs may share a
  /// network — the steppers compile and mutate only private state.
  const core::ReactionNetwork* network = nullptr;
  SimKind kind = SimKind::kSsa;
  sim::OdeOptions ode;  ///< used when kind == kOde
  sim::SsaOptions ssa;  ///< used when kind == kSsa (including its seed)
  /// Initial concentrations; empty uses the network defaults.
  std::vector<double> initial;
  std::string label;  ///< free-form tag echoed into the result
};

enum class JobStatus : std::uint8_t {
  kOk,
  kFailed,     ///< the stepper threw; see `error`
  kTimeout,    ///< the per-job deadline fired
  kCancelled,  ///< BatchRunner::cancel() stopped or skipped the job
};

struct JobResult {
  JobStatus status = JobStatus::kOk;
  std::string label;
  std::string error;         ///< failure reason when status == kFailed
  /// The SSA seed the job ran with (0 for ODE jobs), echoed so failure
  /// reports can name the exact replicate to re-run.
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;  ///< this job's execution time
  double end_time = 0.0;      ///< simulated time reached
  std::uint64_t ssa_events = 0;
  std::size_t ode_steps = 0;
  /// Final concentrations (SSA counts are divided by omega).
  std::vector<double> final_state;
  /// Full trajectory; only kept when BatchOptions::keep_trajectories is set
  /// (ensembles of thousands of replicates would otherwise exhaust memory).
  sim::Trajectory trajectory;
};

[[nodiscard]] const char* to_string(JobStatus status);

struct BatchOptions {
  std::size_t threads = 1;      ///< 0 selects the hardware concurrency
  double timeout_seconds = 0.0;  ///< per-job deadline; 0 disables
  bool keep_trajectories = false;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Executes every job and returns results in job order. `threads == 1`
  /// runs serially on the calling thread (no pool, no locks).
  [[nodiscard]] std::vector<JobResult> run(std::span<const SimJob> jobs);

  /// Deterministic parallel-for over `count` indices: `fn(i)` runs exactly
  /// once per index, distributed over the pool (or inline when threads == 1).
  /// The first exception thrown by `fn` is rethrown on the calling thread
  /// after all indices finish. The sweep layer maps grid points through this.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// Requests cooperative cancellation of the current/next `run`. Safe to
  /// call from any thread (e.g. a signal handler thread or a watchdog).
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// Re-arms the runner after a cancelled run.
  void reset_cancel() { cancel_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] const BatchOptions& options() const { return options_; }

 private:
  JobResult execute(const SimJob& job) const;

  BatchOptions options_;
  std::atomic<bool> cancel_{false};
};

}  // namespace mrsc::runtime
