// Batch execution of simulation jobs across a worker pool.
//
// The paper's validation workload is embarrassingly parallel: robustness
// claims are backed by re-running the same network under swept rate ratios,
// jittered rate constants, and many SSA replicates. `BatchRunner` is the
// substrate for all of that: it fans a vector of `SimJob`s out across a
// `ThreadPool` and collects one `JobResult` per job, indexed like the input.
//
// Determinism contract: a job's result is a pure function of the job
// description (network, options, seed). The runner never reorders seeds or
// shares generator state between jobs, so an 8-worker run is bitwise
// identical to a 1-worker run — scheduling only changes wall time. Derive
// per-job seeds with `util::Rng::stream_seed(base_seed, index)`.
//
// Cancellation contract: `cancel()` (any thread) and per-job deadlines are
// cooperative. They are plumbed into the ODE/SSA steppers through the
// `abort` hook on their options; an in-flight job stops at the next poll
// point and reports kCancelled/kTimeout, jobs not yet started report
// kCancelled without running. Jobs that finish before the deadline are never
// retroactively failed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "sim/fallback.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"
#include "sim/trajectory.hpp"

namespace mrsc::runtime {

enum class SimKind : std::uint8_t { kOde, kSsa };

/// One unit of work: a network simulated with one method and one seed.
struct SimJob {
  /// Non-owning; must outlive the `BatchRunner::run` call. Jobs may share a
  /// network — the steppers compile and mutate only private state.
  const core::ReactionNetwork* network = nullptr;
  /// Optional pre-compiled engine form of `network`, shared read-only across
  /// jobs so an ensemble compiles its design once instead of per replicate.
  /// Non-owning; must outlive the run and must have been compiled from
  /// `network`. Honored only when the job's options select the compiled
  /// engine; the fallback/retry path ignores it (each rung recompiles).
  const sim::CompiledSystem* compiled = nullptr;
  SimKind kind = SimKind::kSsa;
  sim::OdeOptions ode;  ///< used when kind == kOde
  sim::SsaOptions ssa;  ///< used when kind == kSsa (including its seed)
  /// Initial concentrations; empty uses the network defaults.
  std::vector<double> initial;
  std::string label;  ///< free-form tag echoed into the result
};

enum class JobStatus : std::uint8_t {
  kOk,
  kFailed,       ///< the stepper threw; see `error`
  kTimeout,      ///< the per-job deadline fired
  kCancelled,    ///< BatchRunner::cancel() stopped or skipped the job
  kQuarantined,  ///< failed deterministically on every fallback rung; the
                 ///< job is reported and set aside, the campaign continues
};

struct JobResult {
  JobStatus status = JobStatus::kOk;
  std::string label;
  std::string error;         ///< failure reason when status != kOk
  /// The SSA seed the job ran with (0 for ODE jobs), echoed so failure
  /// reports can name the exact replicate to re-run.
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;  ///< this job's execution time
  double end_time = 0.0;      ///< simulated time reached
  std::uint64_t ssa_events = 0;
  std::size_t ode_steps = 0;
  /// Final concentrations (SSA counts are divided by omega).
  std::vector<double> final_state;
  /// Full trajectory; only kept when BatchOptions::keep_trajectories is set
  /// (ensembles of thousands of replicates would otherwise exhaust memory).
  sim::Trajectory trajectory;
  /// Attempts actually made (1 when the first try succeeded).
  std::size_t attempts = 1;
  /// Classified failure of the last attempt (kind == kNone on success).
  sim::SimFailure failure{};
  /// Ladder history when retries are enabled. Deterministic: contains only
  /// attempt indices, rung names, classified failures, and scheduled
  /// backoffs, so per-job logs are identical at any thread count.
  sim::RecoveryLog recovery{};
};

[[nodiscard]] const char* to_string(JobStatus status);

/// Retry behaviour for failing jobs. The default (max_attempts == 1) is the
/// original single-shot semantics; raising it routes every job through the
/// solver fallback ladder (sim/fallback.hpp): non-transient failures step to
/// a more conservative rung, deadline failures retry the same rung with a
/// fresh per-attempt deadline after a capped exponential backoff, and a job
/// that fails deterministically on every rung is *quarantined* — reported in
/// its slot with status kQuarantined while the rest of the batch proceeds.
struct RetryPolicy {
  std::size_t max_attempts = 1;
  double backoff_base_seconds = 0.0;
  double backoff_cap_seconds = 2.0;
  /// Whether the ODE ladder may bottom out in an exact SSA run.
  bool allow_ssa_fallback = true;
  double ssa_omega = 1000.0;
  /// Injectable sleep for backoff (tests pass a no-op). Null really sleeps.
  std::function<void(double seconds)> sleep;
};

struct BatchOptions {
  std::size_t threads = 1;      ///< 0 selects the hardware concurrency
  double timeout_seconds = 0.0;  ///< per-attempt deadline; 0 disables
  bool keep_trajectories = false;
  RetryPolicy retry{};
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Executes every job and returns results in job order. `threads == 1`
  /// runs serially on the calling thread (no pool, no locks).
  [[nodiscard]] std::vector<JobResult> run(std::span<const SimJob> jobs);

  /// Deterministic parallel-for over `count` indices: `fn(i)` runs exactly
  /// once per index, distributed over the pool (or inline when threads == 1).
  /// The first exception thrown by `fn` is rethrown on the calling thread
  /// after all indices finish. The sweep layer maps grid points through this.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// Requests cooperative cancellation of the current/next `run`. Safe to
  /// call from any thread (e.g. a signal handler thread or a watchdog).
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// Re-arms the runner after a cancelled run.
  void reset_cancel() { cancel_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] const BatchOptions& options() const { return options_; }

 private:
  JobResult execute(const SimJob& job) const;
  /// Ladder-backed path used when options_.retry.max_attempts > 1.
  void execute_with_retry(const SimJob& job, JobResult& result) const;

  BatchOptions options_;
  std::atomic<bool> cancel_{false};
};

}  // namespace mrsc::runtime
