#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace mrsc::runtime {

std::size_t ThreadPool::default_worker_count() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_worker_count();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::active() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ && drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace mrsc::runtime
