#include "runtime/ensemble.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "sim/engine/compiled_system.hpp"
#include "util/rng.hpp"

namespace mrsc::runtime {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= sorted.size()) return sorted.back();
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower]);
}

SpeciesStats reduce_species(std::string name, std::vector<double> values) {
  SpeciesStats stats;
  stats.name = std::move(name);
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end());
  stats.min = values.front();
  stats.max = values.back();
  stats.q05 = quantile_sorted(values, 0.05);
  stats.q50 = quantile_sorted(values, 0.50);
  stats.q95 = quantile_sorted(values, 0.95);
  double sum = 0.0;
  for (const double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (const double v : values) {
      sq += (v - stats.mean) * (v - stats.mean);
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return stats;
}

std::vector<SimJob> make_ensemble_jobs(const core::ReactionNetwork& network,
                                       const sim::SsaOptions& ssa,
                                       std::size_t replicates,
                                       std::uint64_t base_seed) {
  std::vector<SimJob> jobs(replicates);
  for (std::size_t i = 0; i < replicates; ++i) {
    SimJob& job = jobs[i];
    job.network = &network;
    job.kind = SimKind::kSsa;
    job.ssa = ssa;
    job.ssa.seed = util::Rng::stream_seed(base_seed, i);
    job.label = "replicate " + std::to_string(i);
  }
  return jobs;
}

EnsembleResult run_ssa_ensemble(const core::ReactionNetwork& network,
                                const sim::SsaOptions& ssa,
                                const EnsembleOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<SimJob> jobs = make_ensemble_jobs(
      network, ssa, options.replicates, options.base_seed);

  // Compile the design once and share it read-only across every replicate
  // instead of re-deriving the reaction structure per job. Results are
  // unchanged (the compiled engine is bitwise-identical); only the
  // per-replicate compile cost disappears. Retrying runs keep the per-job
  // path: the fallback ladder rebuilds per rung anyway.
  std::optional<sim::CompiledSystem> shared;
  if (ssa.engine.kind == sim::EngineKind::kCompiled &&
      options.batch.retry.max_attempts <= 1) {
    shared.emplace(network);
    for (SimJob& job : jobs) job.compiled = &*shared;
  }

  BatchRunner runner(options.batch);
  EnsembleResult result;
  result.replicates = runner.run(jobs);
  for (const JobResult& job : result.replicates) {
    switch (job.status) {
      case JobStatus::kOk:
        ++result.ok;
        break;
      case JobStatus::kFailed:
        ++result.failed;
        break;
      case JobStatus::kTimeout:
        ++result.timed_out;
        break;
      case JobStatus::kCancelled:
        ++result.cancelled;
        break;
      case JobStatus::kQuarantined:
        ++result.quarantined;
        break;
    }
  }

  const std::size_t species = network.species_count();
  result.final_stats.resize(species);
  std::vector<double> values;
  values.reserve(result.ok);
  for (std::size_t s = 0; s < species; ++s) {
    values.clear();
    for (const JobResult& job : result.replicates) {
      if (job.status == JobStatus::kOk && s < job.final_state.size()) {
        values.push_back(job.final_state[s]);
      }
    }
    result.final_stats[s] = reduce_species(
        network.species_name(core::SpeciesId{
            static_cast<core::SpeciesId::underlying_type>(s)}),
        values);
  }
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  return result;
}

}  // namespace mrsc::runtime
