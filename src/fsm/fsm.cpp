#include "fsm/fsm.hpp"

#include <chrono>
#include <map>
#include <stdexcept>

namespace mrsc::fsm {

namespace {
using core::RateCategory;
using core::SpeciesId;
using core::Term;
}  // namespace

void FsmSpec::validate() const {
  if (num_states == 0 || num_inputs == 0) {
    throw std::invalid_argument("FsmSpec: need >= 1 state and >= 1 input");
  }
  if (initial_state >= num_states) {
    throw std::invalid_argument("FsmSpec: initial state out of range");
  }
  if (next_state.size() != num_states) {
    throw std::invalid_argument("FsmSpec: next_state table has wrong height");
  }
  for (const auto& row : next_state) {
    if (row.size() != num_inputs) {
      throw std::invalid_argument("FsmSpec: next_state row has wrong width");
    }
    for (const std::size_t target : row) {
      if (target >= num_states) {
        throw std::invalid_argument("FsmSpec: transition target out of range");
      }
    }
  }
  if (num_outputs > 0 || !output.empty()) {
    if (output.size() != num_states) {
      throw std::invalid_argument("FsmSpec: output table has wrong height");
    }
    for (const auto& row : output) {
      if (row.size() != num_inputs) {
        throw std::invalid_argument("FsmSpec: output row has wrong width");
      }
      for (const std::size_t symbol : row) {
        if (symbol != kNoOutput && symbol >= num_outputs) {
          throw std::invalid_argument("FsmSpec: output symbol out of range");
        }
      }
    }
  }
}

FsmHandles build_fsm(core::ReactionNetwork& network, const FsmSpec& spec,
                     const compile::CompileOptions& options) {
  spec.validate();
  const std::string& p = spec.prefix;
  sync::ClockSpec clock_spec = spec.clock;
  if (clock_spec.prefix == "clk") clock_spec.prefix = p + "_clk";

  const auto lowering_start = std::chrono::steady_clock::now();
  compile::LoweringContext ctx(network, p);

  FsmHandles handles;
  handles.clock = sync::build_clock(ctx, clock_spec);

  for (std::size_t s = 0; s < spec.num_states; ++s) {
    handles.state.push_back(ctx.species(
        p + "_Q" + std::to_string(s), s == spec.initial_state ? 1.0 : 0.0));
    handles.state_primed.push_back(
        ctx.species(p + "_Qp" + std::to_string(s)));
  }
  for (std::size_t a = 0; a < spec.num_inputs; ++a) {
    handles.input.push_back(ctx.species(p + "_I" + std::to_string(a)));
  }
  for (std::size_t x = 0; x < spec.num_outputs; ++x) {
    handles.output.push_back(ctx.species(p + "_O" + std::to_string(x)));
  }
  // Every handle is a root: the one-hot state vectors are positional, so
  // even a state unreachable from the initial state must keep its species.
  for (const SpeciesId id : handles.state) {
    ctx.declare_root(id, compile::PortRole::kState);
  }
  for (const SpeciesId id : handles.state_primed) {
    ctx.declare_root(id, compile::PortRole::kState);
  }
  for (const SpeciesId id : handles.input) {
    ctx.declare_root(id, compile::PortRole::kInput);
  }
  for (const SpeciesId id : handles.output) {
    ctx.declare_root(id, compile::PortRole::kOutput);
  }

  // Transitions: I_a + Q_s -> Q'_{s'} (+ O_x).
  for (std::size_t s = 0; s < spec.num_states; ++s) {
    for (std::size_t a = 0; a < spec.num_inputs; ++a) {
      const std::size_t target = spec.next_state[s][a];
      std::vector<Term> products = {{handles.state_primed[target], 1}};
      if (!spec.output.empty() && spec.output[s][a] != kNoOutput) {
        products.push_back(Term{handles.output[spec.output[s][a]], 1});
      }
      network.add({{handles.input[a], 1}, {handles.state[s], 1}},
                  std::move(products), RateCategory::kFast, 0.0,
                  p + ".t.s" + std::to_string(s) + ".a" + std::to_string(a));
      ctx.tag_pending(compile::ReactionTag::kFastOp);
    }
  }

  // Write-back (blue phase): primed masters -> slaves.
  for (std::size_t s = 0; s < spec.num_states; ++s) {
    ctx.writeback(handles.clock.phase_b, handles.state_primed[s],
                  handles.state[s], p + ".writeback.s" + std::to_string(s));
  }

  const double lowering_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    lowering_start)
          .count();
  const compile::FinalizeResult fin = ctx.finalize(options, lowering_seconds);
  if (fin.optimized) {
    for (SpeciesId& id : handles.state) id = fin(id);
    for (SpeciesId& id : handles.state_primed) id = fin(id);
    for (SpeciesId& id : handles.input) id = fin(id);
    for (SpeciesId& id : handles.output) id = fin(id);
    handles.clock.phase_r = fin(handles.clock.phase_r);
    handles.clock.phase_g = fin(handles.clock.phase_g);
    handles.clock.phase_b = fin(handles.clock.phase_b);
    handles.clock.ind_r = fin(handles.clock.ind_r);
    handles.clock.ind_g = fin(handles.clock.ind_g);
    handles.clock.ind_b = fin(handles.clock.ind_b);
  }
  return handles;
}

std::size_t decode_state(const FsmHandles& handles,
                         std::span<const double> state) {
  std::size_t best = 0;
  double best_value = -1.0;
  for (std::size_t s = 0; s < handles.state.size(); ++s) {
    const double value = state[handles.state[s].index()];
    if (value > best_value) {
      best_value = value;
      best = s;
    }
  }
  return best;
}

FsmTrace evaluate_reference(const FsmSpec& spec,
                            std::span<const std::size_t> inputs) {
  spec.validate();
  FsmTrace trace;
  std::size_t state = spec.initial_state;
  for (const std::size_t a : inputs) {
    if (a >= spec.num_inputs) {
      throw std::invalid_argument("evaluate_reference: input out of range");
    }
    const std::size_t output =
        spec.output.empty() ? kNoOutput : spec.output[state][a];
    state = spec.next_state[state][a];
    trace.states.push_back(state);
    trace.outputs.push_back(output);
  }
  return trace;
}

MinimizationResult minimize(const FsmSpec& spec) {
  spec.validate();
  const std::size_t n = spec.num_states;
  const std::size_t m = spec.num_inputs;
  auto output_of = [&](std::size_t s, std::size_t a) {
    return spec.output.empty() ? kNoOutput : spec.output[s][a];
  };

  // 1. Reachability from the initial state.
  std::vector<bool> reachable(n, false);
  std::vector<std::size_t> worklist = {spec.initial_state};
  reachable[spec.initial_state] = true;
  while (!worklist.empty()) {
    const std::size_t s = worklist.back();
    worklist.pop_back();
    for (std::size_t a = 0; a < m; ++a) {
      const std::size_t t = spec.next_state[s][a];
      if (!reachable[t]) {
        reachable[t] = true;
        worklist.push_back(t);
      }
    }
  }

  // 2. Partition refinement. Initial blocks: output signature (unreachable
  // states are parked in a dedicated dead block and dropped at the end).
  std::vector<std::size_t> block(n, 0);
  {
    std::map<std::vector<std::size_t>, std::size_t> signature_block;
    for (std::size_t s = 0; s < n; ++s) {
      if (!reachable[s]) {
        block[s] = static_cast<std::size_t>(-2);
        continue;
      }
      std::vector<std::size_t> signature;
      for (std::size_t a = 0; a < m; ++a) signature.push_back(output_of(s, a));
      const auto [it, inserted] =
          signature_block.emplace(std::move(signature), signature_block.size());
      block[s] = it->second;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::vector<std::size_t>, std::size_t> refined_ids;
    std::vector<std::size_t> refined(n, static_cast<std::size_t>(-2));
    for (std::size_t s = 0; s < n; ++s) {
      if (!reachable[s]) continue;
      // Key: current block plus the blocks of all successors.
      std::vector<std::size_t> key = {block[s]};
      for (std::size_t a = 0; a < m; ++a) {
        key.push_back(block[spec.next_state[s][a]]);
      }
      const auto [it, inserted] =
          refined_ids.emplace(std::move(key), refined_ids.size());
      refined[s] = it->second;
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (reachable[s] && refined[s] != block[s]) changed = true;
    }
    block.swap(refined);
  }

  // 3. Renumber blocks densely and assemble the minimized machine.
  std::map<std::size_t, std::size_t> dense;
  MinimizationResult result;
  result.state_map.assign(n, MinimizationResult::kUnreachable);
  for (std::size_t s = 0; s < n; ++s) {
    if (!reachable[s]) continue;
    const auto [it, inserted] = dense.emplace(block[s], dense.size());
    result.state_map[s] = it->second;
  }
  const std::size_t k = dense.size();
  result.spec.num_states = k;
  result.spec.num_inputs = m;
  result.spec.num_outputs = spec.num_outputs;
  result.spec.initial_state = result.state_map[spec.initial_state];
  result.spec.clock = spec.clock;
  result.spec.prefix = spec.prefix;
  result.spec.next_state.assign(k, std::vector<std::size_t>(m, 0));
  if (!spec.output.empty()) {
    result.spec.output.assign(k, std::vector<std::size_t>(m, kNoOutput));
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (!reachable[s]) continue;
    const std::size_t q = result.state_map[s];
    for (std::size_t a = 0; a < m; ++a) {
      result.spec.next_state[q][a] =
          result.state_map[spec.next_state[s][a]];
      if (!spec.output.empty()) result.spec.output[q][a] = output_of(s, a);
    }
  }
  return result;
}

FsmSpec make_sequence_detector(std::string_view pattern) {
  if (pattern.empty()) {
    throw std::invalid_argument("make_sequence_detector: empty pattern");
  }
  for (const char c : pattern) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument(
          "make_sequence_detector: pattern must be binary");
    }
  }
  const std::size_t m = pattern.size();
  // KMP failure function.
  std::vector<std::size_t> failure(m, 0);
  for (std::size_t i = 1; i < m; ++i) {
    std::size_t k = failure[i - 1];
    while (k > 0 && pattern[i] != pattern[k]) k = failure[k - 1];
    if (pattern[i] == pattern[k]) ++k;
    failure[i] = k;
  }
  // State = number of pattern characters matched so far (0..m-1); reaching m
  // emits the match output and falls back per the failure function.
  auto advance = [&](std::size_t state, char bit) {
    std::size_t k = state;
    while (k > 0 && pattern[k] != bit) k = failure[k - 1];
    if (pattern[k] == bit) ++k;
    return k;
  };
  FsmSpec spec;
  spec.num_states = m;
  spec.num_inputs = 2;
  spec.num_outputs = 1;
  spec.initial_state = 0;
  spec.next_state.assign(m, std::vector<std::size_t>(2, 0));
  spec.output.assign(m, std::vector<std::size_t>(2, kNoOutput));
  spec.prefix = "seqdet";
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t a = 0; a < 2; ++a) {
      const char bit = a == 0 ? '0' : '1';
      std::size_t next = advance(s, bit);
      if (next == m) {
        spec.output[s][a] = 0;  // match completed
        next = failure[m - 1];  // continue for overlapping occurrences
      }
      spec.next_state[s][a] = next;
    }
  }
  return spec;
}

FsmSpec make_parity_machine() {
  FsmSpec spec;
  spec.num_states = 2;  // 0 = even, 1 = odd
  spec.num_inputs = 2;
  spec.num_outputs = 2;  // emits its new parity every cycle
  spec.initial_state = 0;
  spec.next_state = {{0, 1}, {1, 0}};
  spec.output = {{0, 1}, {1, 0}};
  spec.prefix = "parity";
  return spec;
}

}  // namespace mrsc::fsm
