// General finite state machines with molecular reactions.
//
// The paper closes with "we can use delay elements together with
// computational constructs to implement general circuit functions"; this
// module is that generalization: any Mealy machine compiles to a clocked
// reaction network.
//
// Encoding:
//  * The state is one-hot: species Q_0..Q_{S-1} with a conserved total of
//    one token; Q_s = 1 means the machine is in state s.
//  * One input symbol per clock cycle, injected as a token of I_a on the
//    rising edge of the compute (green) phase.
//  * Each transition (s, a) -> (s', x) is ONE reaction:
//        I_a + Q_s ->fast Q'_{s'} (+ O_x)
//    It consumes the input token and the current state and produces the
//    primed next-state master plus an optional output token. Because every
//    cycle has exactly one input token and exactly one state token, exactly
//    one transition fires — no arbitration, no hazards.
//  * Write-back (blue phase): C_B + Q'_s -> C_B + Q_s. The transitions
//    themselves are fast and un-gated; their tokens exist only during the
//    compute phase, which confines them to it (same discipline as the
//    dual-rail counter).
//
// Output tokens accumulate in O_x and are sampled (and cleared) once per
// cycle by the harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compile/passes.hpp"
#include "core/network.hpp"
#include "sync/clock.hpp"

namespace mrsc::fsm {

/// "No output on this transition."
inline constexpr std::size_t kNoOutput = static_cast<std::size_t>(-1);

struct FsmSpec {
  std::size_t num_states = 0;
  std::size_t num_inputs = 0;   ///< input alphabet size
  std::size_t num_outputs = 0;  ///< output alphabet size (may be 0)
  std::size_t initial_state = 0;
  /// next_state[s][a] in [0, num_states).
  std::vector<std::vector<std::size_t>> next_state;
  /// output[s][a] in [0, num_outputs) or kNoOutput. May be empty if
  /// num_outputs == 0.
  std::vector<std::vector<std::size_t>> output;
  sync::ClockSpec clock;
  std::string prefix = "fsm";

  /// Throws std::invalid_argument if the tables are malformed.
  void validate() const;
};

struct FsmHandles {
  sync::ClockHandles clock;
  std::vector<core::SpeciesId> state;         ///< slaves Q_s (one-hot)
  std::vector<core::SpeciesId> state_primed;  ///< masters Q'_s
  std::vector<core::SpeciesId> input;   ///< inject I_a on C_G rising
  std::vector<core::SpeciesId> output;  ///< sample O_x on C_R rising
};

/// Emits the machine (clock included) into `network` through the shared
/// lowering context; `options` selects validation and the pass pipeline.
/// Every handle species is a pipeline root, so the vectors in FsmHandles
/// keep their positional meaning at any optimization level.
FsmHandles build_fsm(core::ReactionNetwork& network, const FsmSpec& spec,
                     const compile::CompileOptions& options = {});

/// Reads the current state from a state vector (argmax over the one-hot
/// slave rails).
[[nodiscard]] std::size_t decode_state(const FsmHandles& handles,
                                       std::span<const double> state);

/// Reference (exact) execution of the machine on an input string.
struct FsmTrace {
  std::vector<std::size_t> states;   ///< state after each step
  std::vector<std::size_t> outputs;  ///< output symbol per step (kNoOutput
                                     ///< when the transition emits none)
};
[[nodiscard]] FsmTrace evaluate_reference(
    const FsmSpec& spec, std::span<const std::size_t> inputs);

// --- minimization ------------------------------------------------------------

struct MinimizationResult {
  FsmSpec spec;  ///< the minimized machine (clock/prefix copied over)
  /// For each original state, the minimized state it maps to, or
  /// `kUnreachable` if it was dropped.
  std::vector<std::size_t> state_map;
  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
};

/// Minimizes a Mealy machine: removes states unreachable from the initial
/// state, then merges behaviourally equivalent states (Moore partition
/// refinement on output signatures). The result accepts exactly the same
/// input/output behaviour — fewer states means fewer species and reactions
/// when compiled.
[[nodiscard]] MinimizationResult minimize(const FsmSpec& spec);

// --- canned machines ---------------------------------------------------------

/// A binary sequence detector (KMP prefix automaton) over alphabet {0, 1}
/// that emits output symbol 0 whenever `pattern` (e.g. "101") completes,
/// counting overlapping occurrences.
[[nodiscard]] FsmSpec make_sequence_detector(std::string_view pattern);

/// Two-state parity machine over alphabet {0, 1}: emits output 0 ("even") or
/// 1 ("odd") every cycle, reporting the parity of the ones seen so far.
[[nodiscard]] FsmSpec make_parity_machine();

}  // namespace mrsc::fsm
