// Experiment T2: deterministic vs stochastic semantics.
//
// The paper validates its designs with mass-action ODE simulation — the
// infinite-population limit. Real chemistry has finite molecule counts; this
// bench runs the exact SSA (Gillespie direct and Gibson-Bruck next-reaction)
// on the delay chain at several volumes and shows the stochastic behaviour
// converging to the deterministic one as counts grow.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/metrics.hpp"
#include "async/chain.hpp"
#include "core/network.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"

namespace {
using namespace mrsc;
}  // namespace

int main() {
  std::printf("== T2: async delay chain, ODE vs SSA (k_fast/k_slow = 200)\n\n");

  core::ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 2;
  const async::ChainHandles chain = async::build_delay_chain(net, spec);
  net.set_initial(chain.input, 1.0);
  net.set_rate_policy(core::RatePolicy{1.0, 200.0});

  sim::OdeOptions ode;
  ode.t_end = 80.0;
  ode.record_interval = 0.5;
  const sim::OdeResult ode_run = sim::simulate_ode(net, ode);
  const double ode_final = ode_run.trajectory.final_value(chain.output);
  std::printf("deterministic (ODE) delivered Y: %.4f\n\n", ode_final);

  std::printf("%-8s %-14s %-12s %-12s %-14s %-10s\n", "omega", "method",
              "mean Y", "sd Y", "traj RMSE", "events");
  for (const double omega : {50.0, 200.0, 1000.0}) {
    for (const sim::SsaMethod method :
         {sim::SsaMethod::kDirect, sim::SsaMethod::kNextReaction}) {
      constexpr int kRuns = 8;
      std::vector<double> finals;
      double rmse_acc = 0.0;
      std::uint64_t events = 0;
      for (int run = 0; run < kRuns; ++run) {
        sim::SsaOptions ssa;
        ssa.t_end = 80.0;
        ssa.omega = omega;
        ssa.method = method;
        ssa.seed = 100 + static_cast<std::uint64_t>(run);
        ssa.record_interval = 0.5;
        const sim::SsaResult result = simulate_ssa(net, ssa);
        finals.push_back(result.trajectory.final_value(chain.output));
        events += result.events;
        // Trajectory deviation of the output species on the shared grid.
        double acc = 0.0;
        std::size_t count = 0;
        for (double t = 1.0; t <= 79.0; t += 1.0) {
          const double d =
              result.trajectory.value_at(t, chain.output) -
              ode_run.trajectory.value_at(t, chain.output);
          acc += d * d;
          ++count;
        }
        rmse_acc += std::sqrt(acc / static_cast<double>(count));
      }
      std::printf("%-8.0f %-14s %-12.4f %-12.4f %-14.4f %-10llu\n", omega,
                  method == sim::SsaMethod::kDirect ? "direct"
                                                    : "next-reaction",
                  analysis::mean(finals), analysis::stddev(finals),
                  rmse_acc / kRuns,
                  static_cast<unsigned long long>(events / kRuns));
    }
  }
  std::printf(
      "\n(Means track the ODE value at every volume; run-to-run spread and\n"
      " trajectory deviation shrink ~1/sqrt(omega), confirming the ODE\n"
      " validation carries over to finite molecule counts.)\n");
  return 0;
}
